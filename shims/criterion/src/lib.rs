//! Offline shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the macro and builder API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `bench_function`, `Bencher::iter`) with a simple
//! median-of-N wall-clock harness and plain-text reporting. No statistics,
//! plots, or baselines — swap in crates.io criterion for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of samples (first run is
    /// discarded as warmup) and records the median.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warmup
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

fn run_one(group: Option<&str>, id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, median: Duration::ZERO };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("{full:<50} median {:>12.3} ms ({samples} samples)", b.median.as_secs_f64() * 1e3);
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        run_one(Some(&self.name), &id.id, self.samples, |b| f(b, input));
        self
    }

    /// Runs one benchmark without input.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_one(Some(&self.name), &id.to_string(), self.samples, |b| f(b));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// The harness entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 { 10 } else { self.default_samples };
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_one(None, id, 10, |b| f(b));
        self
    }
}

/// Declares a group function that runs each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
