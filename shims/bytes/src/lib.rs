//! Offline shim for [`bytes`](https://crates.io/crates/bytes): `BytesMut`
//! writing, `Bytes` as an immutable view, and `Buf` reading from `&[u8]`.
//! Multi-byte values use network (big-endian) byte order, matching the real
//! crate's un-suffixed `put_*`/`get_*` methods, so binary files written by
//! the shim and by crates.io `bytes` are interchangeable.

use std::ops::Deref;

/// Immutable byte buffer (a frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: appends big-endian encoded values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side trait: consumes big-endian encoded values from the front.
/// Reading past the end panics, matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow: need {n}, have {}", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32(0x5147_5253);
        buf.put_u8(1);
        buf.put_u64(123_456_789);
        buf.put_f32(2.5);
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.remaining(), 17);
        assert_eq!(view.get_u32(), 0x5147_5253);
        assert_eq!(view.get_u8(), 1);
        assert_eq!(view.get_u64(), 123_456_789);
        assert_eq!(view.get_f32(), 2.5);
        assert_eq!(view.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut view: &[u8] = &[1, 2];
        view.get_u32();
    }
}
