//! Offline shim for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Only the `channel` module is provided, backed by [`std::sync::mpsc`]:
//! `unbounded()` channels with cloneable senders and an iterable receiver,
//! which is all the simulated distributed pipeline (`sg-dist`) needs.

pub mod channel {
    /// Sending half of an unbounded channel (cloneable, like crossbeam's).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;
    /// Receiving half; iterating it drains messages until every sender
    /// has been dropped.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_gather() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || tx.send(i).expect("receiver alive"));
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, [0, 1, 2, 3]);
    }
}
