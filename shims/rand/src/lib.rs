//! Offline shim for [`rand`](https://crates.io/crates/rand): the `RngCore` /
//! `Rng` trait surface the workspace uses (`gen`, `gen_range` over integer
//! ranges). Concrete generators live in the sibling `rand_pcg` shim.

use std::ops::Range;

/// Core source of randomness: anything that can produce `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling a value of `Self` from raw bits (the shim's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges an [`Rng`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range. Panics on an empty range, matching
    /// the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift range reduction; bias is negligible for
                // the workspace's bounds.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + r as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u32, u64);

/// The user-facing randomness trait (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// Draws a value via the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
