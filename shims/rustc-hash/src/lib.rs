//! Offline shim for [`rustc-hash`](https://crates.io/crates/rustc-hash):
//! the classic Fx (Firefox) multiply-rotate hasher plus the `FxHashMap` /
//! `FxHashSet` aliases. The algorithm matches the real crate — a fast,
//! non-cryptographic hash with no per-process randomness, which also keeps
//! iteration-independent code deterministic across runs.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<(u32, u32), i64> = FxHashMap::default();
        *m.entry((1, 2)).or_insert(0) += 5;
        assert_eq!(m[&(1, 2)], 5);
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
