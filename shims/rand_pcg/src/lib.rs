//! Offline shim for [`rand_pcg`](https://crates.io/crates/rand_pcg): a
//! faithful PCG XSL-RR 128/64 ("PCG64") implementation wired to the `rand`
//! shim's [`RngCore`]. Deterministic, splittable by stream — exactly what
//! `sg_graph::prng::element_rng` needs.

use rand::RngCore;

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG64: 128-bit LCG state, XSL-RR output to 64 bits.
#[derive(Clone, Debug)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Builds the generator from an initial state and a stream id, matching
    /// the real crate's constructor semantics (the stream selects one of
    /// 2^127 distinct sequences).
    pub fn new(state: u128, stream: u128) -> Self {
        let increment = (stream << 1) | 1;
        let mut pcg = Self { state: 0, increment };
        pcg.step();
        pcg.state = pcg.state.wrapping_add(state);
        pcg.step();
        pcg
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.increment);
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let state = self.state;
        self.step();
        // XSL-RR: xor-shift-low, random rotate.
        let rot = (state >> 122) as u32;
        let xored = ((state >> 64) as u64) ^ (state as u64);
        xored.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_stream_separated() {
        let a: u64 = Pcg64::new(7, 0).gen();
        let b: u64 = Pcg64::new(7, 0).gen();
        let c: u64 = Pcg64::new(7, 1).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = Pcg64::new(99, 3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
