//! Offline shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range strategies
//! over integers and floats, `Just`, tuple strategies, `prop_flat_map`,
//! `collection::vec`, `any::<bool>()`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name, overridable via
//! `PROPTEST_SHIM_SEED`), and failing cases are **not shrunk** — the panic
//! message reports the raw failing case number instead.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Run-count configuration (`ProptestConfig::with_cases(n)`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configures `cases` executions per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used to draw test inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test name (stable across runs) plus an
        /// optional `PROPTEST_SHIM_SEED` environment override.
        pub fn for_test(test_name: &str) -> Self {
            let env_seed: u64 = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE);
            let mut state = env_seed;
            for b in test_name.bytes() {
                state = splitmix(state ^ b as u64);
            }
            Self { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix(self.state)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    #[inline]
    fn splitmix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Builds a dependent strategy from each drawn value.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { inner: self, f }
        }

        /// Maps drawn values through a function.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<I, F> {
        inner: I,
        f: F,
    }

    impl<I, F, S> Strategy for FlatMap<I, F>
    where
        I: Strategy,
        F: Fn(I::Value) -> S,
        S: Strategy,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let intermediate = self.inner.sample(rng);
            (self.f)(intermediate).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<I, F> {
        inner: I,
        f: F,
    }

    impl<I, F, T> Strategy for Map<I, F>
    where
        I: Strategy,
        F: Fn(I::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_unit_f64 is in [0, 1); scale slightly past hi and clamp so
        // the endpoint is reachable.
        (lo + rng.next_unit_f64() * (hi - lo) * (1.0 + 1e-12)).min(hi)
    }
}

/// Types with a canonical "any value" strategy (`any::<bool>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.clone().sample(rng)
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut run = || {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                    };
                    let guard = $crate::CaseReporter { case, armed: true };
                    run();
                    std::mem::forget(guard);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Prints the failing case number when a property panics (no shrinking).
#[doc(hidden)]
pub struct CaseReporter {
    pub case: u32,
    pub armed: bool,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: property failed at case {} (set PROPTEST_SHIM_SEED to vary inputs)",
                self.case
            );
        }
    }
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sanity: strategies stay in range and tuples/vecs compose.
        #[test]
        fn shim_machinery_works(
            n in 5usize..50,
            x in 0.0f64..=1.0,
            pair in (0u32..10, any::<bool>()),
            items in collection::vec(0u64..100, 1..20),
        ) {
            prop_assert!((5..50).contains(&n));
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!(pair.0 < 10);
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert!(items.iter().all(|&i| i < 100));
        }

        #[test]
        fn flat_map_dependent_values(
            (n, v) in (2u32..30).prop_flat_map(|n| (Just(n), collection::vec(0u32..n, 0..10)))
        ) {
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
