//! Mirror of `rayon::range`: parallel iterators over integer ranges.

use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};
use std::ops::Range;

/// Parallel iterator over `Range<T>` (rayon's `range::Iter<T>`).
#[derive(Clone, Debug)]
pub struct Iter<T> {
    range: Range<T>,
}

macro_rules! indexed_range_impl {
    ($($t:ty),* $(,)?) => {$(
        impl ParallelIterator for Iter<$t> {
            type Item = $t;
            type SeqIter<'a>
                = Range<$t>
            where
                Self: 'a;

            const INDEXED: bool = true;

            fn base_len(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    // Widen before subtracting: a signed range can span more
                    // than its own type's positive half (e.g. i32::MIN..i32::MAX).
                    (self.range.end as i128 - self.range.start as i128) as usize
                }
            }

            unsafe fn seq_chunk(&self, r: Range<usize>) -> Range<$t> {
                // Offsets can exceed $t::MAX for wide signed ranges; the
                // widened sums always land back inside start..end.
                let start = (self.range.start as i128 + r.start as i128) as $t;
                let end = (self.range.start as i128 + r.end as i128) as $t;
                start..end
            }
        }

        impl IndexedParallelIterator for Iter<$t> {}

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = Iter<$t>;

            fn into_par_iter(self) -> Iter<$t> {
                Iter { range: self }
            }
        }
    )*};
}

indexed_range_impl!(u8, u16, u32, u64, usize, i32, i64);
