//! The persistent worker pool behind every terminal operation.
//!
//! Workers used to be scoped threads spawned per terminal op; a daemon
//! serving many small requests paid the spawn cost (tens of microseconds)
//! on every one. The pool spawns workers lazily, grows to the largest
//! worker count any operation has requested, and keeps the threads parked
//! on a condvar between operations, so steady-state terminal ops pay one
//! lock + notify instead of N `clone`+`spawn`+`join`s.
//!
//! # Execution model
//!
//! A terminal operation submits a *group* of `tickets` — `tickets`
//! invocations of one `Fn() + Sync` body, each of which loops pulling
//! chunk indices from the operation's own atomic cursor. Workers pick
//! tickets FIFO; a ticket that finds the cursor exhausted returns
//! immediately. Nothing here affects the determinism contract: chunk
//! boundaries and merge order are fixed by [`crate::iter`], the pool only
//! decides *which thread* runs a chunk.
//!
//! # Lifetimes and panics
//!
//! The submitted body is lifetime-erased (workers are `'static`, the body
//! borrows the caller's stack). Soundness rests on [`GroupHandle`]: both
//! `join` and `Drop` block until every ticket has finished, so the erased
//! borrow can never dangle. A panicking ticket is caught on the worker
//! (workers are immortal), recorded in the group, and re-raised on the
//! submitting thread by `join`.
//!
//! # Nested parallelism
//!
//! A pool worker must never *block on* the pool (all workers could be
//! blocked waiters — deadlock). Terminal operations therefore check
//! [`on_worker_thread`] and run inline sequentially when already on a
//! worker; the outer operation's chunks are the parallelism. The inline
//! path walks the same chunk order, so results are unchanged.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on pool worker threads; terminal operations use this to run
/// nested parallel calls inline instead of deadlocking on the pool.
pub(crate) fn on_worker_thread() -> bool {
    IN_POOL_WORKER.with(Cell::get)
}

/// One submitted operation: `pending` tickets still running plus the
/// first caught panic, behind the completion condvar.
struct Group {
    /// Lifetime-erased ticket body; valid until `pending` reaches 0
    /// (guaranteed observed by [`GroupHandle`] before the borrow ends).
    work: *const (dyn Fn() + Sync),
    state: Mutex<GroupState>,
    done: Condvar,
}

struct GroupState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

// SAFETY: `work` points at a `Sync` closure the submitting thread keeps
// alive until every ticket finished; all mutable state is lock-protected.
unsafe impl Send for Group {}
// SAFETY: see `Send`.
unsafe impl Sync for Group {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Group {
    fn finish_ticket(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock(&self.state);
        st.pending -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.pending == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolState {
    queue: VecDeque<Arc<Group>>,
    /// Workers ever spawned; the pool grows to the largest request and
    /// never shrinks (idle workers cost one parked thread each).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), workers: 0 }),
        work_ready: Condvar::new(),
    })
}

fn worker_main() {
    IN_POOL_WORKER.with(|f| f.set(true));
    let pool = pool();
    let mut guard = lock(&pool.state);
    loop {
        match guard.queue.pop_front() {
            Some(group) => {
                drop(guard);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // SAFETY: the group's handle blocks until this ticket
                    // (and every sibling) reports completion, so the erased
                    // borrow is still live here.
                    unsafe { (*group.work)() }
                }));
                group.finish_ticket(result.err());
                guard = lock(&pool.state);
            }
            None => guard = pool.work_ready.wait(guard).unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// A submitted group. Must outlive the operation: `join` (or `Drop`)
/// blocks until every ticket finished, which is what makes the erased
/// borrow in [`Group::work`] sound.
pub(crate) struct GroupHandle<'scope> {
    group: Arc<Group>,
    joined: bool,
    _borrow: PhantomData<&'scope ()>,
}

impl GroupHandle<'_> {
    /// Blocks until all tickets finished, then re-raises the first ticket
    /// panic (if any) on this thread.
    pub(crate) fn join(mut self) {
        self.joined = true;
        if let Some(payload) = self.wait() {
            std::panic::resume_unwind(payload);
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = lock(&self.group.state);
        while st.pending > 0 {
            st = self.group.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panic.take()
    }
}

impl Drop for GroupHandle<'_> {
    fn drop(&mut self) {
        if !self.joined {
            // Still block for the borrow's sake, but swallow the panic —
            // this drop may already be running during an unwind.
            let _ = self.wait();
        }
    }
}

/// Enqueues `tickets` invocations of `work` on the pool (growing it to at
/// least `tickets` workers) and returns the handle to wait on.
pub(crate) fn submit<'scope>(
    tickets: usize,
    work: &'scope (dyn Fn() + Sync),
) -> GroupHandle<'scope> {
    debug_assert!(tickets >= 1);
    // SAFETY (lifetime erasure): `GroupHandle` — returned below and tied
    // to `'scope` — blocks in both `join` and `Drop` until every ticket
    // has run, so workers never observe `work` after `'scope` ends.
    let erased: *const (dyn Fn() + Sync) = unsafe {
        std::mem::transmute::<&'scope (dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work)
    };
    let group = Arc::new(Group {
        work: erased,
        state: Mutex::new(GroupState { pending: tickets, panic: None }),
        done: Condvar::new(),
    });
    let pool = pool();
    {
        let mut st = lock(&pool.state);
        while st.workers < tickets {
            st.workers += 1;
            std::thread::Builder::new()
                .name(format!("sg-par-{}", st.workers))
                .spawn(worker_main)
                .expect("spawning a pool worker thread");
        }
        for _ in 0..tickets {
            st.queue.push_back(Arc::clone(&group));
        }
    }
    pool.work_ready.notify_all();
    GroupHandle { group, joined: false, _borrow: PhantomData }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn groups_run_all_tickets_and_reuse_threads() {
        let hits = AtomicUsize::new(0);
        let body = || {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        super::submit(4, &body).join();
        super::submit(4, &body).join();
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn panicking_tickets_do_not_kill_the_pool() {
        let boom = || panic!("ticket boom");
        let result = std::panic::catch_unwind(|| super::submit(2, &boom).join());
        assert!(result.is_err(), "ticket panic must reach the submitter");
        // The pool is still serviceable afterwards.
        let ok = AtomicUsize::new(0);
        let body = || {
            ok.fetch_add(1, Ordering::Relaxed);
        };
        super::submit(3, &body).join();
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn dropping_an_unjoined_handle_still_waits() {
        // The handle's Drop must block until the borrow is dead; if it did
        // not, `flag` could be written after the stack frame unwound.
        let flag = AtomicUsize::new(0);
        {
            let body = || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.fetch_add(1, Ordering::Relaxed);
            };
            let _handle = super::submit(2, &body);
        }
        assert_eq!(flag.load(Ordering::Relaxed), 2, "drop returned before tickets finished");
    }
}
