//! The parallel-iterator layer: an indexed chunk-splitting design.
//!
//! Every parallel iterator describes a pipeline over an indexed *base*
//! (a range, a slice, a zip of slices). [`ParallelIterator::seq_chunk`]
//! instantiates the whole pipeline as a plain sequential [`Iterator`] over
//! one contiguous sub-range of the base; the [`drive`] function splits the
//! base into [`chunk_bounds`]-determined chunks, hands them to the
//! persistent [`crate::pool`] workers through an atomic cursor, and
//! returns the per-chunk results **in chunk order**. Terminal operations combine that ordered
//! vector left-to-right, which is what makes every result — floating-point
//! rounding included — independent of the thread count (see the crate
//! docs).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Fixed upper bound on the number of chunks a terminal operation splits
/// its base into. Must depend on nothing but compile-time constants so that
/// chunk boundaries — and therefore combination trees — are a pure function
/// of the base length.
const MAX_CHUNKS: usize = 64;

/// Splits `0..len` into at most [`MAX_CHUNKS`] contiguous ranges whose
/// sizes differ by at most one. A pure function of `len` — never of the
/// thread count — which is the heart of the determinism contract.
pub fn chunk_bounds(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = len.min(MAX_CHUNKS);
    let base = len / chunks;
    let rem = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let end = start + base + usize::from(i < rem);
        bounds.push(start..end);
        start = end;
    }
    bounds
}

/// Runs `per_chunk` over every chunk of `p`'s base index space and returns
/// the results in chunk order. With more than one configured thread the
/// chunks are distributed dynamically (persistent pool workers pull the
/// next chunk index from an atomic cursor — see [`crate::pool`]); at one
/// thread, or when already running *on* a pool worker (nested
/// parallelism), everything runs inline. A panic in any chunk is
/// propagated to the caller after all workers have stopped.
pub(crate) fn drive<P, R, F>(p: &P, per_chunk: F) -> Vec<R>
where
    P: ParallelIterator + Sync,
    R: Send,
    F: Fn(&P, Range<usize>) -> R + Sync,
{
    let bounds = chunk_bounds(p.base_len());
    if bounds.is_empty() {
        return Vec::new();
    }
    let workers = crate::current_num_threads().min(bounds.len());
    if workers <= 1 || crate::pool::on_worker_thread() {
        crate::obs::record_op(bounds.len(), 1);
        return bounds.into_iter().map(|r| per_chunk(p, r)).collect();
    }
    crate::obs::record_op(bounds.len(), workers);
    let cursor = AtomicUsize::new(0);
    let collected: std::sync::Mutex<Vec<(usize, R)>> =
        std::sync::Mutex::new(Vec::with_capacity(bounds.len()));
    let ticket = || {
        let mut mine: Vec<(usize, R)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(range) = bounds.get(i) else { break };
            mine.push((i, per_chunk(p, range.clone())));
        }
        if !mine.is_empty() {
            collected.lock().unwrap_or_else(|e| e.into_inner()).extend(mine);
        }
    };
    crate::pool::submit(workers, &ticket).join();
    let tagged = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<Option<R>> = Vec::with_capacity(bounds.len());
    out.resize_with(bounds.len(), || None);
    for (i, r) in tagged {
        out[i] = Some(r);
    }
    out.into_iter().map(|o| o.expect("every chunk ran exactly once")).collect()
}

/// Like [`drive`], but *folds* the per-chunk results with `combine` instead
/// of materializing them all: partials are merged strictly in chunk order
/// as they arrive (out-of-order completions wait in a stash), so the
/// combination tree is the same left fold as [`drive`]'s — still
/// thread-invariant — while peak memory stays at the accumulator plus the
/// chunks currently in flight rather than one retained partial per chunk.
/// Returns `None` for an empty base.
pub(crate) fn drive_fold<P, R, F, M>(p: &P, per_chunk: F, mut combine: M) -> Option<R>
where
    P: ParallelIterator + Sync,
    R: Send,
    F: Fn(&P, Range<usize>) -> R + Sync,
    M: FnMut(R, R) -> R,
{
    let bounds = chunk_bounds(p.base_len());
    if bounds.is_empty() {
        return None;
    }
    let workers = crate::current_num_threads().min(bounds.len());
    if workers <= 1 || crate::pool::on_worker_thread() {
        crate::obs::record_op(bounds.len(), 1);
        // Inline: one live partial at a time.
        let mut acc: Option<R> = None;
        for range in bounds {
            let part = per_chunk(p, range);
            acc = Some(match acc {
                None => part,
                Some(a) => combine(a, part),
            });
        }
        return acc;
    }
    crate::obs::record_op(bounds.len(), workers);
    let cursor = AtomicUsize::new(0);
    // Per-chunk partials land in `slots`; the caller merges them in chunk
    // order as they become ready. `live_tickets` lets the caller stop
    // waiting if a ticket dies mid-chunk (the pool re-raises the panic in
    // `join` below).
    struct FoldState<R> {
        slots: Vec<Option<R>>,
        live_tickets: usize,
    }
    let sync = std::sync::Mutex::new(FoldState {
        slots: {
            let mut v: Vec<Option<R>> = Vec::with_capacity(bounds.len());
            v.resize_with(bounds.len(), || None);
            v
        },
        live_tickets: workers,
    });
    let ready = std::sync::Condvar::new();
    let ticket = || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(range) = bounds.get(i) else { break };
            let part = per_chunk(p, range.clone());
            let mut st = sync.lock().unwrap_or_else(|e| e.into_inner());
            st.slots[i] = Some(part);
            drop(st);
            ready.notify_all();
        }));
        let mut st = sync.lock().unwrap_or_else(|e| e.into_inner());
        st.live_tickets -= 1;
        drop(st);
        ready.notify_all();
        if let Err(payload) = outcome {
            std::panic::resume_unwind(payload); // recorded by the pool group
        }
    };
    let handle = crate::pool::submit(workers, &ticket);
    let mut acc: Option<R> = None;
    let mut next = 0usize;
    {
        let mut st = sync.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            while next < bounds.len() && st.slots[next].is_some() {
                let part = st.slots[next].take().expect("checked is_some");
                drop(st); // combine outside the lock
                acc = Some(match acc.take() {
                    None => part,
                    Some(a) => combine(a, part),
                });
                next += 1;
                st = sync.lock().unwrap_or_else(|e| e.into_inner());
            }
            if next == bounds.len() || st.live_tickets == 0 {
                break;
            }
            st = ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    handle.join(); // re-raises a ticket panic here
    assert_eq!(next, bounds.len(), "every chunk merges exactly once");
    acc
}

/// Offset-writing collect for indexed pipelines: allocates one buffer of
/// exactly `base_len` slots and has every chunk write its items directly
/// into its own window (`chunk.start..chunk.end`) of that buffer. The
/// windows are disjoint by construction — the same contract that makes
/// mutable slice chunking sound — and the values land at the same positions
/// the concatenating path would put them, so the result is identical.
///
/// Each chunk asserts it produced exactly one item per base position before
/// finishing, so a broken `INDEXED` claim panics instead of exposing
/// uninitialized memory; `set_len` runs only after every chunk completed.
/// If a chunk panics mid-write the buffer is dropped at length 0 — already
/// written items leak, but nothing is double-dropped or read uninitialized.
fn indexed_collect<P>(p: P) -> Vec<P::Item>
where
    P: ParallelIterator + Sync,
{
    let len = p.base_len();
    let mut buf: Vec<P::Item> = Vec::with_capacity(len);
    struct SendPtr<T>(*mut T);
    // SAFETY: only disjoint windows are written through the pointer.
    unsafe impl<T: Send> Send for SendPtr<T> {}
    // SAFETY: see `Send`.
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let base = SendPtr(buf.as_mut_ptr());
    let base = &base;
    drive(&p, |p, r| {
        let mut at = r.start;
        let end = r.end;
        for item in unsafe { p.seq_chunk(r.clone()) } {
            assert!(at < end, "indexed pipeline produced more than one item per base position");
            // SAFETY: `at` lies in this chunk's window, windows are
            // disjoint across chunks, and each slot is written once.
            unsafe { base.0.add(at).write(item) };
            at += 1;
        }
        assert_eq!(at, end, "indexed pipeline produced fewer items than base positions");
    });
    // SAFETY: every chunk filled its whole window (asserted above), and the
    // windows partition 0..len, so all `len` slots are initialized.
    unsafe { buf.set_len(len) };
    buf
}

/// A parallel iterator: an indexed pipeline that can be instantiated as a
/// sequential iterator over any contiguous chunk of its base.
///
/// Mirrors the `rayon::iter::ParallelIterator` surface this workspace uses;
/// adapters compose pipelines, terminal operations execute them via
/// [`drive`]. Unlike real rayon there is no indexed/unindexed trait split —
/// everything here is chunked at the indexed base, which preserves rayon's
/// observable semantics (order-preserving `collect`, per-split `fold`
/// accumulators) for the combinator subset the workspace uses.
pub trait ParallelIterator: Sized {
    /// Element type produced by the pipeline.
    type Item: Send;
    /// The sequential iterator covering one chunk of the base.
    type SeqIter<'a>: Iterator<Item = Self::Item>
    where
        Self: 'a;

    /// True when the pipeline yields exactly one item per base position, in
    /// base order — base sources and index-preserving adapters (`map`,
    /// `enumerate`, `zip`, `copied`) propagate it; length-changing adapters
    /// (`filter`, `filter_map`, `flat_map_iter`, `fold`) reset it to false.
    /// [`ParallelIterator::collect`] uses it to write chunks straight into
    /// their windows of one pre-sized buffer instead of concatenating
    /// per-chunk vectors.
    const INDEXED: bool = false;

    /// Length of the *base* index space (pre-`filter`/`flat_map_iter`).
    fn base_len(&self) -> usize;

    /// Instantiates the pipeline over `range` of the base.
    ///
    /// # Safety
    ///
    /// `range` must lie within `0..base_len()`, and while any returned
    /// iterator (or item borrowed from it) is alive, no other `seq_chunk`
    /// call on the same pipeline may be given an overlapping range:
    /// mutable sources ([`crate::slice::IterMut`],
    /// [`crate::slice::ChunksMut`]) reborrow their elements mutably per
    /// range, so overlap would alias `&mut`. [`drive`] — the only caller
    /// in this crate — partitions `0..base_len()` into disjoint chunks.
    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_>;

    // ---------------------------------------------------------------- adapters

    /// Parallel `map`.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync,
    {
        Map { base: self, f }
    }

    /// Parallel `filter`.
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, pred }
    }

    /// Parallel `filter_map`.
    fn filter_map<T, F>(self, f: F) -> FilterMap<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> Option<T> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Parallel `flat_map` over a *serial* inner iterator — rayon's
    /// `flat_map_iter`. Parallelism comes from the outer base; each item's
    /// expansion runs inline on the worker that owns its chunk.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Parallel `enumerate`: pairs every item with its base position.
    /// As in real rayon, only *indexed* pipelines (one item per base
    /// position) may be enumerated — `filter(..).enumerate()` is a
    /// compile error, not silently wrong indices.
    fn enumerate(self) -> Enumerate<Self>
    where
        Self: IndexedParallelIterator,
    {
        Enumerate { base: self }
    }

    /// Locksteps two *indexed* pipelines; the result is as long as the
    /// shorter base.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        Self: IndexedParallelIterator,
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Parallel `copied` (for iterators over `&T`).
    fn copied<'data, T>(self) -> Copied<Self>
    where
        T: 'data + Copy + Send,
        Self: ParallelIterator<Item = &'data T>,
    {
        Copied { base: self }
    }

    /// Rayon-style `fold`: each chunk folds its items into a fresh
    /// `identity()` accumulator, yielding one accumulator per chunk.
    /// Combine the per-chunk accumulators with [`ParallelIterator::reduce`].
    ///
    /// Note the contract difference from [`Iterator::fold`]: the closure
    /// sees only the items of *one* split, so the final answer must be
    /// assembled with an associative reduction — exactly as in real rayon.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        Fold { base: self, identity, fold_op }
    }

    // --------------------------------------------------------------- terminals

    /// Rayon-style `reduce`: combines all items with `op`, starting from
    /// `identity()` only when the iterator is empty. Per-chunk partials are
    /// merged *streamingly* in chunk order — the reduction tree is
    /// thread-invariant, and at most the accumulator plus the in-flight
    /// chunks' partials are alive at once (fold-style vector accumulators
    /// do not pile up 64-deep).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        Self: Sync,
    {
        drive_fold(
            &self,
            |p, r| {
                unsafe { p.seq_chunk(r) }.fold(None, |acc, x| {
                    Some(match acc {
                        None => x,
                        Some(a) => op(a, x),
                    })
                })
            },
            |a, b| match (a, b) {
                (Some(a), Some(b)) => Some(op(a, b)),
                (one, other) => one.or(other),
            },
        )
        .flatten()
        .unwrap_or_else(identity)
    }

    /// Calls `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self: Sync,
    {
        drive(&self, |p, r| unsafe { p.seq_chunk(r) }.for_each(&f));
    }

    /// Collects into any [`FromIterator`] collection, preserving base
    /// order. Indexed pipelines (one item per base position) write each
    /// chunk straight into its disjoint window of one buffer pre-sized to
    /// the base length — no per-chunk vectors, no copy-out pass. Other
    /// pipelines append chunk buffers into one growing vector as they
    /// arrive (in chunk order), so completed chunks are freed immediately.
    /// For `C = Vec<T>` the trailing `collect` reuses the allocation.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
        Self: Sync,
    {
        if Self::INDEXED {
            return indexed_collect(self).into_iter().collect();
        }
        drive_fold(
            &self,
            |p, r| unsafe { p.seq_chunk(r) }.collect::<Vec<_>>(),
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap_or_default()
        .into_iter()
        .collect()
    }

    /// Sums all items (per-chunk sums combined in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
        Self: Sync,
    {
        drive_fold(
            &self,
            |p, r| unsafe { p.seq_chunk(r) }.sum::<S>(),
            |a, b| [a, b].into_iter().sum(),
        )
        .unwrap_or_else(|| std::iter::empty::<S>().sum())
    }

    /// Largest item; on ties the later item wins, matching
    /// [`Iterator::max`].
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
        Self: Sync,
    {
        drive(&self, |p, r| unsafe { p.seq_chunk(r) }.max()).into_iter().flatten().fold(
            None,
            |best, x| match best {
                None => Some(x),
                Some(b) => Some(if x >= b { x } else { b }),
            },
        )
    }

    /// Smallest item; on ties the earlier item wins, matching
    /// [`Iterator::min`].
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
        Self: Sync,
    {
        drive(&self, |p, r| unsafe { p.seq_chunk(r) }.min()).into_iter().flatten().fold(
            None,
            |best, x| match best {
                None => Some(x),
                Some(b) => Some(if x < b { x } else { b }),
            },
        )
    }

    /// True when any item satisfies `pred`. Chunks observed after a hit
    /// short-circuit (the answer itself is order-independent).
    fn any<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync,
        Self: Sync,
    {
        let found = AtomicBool::new(false);
        let partials = drive(&self, |p, r| {
            if found.load(Ordering::Relaxed) {
                return false;
            }
            let hit = unsafe { p.seq_chunk(r) }.any(&pred);
            if hit {
                found.store(true, Ordering::Relaxed);
            }
            hit
        });
        partials.into_iter().any(|b| b)
    }

    /// True when every item satisfies `pred`.
    fn all<P>(self, pred: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync,
        Self: Sync,
    {
        let failed = AtomicBool::new(false);
        let partials = drive(&self, |p, r| {
            if failed.load(Ordering::Relaxed) {
                return false;
            }
            let ok = unsafe { p.seq_chunk(r) }.all(&pred);
            if !ok {
                failed.store(true, Ordering::Relaxed);
            }
            ok
        });
        partials.into_iter().all(|b| b)
    }

    /// Number of items produced by the pipeline.
    fn count(self) -> usize
    where
        Self: Sync,
    {
        drive(&self, |p, r| unsafe { p.seq_chunk(r) }.count()).into_iter().sum()
    }
}

/// Marker for pipelines that yield exactly one item per base position —
/// rayon's `IndexedParallelIterator` distinction. Length-changing adapters
/// (`filter`, `filter_map`, `flat_map_iter`, `fold`) are *not* indexed, so
/// position-sensitive adapters (`enumerate`, `zip`) refuse them at compile
/// time instead of producing silently wrong indices or pairings.
pub trait IndexedParallelIterator: ParallelIterator {}

impl<B, T, F> IndexedParallelIterator for Map<B, F>
where
    B: IndexedParallelIterator,
    T: Send,
    F: Fn(B::Item) -> T + Sync,
{
}

impl<B> IndexedParallelIterator for Enumerate<B> where B: IndexedParallelIterator {}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
}

impl<'data, B, T> IndexedParallelIterator for Copied<B>
where
    T: 'data + Copy + Send,
    B: IndexedParallelIterator<Item = &'data T>,
{
}

/// Conversion into a parallel iterator (rayon's `into_par_iter()` entry
/// point); implemented for integer ranges in [`crate::range`].
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator this converts into.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

// ------------------------------------------------------------------- adapters

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    T: Send,
    F: Fn(B::Item) -> T + Sync,
{
    type Item = T;
    type SeqIter<'a>
        = std::iter::Map<B::SeqIter<'a>, &'a F>
    where
        Self: 'a;

    const INDEXED: bool = B::INDEXED;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.base.seq_chunk(range) }.map(&self.f)
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    pred: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync,
{
    type Item = B::Item;
    type SeqIter<'a>
        = std::iter::Filter<B::SeqIter<'a>, &'a P>
    where
        Self: 'a;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.base.seq_chunk(range) }.filter(&self.pred)
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    T: Send,
    F: Fn(B::Item) -> Option<T> + Sync,
{
    type Item = T;
    type SeqIter<'a>
        = std::iter::FilterMap<B::SeqIter<'a>, &'a F>
    where
        Self: 'a;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.base.seq_chunk(range) }.filter_map(&self.f)
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, I, F> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(B::Item) -> I + Sync,
{
    type Item = I::Item;
    type SeqIter<'a>
        = std::iter::FlatMap<B::SeqIter<'a>, I, &'a F>
    where
        Self: 'a;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.base.seq_chunk(range) }.flat_map(&self.f)
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);
    type SeqIter<'a>
        = std::iter::Zip<Range<usize>, B::SeqIter<'a>>
    where
        Self: 'a;

    const INDEXED: bool = B::INDEXED;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        (range.start..range.end).zip(unsafe { self.base.seq_chunk(range) })
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter<'a>
        = std::iter::Zip<A::SeqIter<'a>, B::SeqIter<'a>>
    where
        Self: 'a;

    const INDEXED: bool = A::INDEXED && B::INDEXED;

    fn base_len(&self) -> usize {
        self.a.base_len().min(self.b.base_len())
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.a.seq_chunk(range.clone()).zip(self.b.seq_chunk(range)) }
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<B> {
    base: B,
}

impl<'data, B, T> ParallelIterator for Copied<B>
where
    T: 'data + Copy + Send,
    B: ParallelIterator<Item = &'data T>,
{
    type Item = T;
    type SeqIter<'a>
        = std::iter::Copied<B::SeqIter<'a>>
    where
        Self: 'a;

    const INDEXED: bool = B::INDEXED;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        unsafe { self.base.seq_chunk(range) }.copied()
    }
}

/// See [`ParallelIterator::fold`]: yields one accumulator per driven chunk.
pub struct Fold<B, ID, F> {
    base: B,
    identity: ID,
    fold_op: F,
}

impl<B, T, ID, F> ParallelIterator for Fold<B, ID, F>
where
    B: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, B::Item) -> T + Sync,
{
    type Item = T;
    type SeqIter<'a>
        = std::iter::Once<T>
    where
        Self: 'a;

    fn base_len(&self) -> usize {
        self.base.base_len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        std::iter::once(
            unsafe { self.base.seq_chunk(range) }.fold((self.identity)(), &self.fold_op),
        )
    }
}
