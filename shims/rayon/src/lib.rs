//! Offline shim for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build container has no registry access, so this crate provides the
//! exact `rayon` surface the workspace uses with **sequential** execution:
//! `par_iter()` hands back the plain `std` iterator, so every adapter
//! (`map`, `zip`, `enumerate`, `filter`, `sum`, `any`, `collect`,
//! `for_each`, …) comes from [`std::iter::Iterator`] for free.
//!
//! Every kernel decision in the workspace is deterministic in
//! `(seed, element id)`, so sequential execution is *observably identical*
//! to the real thread pool — only slower. Restoring true parallelism
//! (swapping this shim for crates.io rayon, or growing a scoped-thread
//! backend here) is tracked as a ROADMAP open item.

/// Mirror of `rayon::range`: `into_par_iter()` on a `Range<T>` returns the
/// range itself, which is already an iterator.
pub mod range {
    /// Sequential stand-in for `rayon::range::Iter<T>`.
    pub type Iter<T> = std::ops::Range<T>;
}

pub mod iter {
    /// `into_par_iter()` for any owned iterable (ranges, vectors, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the sequential iterator standing in for the parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// Slice-level `par_*` methods (`Vec` reaches them through deref).
    pub trait ParallelSliceOps<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        /// Sequential stand-in for `par_sort_unstable`.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Sequential stand-in for `par_sort_unstable_by`.
        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering;
        /// Sequential stand-in for `par_sort_unstable_by_key`.
        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K;
    }

    impl<T> ParallelSliceOps<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }

        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.sort_unstable_by(compare);
        }

        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: FnMut(&T) -> K,
        {
            self.sort_unstable_by_key(key);
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSliceOps};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_and_slice_paths_work() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.par_iter().sum::<u32>(), 90);
        let mut w = vec![3, 1, 2];
        w.par_sort_unstable();
        assert_eq!(w, [1, 2, 3]);
    }
}
