//! Offline shim for [`rayon`](https://crates.io/crates/rayon) with a **real
//! multi-threaded backend** built on [`std::thread::scope`].
//!
//! The build container has no registry access, so this crate provides the
//! exact `rayon` surface the workspace uses. Unlike the original sequential
//! facade, work is now genuinely parallel: every parallel iterator is an
//! *indexed* pipeline over a base source (a range, a slice, a zip of
//! slices). At a terminal operation the base index space is split into
//! contiguous chunks, [`pool`] worker threads pull chunks off a shared
//! atomic cursor, each chunk runs the whole adapter pipeline sequentially,
//! and the per-chunk results are combined **in chunk order**.
//!
//! # Determinism contract
//!
//! Chunk boundaries depend only on the *length* of the base source — never
//! on the thread count (see [`iter::chunk_bounds`]). Because every
//! combining step (collect concatenation, `sum`, `fold`+`reduce`, `max`)
//! merges per-chunk results left-to-right in chunk order, the full result —
//! including the exact floating-point rounding — is **bit-identical at any
//! thread count**, including the sequential fallback at 1 thread. The
//! top-level `parallel_equivalence` test suite pins this contract for every
//! compression scheme and stage-2 algorithm in the workspace.
//!
//! The same reasoning makes the slice sorts deterministic: the
//! `par_sort_unstable*` entry points are backed by a *stable* parallel
//! merge sort (per-chunk stable sorts, then index merges that prefer the
//! left run on ties), and a stable sort's output is the unique
//! stability-preserving permutation regardless of how many runs it was
//! split into.
//!
//! # Thread count
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_num_threads`] (a shim-only programmatic override; pass 0 to
//!    clear it),
//! 2. the `SG_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (rayon compatible),
//! 4. [`std::thread::available_parallelism`].
//!
//! At 1 thread no threads are spawned and chunks run inline on the caller.
//! Workers live in a **persistent process-wide pool** ([`pool`]): they are
//! spawned lazily on the first multi-threaded terminal op, grow to the
//! largest worker count ever requested, and park between ops — a daemon
//! serving many small requests no longer pays a spawn/join per request.
//! Nested parallel calls made *from* a pool worker run inline over the
//! same chunk order (a worker must never block on the pool), so nesting
//! can never deadlock and never changes results.

pub mod iter;
mod obs;
pub mod pool;
pub mod range;
pub mod slice;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceOps;
}

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; 0 means "unset, use the default".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Environment/default thread count, resolved once per process.
static DEFAULT: OnceLock<usize> = OnceLock::new();

fn default_num_threads() -> usize {
    *DEFAULT.get_or_init(|| {
        for var in ["SG_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(raw) = std::env::var(var) {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    if n >= 1 {
                        return n;
                    }
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Number of worker threads terminal operations may use (rayon-compatible
/// entry point).
pub fn current_num_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_num_threads(),
        n => n,
    }
}

/// Overrides the worker-thread count for subsequent parallel calls in this
/// process; `set_num_threads(0)` restores the environment-derived default.
///
/// Shim-only API (real rayon sizes its global pool via
/// `ThreadPoolBuilder`): results never depend on the thread count, so this
/// is a performance knob and a test hook, not a semantic one.
pub fn set_num_threads(threads: usize) {
    OVERRIDE.store(threads, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::{Mutex, MutexGuard};

    /// The thread-count override is process-global and the test harness
    /// runs tests concurrently, so every test that touches the knob must
    /// hold this lock for its whole body.
    static KNOB: Mutex<()> = Mutex::new(());

    fn lock_knob() -> MutexGuard<'static, ()> {
        KNOB.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` at several thread counts and asserts all results agree.
    fn invariant<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
        let _guard = lock_knob();
        crate::set_num_threads(1);
        let base = f();
        for t in [2, 4, 8] {
            crate::set_num_threads(t);
            let got = f();
            assert_eq!(got, base, "result changed at {t} threads");
        }
        crate::set_num_threads(0);
        base
    }

    #[test]
    fn range_and_slice_paths_work() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.par_iter().sum::<u32>(), 90);
        let mut w = vec![3, 1, 2];
        w.par_sort_unstable();
        assert_eq!(w, [1, 2, 3]);
    }

    #[test]
    fn map_collect_preserves_order_at_any_thread_count() {
        let out = invariant(|| (0u64..10_000).into_par_iter().map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(out, (0u64..10_000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn filter_and_filter_map_keep_base_order() {
        let out = invariant(|| {
            (0u32..5_000).into_par_iter().filter(|&x| x % 3 == 0).map(|x| x + 1).collect::<Vec<_>>()
        });
        assert_eq!(out, (0u32..5_000).filter(|&x| x % 3 == 0).map(|x| x + 1).collect::<Vec<_>>());
        let fm = invariant(|| {
            (0i64..999)
                .into_par_iter()
                .filter_map(|x| (x % 7 == 0).then_some(-x))
                .collect::<Vec<_>>()
        });
        assert_eq!(fm.len(), 143);
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64).sin() / 3.0).collect();
        let bits = invariant(|| data.par_iter().map(|&x| x * 1.000001).sum::<f64>().to_bits());
        assert!(f64::from_bits(bits).is_finite());
    }

    #[test]
    fn fold_reduce_matches_sequential_semantics() {
        // Histogram via per-chunk accumulators merged in order.
        let hist = invariant(|| {
            (0usize..10_000)
                .into_par_iter()
                .fold(
                    || vec![0u32; 10],
                    |mut acc, x| {
                        acc[x % 10] += 1;
                        acc
                    },
                )
                .reduce(
                    || vec![0u32; 10],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x += y;
                        }
                        a
                    },
                )
        });
        assert_eq!(hist, vec![1000u32; 10]);
    }

    #[test]
    fn zip_enumerate_and_flat_map_iter() {
        let a: Vec<u32> = (0..1000).collect();
        let b: Vec<u32> = (0..1000).map(|x| 2 * x).collect();
        let dot = invariant(|| a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum::<u32>());
        assert_eq!(dot, (0..1000u32).map(|x| x * 2 * x).sum());
        let idx =
            invariant(|| a.par_iter().enumerate().map(|(i, &x)| i as u32 + x).collect::<Vec<_>>());
        assert_eq!(idx[999], 1998);
        let fm =
            invariant(|| (0u32..100).into_par_iter().flat_map_iter(|x| [x, x]).collect::<Vec<_>>());
        assert_eq!(fm.len(), 200);
        assert_eq!(&fm[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn max_min_any_count() {
        assert_eq!(invariant(|| (0u32..12345).into_par_iter().max()), Some(12344));
        assert_eq!(invariant(|| (5u32..12345).into_par_iter().min()), Some(5));
        assert!(invariant(|| (0u32..12345).into_par_iter().any(|x| x == 9999)));
        assert!(!invariant(|| (0u32..12345).into_par_iter().any(|x| x > 99999)));
        assert_eq!(
            invariant(|| (0u32..9999).into_par_iter().filter(|&x| x % 2 == 0).count()),
            5000
        );
    }

    #[test]
    fn par_iter_mut_and_chunks_mut_cover_all_elements() {
        let _guard = lock_knob();
        crate::set_num_threads(4);
        let mut v = vec![1u64; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as u64);
        assert_eq!(v[9_999], 10_000);
        let mut m = vec![0u8; 1000];
        m.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = (i % 251) as u8 + 1;
            }
        });
        assert!(m.iter().all(|&x| x != 0));
        crate::set_num_threads(0);
    }

    #[test]
    fn parallel_sort_is_stable_and_thread_invariant() {
        // Keys collide heavily; the payload records the original position.
        let data: Vec<(u8, u32)> =
            (0..50_000u32).map(|i| ((i.wrapping_mul(2654435761) % 7) as u8, i)).collect();
        let sorted = invariant(|| {
            let mut v = data.clone();
            v.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
            v
        });
        let mut expect = data.clone();
        expect.sort_by_key(|a| a.0); // std stable sort = the unique stable order
        assert_eq!(sorted, expect);
    }

    #[test]
    fn sort_by_key_and_plain_sort() {
        let _guard = lock_knob();
        let mut v: Vec<u32> = (0..20_000).map(|i: u32| i.wrapping_mul(48271) % 65536).collect();
        let mut w = v.clone();
        crate::set_num_threads(8);
        v.par_sort_unstable();
        w.sort_unstable();
        assert_eq!(v, w);
        let mut pairs: Vec<(u32, u32)> = (0..9999u32).map(|i| (i % 13, i)).collect();
        pairs.par_sort_unstable_by_key(|&(k, _)| k);
        assert!(pairs.windows(2).all(|p| p[0].0 <= p[1].0));
        crate::set_num_threads(0);
    }

    #[test]
    fn offset_collect_indexed_matches_sequential() {
        // zip + map + enumerate + copied all keep the indexed fast path
        // (per-chunk windows into one pre-sized buffer); filter drops to
        // the concatenating path. Both must agree with sequential exactly.
        let a: Vec<u64> = (0..30_011).collect();
        let b: Vec<u64> = (0..30_011).map(|x| x ^ 0x5a).collect();
        let zipped = invariant(|| {
            a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x.wrapping_mul(3) + y).collect::<Vec<_>>()
        });
        let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_mul(3) + y).collect();
        assert_eq!(zipped, expect);
        let en = invariant(|| a.par_iter().copied().enumerate().collect::<Vec<_>>());
        assert!(en.iter().all(|&(i, x)| i as u64 == x));
        let filtered =
            invariant(|| a.par_iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>());
        assert_eq!(filtered, a.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_merge_rounds_preserve_stability_with_odd_run_counts() {
        let _guard = lock_knob();
        // 5 workers -> 5 sorted runs -> pairing rounds of (2,2,1), (2,1),
        // (1): both the odd-run pass-through and multi-round concurrent
        // merging execute, and the stable order must survive all of it.
        let data: Vec<(u8, u32)> =
            (0..40_000u32).map(|i| ((i.wrapping_mul(2246822519) % 5) as u8, i)).collect();
        let mut expect = data.clone();
        expect.sort_by_key(|p| p.0);
        for t in [1, 3, 5, 8] {
            crate::set_num_threads(t);
            let mut v = data.clone();
            v.par_sort_unstable_by_key(|p| p.0);
            assert_eq!(v, expect, "stable order must hold at {t} threads");
        }
        crate::set_num_threads(0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let _guard = lock_knob();
        crate::set_num_threads(8);
        let empty: Vec<u32> = (0u32..0).into_par_iter().collect();
        assert!(empty.is_empty());
        assert_eq!((0u32..0).into_par_iter().sum::<u32>(), 0);
        assert_eq!((0u32..0).into_par_iter().max(), None);
        assert_eq!((0u32..1).into_par_iter().collect::<Vec<_>>(), vec![0]);
        let mut one = [3u8];
        one.par_sort_unstable();
        crate::set_num_threads(0);
    }

    #[test]
    fn chunks_run_on_spawned_worker_threads() {
        let _guard = lock_knob();
        use std::collections::HashSet;
        use std::sync::Mutex;
        crate::set_num_threads(4);
        let caller = std::thread::current().id();
        let ids = Mutex::new(HashSet::new());
        (0u32..64).into_par_iter().for_each(|_| {
            ids.lock().expect("no poison").insert(std::thread::current().id());
            std::thread::yield_now();
        });
        let ids = ids.into_inner().expect("no poison");
        // With >1 configured workers every chunk runs on a spawned thread,
        // never inline on the caller (how many workers get scheduled is up
        // to the OS, so that is all we can assert deterministically).
        assert!(!ids.is_empty() && !ids.contains(&caller), "chunks ran inline on the caller");
        crate::set_num_threads(0);
    }

    #[test]
    fn nested_parallelism_runs_inline_and_agrees() {
        // A parallel op issued from inside a pool worker must not block on
        // the pool (deadlock) and must produce the sequential answer.
        let nested = invariant(|| {
            (0u64..64)
                .into_par_iter()
                .map(|x| (0u64..100).into_par_iter().map(|y| x * y).sum::<u64>())
                .collect::<Vec<_>>()
        });
        let expect: Vec<u64> = (0u64..64).map(|x| (0u64..100).map(|y| x * y).sum()).collect();
        assert_eq!(nested, expect);
    }

    #[test]
    fn pool_survives_panics_and_keeps_serving() {
        let _guard = lock_knob();
        crate::set_num_threads(4);
        for _ in 0..3 {
            let r = std::panic::catch_unwind(|| {
                (0u32..500).into_par_iter().for_each(|x| {
                    if x == 250 {
                        panic!("mid-op panic");
                    }
                });
            });
            assert!(r.is_err());
            let sum: u64 = (0u64..10_000).into_par_iter().sum();
            assert_eq!(sum, 49_995_000, "pool must keep working after a panic");
        }
        crate::set_num_threads(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = lock_knob();
        crate::set_num_threads(4);
        let result = std::panic::catch_unwind(|| {
            (0u32..1000).into_par_iter().for_each(|x| {
                if x == 777 {
                    panic!("boom");
                }
            });
        });
        crate::set_num_threads(0);
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }
}
