//! Pool self-telemetry: every terminal parallel operation reports its
//! chunk count and worker occupancy to the workspace observability
//! registry ([`sg_obs::global`]).
//!
//! Strictly observation-only — nothing in the shim reads these values
//! back, so scheduling (and therefore every result) is identical with
//! metrics enabled, disabled, or the handles never resolved. This module
//! is the one divergence from the crates.io rayon surface (see
//! Cargo.toml).

use sg_obs::{Counter, Gauge};
use std::sync::{Arc, OnceLock};

struct PoolMetrics {
    /// Terminal parallel operations driven through the pool (including
    /// inline runs at one worker or under nested parallelism).
    ops: Arc<Counter>,
    /// Total chunks across all operations.
    chunks: Arc<Counter>,
    /// Operations that ran inline on the calling thread.
    inline_ops: Arc<Counter>,
    /// Chunk count of the most recent operation.
    last_chunks: Arc<Gauge>,
    /// Worker tickets of the most recent operation.
    last_workers: Arc<Gauge>,
    /// `last_workers / current_num_threads`, in percent: how much of the
    /// configured pool the last operation could occupy (small inputs
    /// yield fewer chunks than threads).
    utilization_pct: Arc<Gauge>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = sg_obs::global();
        PoolMetrics {
            ops: reg.counter("rayon.ops"),
            chunks: reg.counter("rayon.chunks"),
            inline_ops: reg.counter("rayon.inline_ops"),
            last_chunks: reg.gauge("rayon.last_chunks"),
            last_workers: reg.gauge("rayon.last_workers"),
            utilization_pct: reg.gauge("rayon.utilization_pct"),
        }
    })
}

/// Records one terminal operation split into `chunks` pieces and handed
/// to `workers` pool tickets (1 == ran inline).
pub(crate) fn record_op(chunks: usize, workers: usize) {
    if !sg_obs::metrics_enabled() {
        return;
    }
    let m = metrics();
    m.ops.inc();
    m.chunks.add(chunks as u64);
    if workers <= 1 {
        m.inline_ops.inc();
    }
    m.last_chunks.set(chunks as i64);
    m.last_workers.set(workers as i64);
    let configured = crate::current_num_threads().max(1);
    m.utilization_pct.set((workers.min(configured) * 100 / configured) as i64);
}
