//! Parallel slice operations: `par_iter[_mut]`, `par_chunks_mut`, and the
//! `par_sort_unstable*` family.
//!
//! The sorts are backed by a **stable** parallel merge sort: the slice is
//! cut into runs that worker threads sort independently with the std
//! stable sort, the sorted runs are merged pairwise *by index* (the left
//! run wins ties, preserving stability), and the resulting permutation is
//! applied in place with swaps. Because a stable sort's output is the
//! unique stability-preserving permutation, the result is bit-identical to
//! the sequential `sort_by` fallback no matter how many runs or threads
//! participated — slightly stronger than the `unstable` name promises,
//! and exactly what the workspace's determinism contract needs.

use crate::iter::{IndexedParallelIterator, ParallelIterator};
use std::cmp::Ordering as CmpOrdering;
use std::marker::PhantomData;
use std::ops::Range;

/// Below this length sorting is handed straight to [`slice::sort_by`];
/// threading overhead would dominate.
const SEQ_SORT_CUTOFF: usize = 4096;

/// Parallel iterator over `&[T]` (rayon's `slice::Iter<'data, T>`).
pub struct Iter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;
    type SeqIter<'a>
        = std::slice::Iter<'data, T>
    where
        Self: 'a;

    const INDEXED: bool = true;

    fn base_len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        let whole: &'data [T] = self.slice;
        whole[range].iter()
    }
}

impl<T: Sync> IndexedParallelIterator for Iter<'_, T> {}

/// Parallel iterator over `&mut [T]` (rayon's `slice::IterMut`).
///
/// Stored as a raw pointer so disjoint chunks can be reborrowed mutably
/// from worker threads; the [`ParallelIterator::seq_chunk`] disjointness
/// contract (upheld by the driver) is what makes that sound.
pub struct IterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'data mut [T]>,
}

// Safety: an IterMut owns a unique borrow of the slice; handing disjoint
// sub-ranges to different threads is the same contract as
// `slice::split_at_mut`, and `T: Send` makes the elements themselves
// movable across threads.
unsafe impl<T: Send> Send for IterMut<'_, T> {}
unsafe impl<T: Send> Sync for IterMut<'_, T> {}

impl<'data, T: Send + 'data> ParallelIterator for IterMut<'data, T> {
    type Item = &'data mut T;
    type SeqIter<'a>
        = std::slice::IterMut<'data, T>
    where
        Self: 'a;

    const INDEXED: bool = true;

    fn base_len(&self) -> usize {
        self.len
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        // Safety: the driver hands out non-overlapping ranges within
        // 0..len, so each reborrow aliases nothing.
        unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
        }
        .iter_mut()
    }
}

impl<'data, T: Send + 'data> IndexedParallelIterator for IterMut<'data, T> {}

/// Parallel iterator over disjoint mutable chunks (rayon's
/// `slice::ChunksMut`). The base index space is the *chunk index*.
pub struct ChunksMut<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk_size: usize,
    _marker: PhantomData<&'data mut [T]>,
}

// Safety: as for `IterMut` — chunk indices partition the slice.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

/// Sequential iterator over a sub-range of a [`ChunksMut`].
pub struct ChunksMutSeq<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk_size: usize,
    cur: usize,
    end: usize,
    _marker: PhantomData<&'data mut [T]>,
}

impl<'data, T> Iterator for ChunksMutSeq<'data, T> {
    type Item = &'data mut [T];

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur >= self.end {
            return None;
        }
        let start = self.cur * self.chunk_size;
        let stop = ((self.cur + 1) * self.chunk_size).min(self.len);
        self.cur += 1;
        // Safety: chunk indices address disjoint element ranges, and the
        // driver hands disjoint chunk-index ranges to each worker.
        Some(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), stop - start) })
    }
}

impl<'data, T: Send + 'data> ParallelIterator for ChunksMut<'data, T> {
    type Item = &'data mut [T];
    type SeqIter<'a>
        = ChunksMutSeq<'data, T>
    where
        Self: 'a;

    const INDEXED: bool = true;

    fn base_len(&self) -> usize {
        self.len.div_ceil(self.chunk_size)
    }

    unsafe fn seq_chunk(&self, range: Range<usize>) -> Self::SeqIter<'_> {
        ChunksMutSeq {
            ptr: self.ptr,
            len: self.len,
            chunk_size: self.chunk_size,
            cur: range.start,
            end: range.end,
            _marker: PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IndexedParallelIterator for ChunksMut<'data, T> {}

/// Slice-level `par_*` methods (`Vec` reaches them through deref); the
/// union of rayon's `ParallelSlice` + `ParallelSliceMut` +
/// `IntoParallelRefIterator` surface this workspace uses.
pub trait ParallelSliceOps<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Iter<'_, T>
    where
        T: Sync;
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>
    where
        T: Send;
    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// (the last chunk may be shorter). Panics if `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>
    where
        T: Send;
    /// Parallel sort by `T: Ord` (stable in this shim; see module docs).
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send;
    /// Parallel sort with a comparator (stable in this shim).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Send,
        F: Fn(&T, &T) -> CmpOrdering + Sync;
    /// Parallel sort by key (stable in this shim).
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T> ParallelSliceOps<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T>
    where
        T: Sync,
    {
        Iter { slice: self }
    }

    fn par_iter_mut(&mut self) -> IterMut<'_, T>
    where
        T: Send,
    {
        IterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>
    where
        T: Send,
    {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ChunksMut { ptr: self.as_mut_ptr(), len: self.len(), chunk_size, _marker: PhantomData }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send,
    {
        par_merge_sort(self, &T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Send,
        F: Fn(&T, &T) -> CmpOrdering + Sync,
    {
        par_merge_sort(self, &compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Send,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self, &|a: &T, b: &T| key(a).cmp(&key(b)));
    }
}

/// Stable parallel merge sort (see module docs for why stability is the
/// determinism anchor).
fn par_merge_sort<T, C>(v: &mut [T], cmp: &C)
where
    T: Send,
    C: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let len = v.len();
    let threads = crate::current_num_threads();
    if threads <= 1 || len <= SEQ_SORT_CUTOFF || crate::pool::on_worker_thread() {
        v.sort_by(|a, b| cmp(a, b));
        return;
    }
    // Cut into one run per thread (capped so runs stay non-trivial) and
    // sort the runs concurrently on the persistent pool. Runs are disjoint
    // element ranges, so reborrowing them mutably per run index is the
    // `split_at_mut` contract spelled with raw pointers.
    let runs = threads.min(len.div_ceil(SEQ_SORT_CUTOFF / 2)).max(2);
    let run_len = len.div_ceil(runs);
    let n_runs = len.div_ceil(run_len);
    struct SendPtr<T>(*mut T);
    // SAFETY: only disjoint ranges are materialized from the pointer.
    unsafe impl<T: Send> Send for SendPtr<T> {}
    // SAFETY: see `Send`.
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    let base = SendPtr(v.as_mut_ptr());
    let base = &base; // capture the Sync wrapper, not the raw pointer field
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let ticket = || loop {
        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if i >= n_runs {
            break;
        }
        let start = i * run_len;
        let stop = (start + run_len).min(len);
        // SAFETY: run index ranges partition 0..len and each index is
        // claimed exactly once via the cursor.
        let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), stop - start) };
        piece.sort_by(|a, b| cmp(a, b));
    };
    crate::obs::record_op(n_runs, threads.min(n_runs));
    crate::pool::submit(threads.min(n_runs), &ticket).join();
    // Merge run index lists pairwise until one permutation remains. Pair k
    // of a round merges runs 2k and 2k+1, which cover adjacent disjoint
    // element spans, so all of a round's merges run concurrently on the
    // pool — each ticket reborrows only its own pair's span (the same
    // disjointness contract as the run-sort phase above) and deposits the
    // result in the slot for pair k, so the merged list is ordered by pair
    // position. The pairing is a pure function of the run count — never of
    // the thread count — keeping the merge tree, and thus the permutation,
    // thread-invariant.
    let mut index_runs: Vec<IndexRun> = (0..len)
        .step_by(run_len)
        .map(|s| {
            let stop = (s + run_len).min(len);
            IndexRun { start: s, end: stop, order: (s..stop).collect() }
        })
        .collect();
    while index_runs.len() > 1 {
        let mut pairs: Vec<(IndexRun, Option<IndexRun>)> =
            Vec::with_capacity(index_runs.len().div_ceil(2));
        let mut it = index_runs.into_iter();
        while let Some(left) = it.next() {
            pairs.push((left, it.next()));
        }
        let slots: Vec<std::sync::Mutex<Option<IndexRun>>> =
            pairs.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let pair_cursor = std::sync::atomic::AtomicUsize::new(0);
        let pairs_ref = &pairs;
        let merge_ticket = || loop {
            let k = pair_cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let Some((left, right)) = pairs_ref.get(k) else { break };
            let merged = match right {
                // Odd run out: passes through to the next round unchanged.
                None => left.clone(),
                Some(right) => {
                    // SAFETY: pair spans partition 0..len and each pair
                    // index is claimed exactly once via the cursor, so
                    // this read-only view aliases no other ticket's span.
                    let span = unsafe {
                        std::slice::from_raw_parts(
                            base.0.add(left.start).cast_const(),
                            right.end - left.start,
                        )
                    };
                    merge_index_runs(span, cmp, left, right)
                }
            };
            *slots[k].lock().unwrap_or_else(|e| e.into_inner()) = Some(merged);
        };
        let merge_workers = threads.min(pairs.len());
        if merge_workers <= 1 {
            merge_ticket();
        } else {
            crate::pool::submit(merge_workers, &merge_ticket).join();
        }
        index_runs = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(|e| e.into_inner()).expect("every pair merges"))
            .collect();
    }
    let perm = index_runs.pop().map(|r| r.order).unwrap_or_default();
    // dest[s] = final position of the element currently at s; apply with
    // cycle-following swaps (no clones, no unsafe).
    let mut dest = vec![0usize; len];
    for (i, &s) in perm.iter().enumerate() {
        dest[s] = i;
    }
    for i in 0..len {
        while dest[i] != i {
            let j = dest[i];
            v.swap(i, j);
            dest.swap(i, j);
        }
    }
}

/// A sorted run during the merge phase: the contiguous element span it
/// covers (`start..end` of the original slice) plus the sorted order of the
/// span's *original* indices.
#[derive(Clone)]
struct IndexRun {
    start: usize,
    end: usize,
    order: Vec<usize>,
}

/// Two-pointer merge of two adjacent sorted index runs; `span` covers
/// exactly `left.start..right.end` of the original slice. The left run wins
/// ties, which preserves stability (left indices precede right indices
/// originally).
fn merge_index_runs<T, C>(span: &[T], cmp: &C, left: &IndexRun, right: &IndexRun) -> IndexRun
where
    C: Fn(&T, &T) -> CmpOrdering,
{
    debug_assert_eq!(left.end, right.start, "runs must be adjacent");
    debug_assert_eq!(span.len(), right.end - left.start, "span must cover both runs");
    let base = left.start;
    let mut out = Vec::with_capacity(left.order.len() + right.order.len());
    let (mut i, mut j) = (0, 0);
    while i < left.order.len() && j < right.order.len() {
        let l = left.order[i];
        let r = right.order[j];
        if cmp(&span[r - base], &span[l - base]) == CmpOrdering::Less {
            out.push(r);
            j += 1;
        } else {
            out.push(l);
            i += 1;
        }
    }
    out.extend_from_slice(&left.order[i..]);
    out.extend_from_slice(&right.order[j..]);
    IndexRun { start: left.start, end: right.end, order: out }
}
