//! Quickstart: compress a graph, run an algorithm, measure the accuracy.
//!
//! This is the 60-second tour of the Slim Graph pipeline:
//!   1. build (or load) a graph,
//!   2. stage 1 — apply a compression kernel through the engine,
//!   3. stage 2 — run a graph algorithm on the compressed graph,
//!   4. analytics — quantify the information loss with a Slim Graph metric.
//!
//! Run: `cargo run --release -p slimgraph --example quickstart`

use sg_algos::pagerank::pagerank_default;
use sg_core::schemes::uniform_sample;
use sg_core::{SchemeParams, SchemeRegistry};
use sg_graph::generators;
use sg_metrics::kl_divergence;

fn main() {
    // 1. A seeded social-network-like workload (use sg_graph::io to load
    //    your own edge lists instead).
    let graph = generators::barabasi_albert(10_000, 5, 42);
    println!("input: n = {}, m = {}", graph.num_vertices(), graph.num_edges());

    // 2. Stage 1 — lossy compression. Here: remove 30% of edges uniformly.
    let compressed = uniform_sample(&graph, 0.3, 7);
    println!(
        "uniform p=0.3: kept {} edges ({:.1}% of original) in {:.1} ms",
        compressed.graph.num_edges(),
        compressed.compression_ratio() * 100.0,
        compressed.elapsed.as_secs_f64() * 1e3
    );

    // 3. Stage 2 — run PageRank on both graphs.
    let pr_original = pagerank_default(&graph);
    let pr_compressed = pagerank_default(&compressed.graph);

    // 4. Analytics — KL divergence between the two rank distributions.
    let kl = kl_divergence(&pr_original.scores, &pr_compressed.scores);
    println!("KL(original || compressed) = {kl:.4} bits");

    // The SchemeRegistry resolves schemes by name, so harness code sweeps
    // them generically — try EO Triangle Reduction, which preserves
    // connected components:
    let registry = SchemeRegistry::with_defaults();
    let tr = registry
        .create("tr-eo", &SchemeParams::from_pairs(&[("p", "0.8")]))
        .expect("tr-eo is registered")
        .apply(&graph, 7);
    let pr_tr = pagerank_default(&tr.graph);
    println!(
        "EO-0.8-1-TR: kept {:.1}% of edges, KL = {:.4} bits",
        tr.compression_ratio() * 100.0,
        kl_divergence(&pr_original.scores, &pr_tr.scores)
    );

    // Schemes chain into pipelines — the paper's kernel-combining model.
    // Strip long cycles with a spanner, drop the exposed leaves, then trim
    // uniformly; each stage reports its own statistics.
    let pipeline = registry
        .parse_pipeline("spanner:k=8,lowdeg,uniform:p=0.2", &SchemeParams::new())
        .expect("pipeline spec parses");
    let out = pipeline.apply(&graph, 7);
    println!("\npipeline: {}", pipeline.label());
    for (i, stage) in out.stages.iter().enumerate() {
        println!(
            "  stage {}: {} m {} -> {}",
            i + 1,
            stage.label,
            stage.input_edges,
            stage.output_edges
        );
    }
    println!(
        "  total: kept {:.1}% of edges in {:.1} ms",
        out.result.compression_ratio() * 100.0,
        out.result.elapsed.as_secs_f64() * 1e3
    );
}
