//! Distributed compression of a web-scale crawl (simulated).
//!
//! Mirrors the paper's §7.3 pipeline: a hyperlink-like graph is partitioned
//! across ranks, each rank executes the uniform-sampling edge kernel over
//! its shard, and the root gathers surviving edges plus per-rank degree
//! histograms. The binary also shows the storage effect by serializing
//! both graphs with sg-graph's binary format.
//!
//! Run: `cargo run --release -p slimgraph --example web_compression_pipeline`

use sg_dist::distributed_uniform_sample;
use sg_graph::properties::DegreeDistribution;
use sg_graph::{generators, io};

fn main() {
    // A skewed hyperlink-like crawl (scale down of h-wdc).
    let crawl = generators::rmat_graph500(15, 12, 77);
    println!("crawl: n = {}, m = {}", crawl.num_vertices(), crawl.num_edges());

    let ranks = 8;
    for p in [0.4, 0.7] {
        let dist = distributed_uniform_sample(&crawl, p, ranks, 5);
        println!("\n== distributed sampling p = {p} over {ranks} ranks ==");
        for r in &dist.ranks {
            println!(
                "  rank {:>2}: owned {:>7} edges, kept {:>7}",
                r.rank, r.owned_edges, r.kept_edges
            );
        }
        let orig_support = DegreeDistribution::of(&crawl).support_size();
        println!(
            "  degree-distribution support: {} -> {} distinct degrees (clutter removed)",
            orig_support,
            dist.degree_histogram.len()
        );
        let before = io::to_binary(&crawl).len();
        let after = io::to_binary(&dist.result.graph).len();
        println!(
            "  serialized size: {:.1} MiB -> {:.1} MiB ({:.0}% saved)",
            before as f64 / (1 << 20) as f64,
            after as f64 / (1 << 20) as f64,
            (1.0 - after as f64 / before as f64) * 100.0
        );
    }
    println!("\n(the paper's distributed runs reduced Web Data Commons 2012 by 30-70%)");
}
