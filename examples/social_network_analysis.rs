//! Social-network analytics on a compressed graph.
//!
//! The paper's motivating scenario: centrality and community-ish statistics
//! (betweenness, triangle counts) on a social graph that is too expensive
//! to process exactly. This example compresses a Pokec-like graph with
//! spectral sparsification and Triangle Reduction and reports how well each
//! preserves the analyst-facing outputs.
//!
//! Run: `cargo run --release -p slimgraph --example social_network_analysis`

use sg_algos::{bc, tc};
use sg_core::{SchemeParams, SchemeRegistry};
use sg_graph::generators::presets;
use sg_metrics::{relative_change, reordered_pair_fraction};

fn main() {
    let graph = presets::s_pok_like();
    println!(
        "social graph: n = {}, m = {}, T = {}",
        graph.num_vertices(),
        graph.num_edges(),
        tc::count_triangles(&graph)
    );

    let tc_base: Vec<f64> = tc::triangles_per_vertex(&graph).iter().map(|&x| x as f64).collect();
    let bc_base = bc::betweenness_sampled(&graph, 48, 1);

    let registry = SchemeRegistry::with_defaults();
    for (name, params) in [
        ("spectral", SchemeParams::from_pairs(&[("p", "0.4")])),
        ("tr-eo", SchemeParams::from_pairs(&[("p", "0.8")])),
        ("uniform", SchemeParams::from_pairs(&[("p", "0.4")])),
    ] {
        let scheme = registry.create(name, &params).expect("registered scheme");
        let r = scheme.apply(&graph, 99);
        let tc_now: Vec<f64> =
            tc::triangles_per_vertex(&r.graph).iter().map(|&x| x as f64).collect();
        let bc_now = bc::betweenness_sampled(&r.graph, 48, 1);

        let t_total_before: f64 = tc_base.iter().sum::<f64>() / 3.0;
        let t_total_after: f64 = tc_now.iter().sum::<f64>() / 3.0;
        println!("\n--- {} ---", scheme.label());
        println!("  edges kept:        {:.1}%", r.compression_ratio() * 100.0);
        println!(
            "  triangle total:    {:.0} -> {:.0} ({:+.1}%)",
            t_total_before,
            t_total_after,
            relative_change(t_total_before, t_total_after) * 100.0
        );
        println!(
            "  TC ordering flips: {:.5} of all vertex pairs",
            reordered_pair_fraction(&tc_base, &tc_now)
        );
        println!(
            "  BC ordering flips: {:.5} of all vertex pairs",
            reordered_pair_fraction(&bc_base, &bc_now)
        );
    }
    println!("\nReading: spectral keeps TC ordering best; EO-TR keeps the graph connected");
    println!("while still removing a triangle-sized chunk of edges (paper §7.2).");
}
