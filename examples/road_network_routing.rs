//! Route planning on a compressed road network.
//!
//! Spanners are the distance-preserving compression class: this example
//! derives O(k)-spanners of a weighted USA-road-like grid and measures how
//! much shortest-path distances stretch as k (and the storage saving)
//! grows. It also shows Triangle Reduction's behaviour on a near-planar
//! graph — almost no compression, exactly as the paper reports for v-usa.
//!
//! Run: `cargo run --release -p slimgraph --example road_network_routing`

use sg_algos::sssp;
use sg_core::schemes::{spanner, triangle_reduce, TrConfig};
use sg_graph::generators::presets;

fn main() {
    let road = presets::v_usa_like();
    println!("road network: n = {}, m = {} (weighted grid)", road.num_vertices(), road.num_edges());
    let source = 0u32;
    let base = sssp::dijkstra(&road, source);

    for k in [2.0, 8.0, 32.0] {
        let r = spanner(&road, k, 11);
        let after = sssp::dijkstra(&r.graph, source);
        // Average multiplicative stretch over reachable destinations.
        let mut stretch_sum = 0.0;
        let mut cnt = 0usize;
        let mut max_stretch: f64 = 1.0;
        for (b, a) in base.iter().zip(&after) {
            if b.is_finite() && *b > 0.0 && a.is_finite() {
                let s = a / b;
                stretch_sum += s;
                max_stretch = max_stretch.max(s);
                cnt += 1;
            }
        }
        println!(
            "spanner k={k:<3}: kept {:>5.1}% of edges | avg stretch {:.3} | max stretch {:.2}",
            r.compression_ratio() * 100.0,
            stretch_sum / cnt.max(1) as f64,
            max_stretch
        );
    }

    // TR on a (nearly triangle-free) road network: little to remove.
    let tr = triangle_reduce(&road, TrConfig::max_weight(0.9), 12);
    println!(
        "\nmaxw-0.9-1-TR on the road network: kept {:.2}% of edges — sparse graphs",
        tr.compression_ratio() * 100.0
    );
    println!("barely compress under TR (paper §7.1), use spanners for road networks.");
}
