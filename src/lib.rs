//! # slimgraph — umbrella crate for the Slim Graph workspace
//!
//! Re-exports every workspace crate under one roof so downstream users (and
//! the top-level integration tests and examples) can depend on a single
//! crate. The pieces:
//!
//! * [`graph`] — CSR graph, generators, I/O (`sg-graph`)
//! * [`algos`] — stage-2 graph algorithms (`sg-algos`)
//! * [`core`] — kernels, engine, schemes, registry, pipelines (`sg-core`)
//! * [`metrics`] — accuracy metrics and divergences (`sg-metrics`)
//! * [`tune`] — pipeline auto-tuning: search (chain, params) for the
//!   smallest graph meeting a quality target (`sg-tune`)
//! * [`lowrank`] — low-rank adjacency approximation (`sg-lowrank`)
//! * [`dist`] — simulated distributed compression (`sg-dist`)
//! * [`store`] — `.sgr` zero-copy CSR container + mmap loader (`sg-store`)
//! * [`serve`] — compression-as-a-service daemon + protocol client
//!   (`sg-serve`)
//! * [`obs`] — zero-dependency metrics registry + span tracing shared by
//!   every layer above (`sg-obs`, see docs/OBSERVABILITY.md)

/// The sg-obs tracking allocator wraps the system allocator for every
/// binary and test that links the umbrella crate. It is inert (one
/// relaxed load per call) until [`sg_obs::alloc::set_profiling`] turns
/// profiling on; results are bit-identical either way.
#[global_allocator]
static ALLOC: sg_obs::alloc::TrackingAlloc = sg_obs::alloc::TrackingAlloc;

pub use sg_algos as algos;
pub use sg_core as core;
pub use sg_dist as dist;
pub use sg_graph as graph;
pub use sg_lowrank as lowrank;
pub use sg_metrics as metrics;
pub use sg_obs as obs;
pub use sg_serve as serve;
pub use sg_store as store;
pub use sg_tune as tune;

pub use sg_core::{
    CompressionResult, CompressionScheme, GraphCatalog, GraphHandle, Pipeline, PipelineResult,
    PipelineSpec, SchemeParams, SchemeRegistry, SessionRun, SgSession, StageCache,
};
pub use sg_graph::CsrGraph;
