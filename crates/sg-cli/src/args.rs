//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;

/// Flags that take no value: present means `true`. Everything else is
/// `--flag value`.
const BOOLEAN_FLAGS: [&str; 6] =
    ["json", "no-verify", "cache", "quiet", "alloc-profile", "coordinator"];

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut it = argv.iter();
        let command = it.next().cloned().unwrap_or_else(|| "help".to_string());
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key =
                tok.strip_prefix("--").ok_or_else(|| format!("expected --flag, got '{tok}'"))?;
            if key.is_empty() {
                return Err("empty flag name".to_string());
            }
            let value = if BOOLEAN_FLAGS.contains(&key) {
                "true".to_string()
            } else {
                it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.clone()
            };
            if options.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Self { command, options })
    }

    /// Whether a boolean flag (e.g. `--json`) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("flag --{key}: cannot parse '{raw}'")),
        }
    }

    /// Required typed option.
    #[allow(dead_code)] // exercised by tests; kept for future subcommands
    pub fn require_as<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        let raw = self.require(key)?;
        raw.parse().map_err(|_| format!("flag --{key}: cannot parse '{raw}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&sv(&["compress", "--input", "g.txt", "--p", "0.3"])).expect("ok");
        assert_eq!(a.command, "compress");
        assert_eq!(a.require("input").expect("present"), "g.txt");
        assert_eq!(a.get_or::<f64>("p", 0.0).expect("typed"), 0.3);
        assert_eq!(a.get_or::<u64>("seed", 42).expect("default"), 42);
    }

    #[test]
    fn empty_argv_is_help() {
        let a = Args::parse(&[]).expect("ok");
        assert_eq!(a.command, "help");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&sv(&["x", "oops"])).is_err());
        assert!(Args::parse(&sv(&["x", "--flag"])).is_err());
        assert!(Args::parse(&sv(&["x", "--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse(&sv(&["tune", "--json", "--seed", "7", "--no-verify"])).expect("ok");
        assert!(a.flag("json"));
        assert!(a.flag("no-verify"));
        assert_eq!(a.get_or::<u64>("seed", 0).expect("typed"), 7);
        let b = Args::parse(&sv(&["tune", "--seed", "7"])).expect("ok");
        assert!(!b.flag("json"));
        // A boolean flag never consumes the next token.
        assert!(Args::parse(&sv(&["x", "--json", "true"])).is_err());
    }

    #[test]
    fn typed_parse_errors() {
        let a = Args::parse(&sv(&["x", "--p", "abc"])).expect("ok");
        assert!(a.get_or::<f64>("p", 0.0).is_err());
        assert!(a.require_as::<f64>("missing").is_err());
    }
}
