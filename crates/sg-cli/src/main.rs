//! `slimgraph` — command-line front end for the Slim Graph pipeline.
//!
//! ```text
//! slimgraph compress --input g.txt --scheme uniform --p 0.3 --output out.bin
//! slimgraph compress --input g.txt --scheme spanner,lowdeg,uniform --p 0.5 --output out.bin
//! slimgraph analyze  --input g.txt --scheme spanner --k 8
//! slimgraph stats    --input g.txt
//! slimgraph generate --kind rmat --scale 12 --output g.txt
//! slimgraph serve    --listen 127.0.0.1:7461
//! slimgraph client   --connect 127.0.0.1:7461 --op load --name g --path g.sgr
//! ```
//!
//! Arguments are parsed by hand (no CLI dependency); see `slimgraph help`.

mod args;
mod commands;

use std::process::ExitCode;

/// The sg-obs tracking allocator wraps the system allocator for the
/// whole binary. It is inert (one relaxed load per call) until
/// `--alloc-profile` turns profiling on; results are bit-identical
/// either way (see docs/OBSERVABILITY.md).
#[global_allocator]
static ALLOC: sg_obs::alloc::TrackingAlloc = sg_obs::alloc::TrackingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("slimgraph: error: {e}");
            eprintln!("run `slimgraph help` for usage");
            ExitCode::FAILURE
        }
    }
}
