//! Subcommand implementations.
//!
//! Compression commands run through the sg-core **session API**
//! ([`SgSession`] over a [`GraphCatalog`]): the CLI is the same execution
//! path as the `sg-serve` daemon, just with a process-lifetime session
//! instead of a long-running one.

use crate::args::Args;
use sg_algos::{cc, pagerank, tc};
use sg_core::{
    catalog, GraphCatalog, PipelineSpec, SchemeParams, SchemeRegistry, SessionRun, SgSession,
};
use sg_graph::{generators, CsrGraph, EncodedCsr, GraphView};
use sg_metrics::kl_divergence;
use sg_serve::Json;
use std::sync::Arc;

const HELP: &str = "\
slimgraph — practical lossy graph compression (Slim Graph, SC'19)

USAGE:
  slimgraph <command> [--flag value]...

GLOBAL FLAGS (any command):
  --trace-out FILE   record execution spans (sessions, stages, requests)
                     and write Chrome trace-event JSON on exit — open in
                     chrome://tracing or Perfetto. Observation-only:
                     results are bit-identical with tracing on or off.
  --metrics-out FILE write the process-final sg-obs metrics snapshot
                     (counters, gauges, latency histograms) as JSON on
                     exit — the same shape the daemon's `metrics` op
                     returns under \"metrics\".
  --alloc-profile    turn on the tracking allocator: alloc.* gauges in
                     metrics snapshots and per-stage alloc_bytes span
                     args. Observation-only; results are bit-identical.

COMMANDS:
  compress   Compress a graph and write the result
             --input FILE  --output FILE
             --scheme SPEC  [--p F] [--k F] [--epsilon F] [--seed N]
             [--format text|bin|sgr] [--output-format text|bin|sgr]
             [--encoding raw|delta|auto]
  analyze    Compress, then report accuracy metrics vs the original
             (same flags as compress, no --output needed);
             --encoding delta runs the input metrics over the encoded
             adjacency (bit-identical, decode-on-the-fly)
  tune       Search (scheme chain, parameters) for the smallest graph
             meeting a quality target
             --input FILE  --target METRIC<=BOUND  [--budget-edges N]
             [--depth N] [--rounds N] [--keep N] [--grid N] [--seed N]
             [--schemes a,b,c] [--output FILE] [--json]
             Metrics: pagerank-kl, reordered-tc, degree-l1,
             triangles-rel, components-rel.
             [--warm-start frontier.json] seeds round 0 from a previous
             run's --json output (its frontier + winner specs).
             Example: --target pagerank-kl<=0.05 --budget-edges 50000
  stats      Print structural statistics of a graph
             --input FILE  [--format text|bin|sgr]
             [--encoding raw|delta|auto] (delta/auto computes over the
             encoded adjacency and reports its byte footprint)
  convert    Convert a graph between storage formats
             --input FILE --output FILE
             [--format text|bin|sgr] [--output-format text|bin|sgr]
             [--encoding raw|delta|auto]
  generate   Produce a synthetic workload
             --kind rmat|er|ba|ws|grid  --output FILE
             [--scale N] [--n N] [--m N] [--k N] [--seed N]
  schemes    List every scheme registered in the compression registry
  serve      Run the compression-as-a-service daemon (see docs/PROTOCOL.md)
             --listen HOST:PORT | --listen unix:/path.sock
             [--cache-mb N] [--quiet]
             [--workers N] [--queue-depth N]        bounded worker pool
             [--read-timeout-ms N]                  per-frame deadline
             [--max-frame-kb N]                     request line size cap
             [--token SECRET]   required for non-loopback binds; clients
                                must send it in the request envelope
             [--catalog-quota-mb N] [--cache-quota-mb N]  per-peer byte
                                budgets (0 = unlimited)
             [--upload-grace-ms N]  how long a disconnected client's
                                partial upload survives for resumption
             [--slow-ms N]      slow-request threshold for the slowlog
                                ring (0 logs every request; default 500)
             [--slowlog-cap N]  slowlog ring bound (records kept)
             [--coordinator --worker-addr A[,B...]]  federate single-stage
                                compress/analyze across worker daemons
                                (stock daemons; see docs/FEDERATION.md)
             [--fed-retries N] [--fed-timeout-ms N] [--worker-token S]
  client     Send requests to a running daemon (blocking, line-JSON)
             --connect HOST:PORT|unix:/path.sock  [--token SECRET]
             one-shot: --op ping|load|upload|compress|analyze|stats|
                            metrics|slowlog|federation|evict|shutdown
               load:      --name NAME --path FILE [--format F] [--no-verify]
               upload:    --name NAME --path FILE [--format F]
                          [--chunk-kb N]  (chunked, digest-verified
                          client-side transfer; resumes after reconnect)
               compress:  --graph NAME --spec SPEC [--seed N]
                          [--output FILE] [--output-format F]
               analyze:   --graph NAME --spec SPEC [--seed N]
               stats:     [--graph NAME]
               metrics:   counters/gauges/latency histograms as a table
                          (--json for the raw response line; v2 op)
               slowlog:   the daemon's slow-request ring as a table —
                          seq, op, trace id, queue wait, service time,
                          stages (--json for the raw line; v2 op)
               federation: coordinator topology + worker reachability
                          (standalone daemons answer mode standalone)
               evict:     [--graph NAME] [--cache]
             scripted: --script FILE (one JSON request per line)
  help       Show this message

STORAGE FORMATS (inferred from the file extension, overridable with
--format for inputs and --output-format for outputs):
  text   whitespace edge list, `u v [w]` per line  (default)
  bin    compact binary edge list                  (*.bin)
  sgr    zero-copy binary CSR container; loaded through a read-only
         mmap with no rebuild and no copy          (*.sgr)
         --no-verify skips the checksum pass on trusted .sgr inputs
         (structural validation still runs)
         --encoding picks the adjacency sections written:
           raw    v1 container, raw CSR arrays (default)
           delta  v2 container, delta+varint rows and bitmap rows for
                  dense vertices (smaller on skewed graphs)
           auto   whichever of the two is smaller for this graph
         v2 files load transparently everywhere .sgr is accepted.

SCHEME SPEC:
  A comma-separated chain of registry names; stages run left to right over
  the previous stage's output (the paper's kernel-chaining model). Each
  stage may override parameters with :key=value suffixes.

    --scheme uniform --p 0.3
    --scheme spanner,lowdeg,uniform --p 0.5
    --scheme spanner:k=4,uniform:p=0.3

  Registered names: uniform, spectral, tr, tr-eo, tr-ct, tr-mw, collapse,
  lowdeg, spanner, summary, cut (see `slimgraph schemes`).
";

/// Entry point shared with tests.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    // --trace-out FILE: record sg-obs spans for the whole command and
    // write a Chrome trace-event JSON (chrome://tracing / Perfetto) on
    // the way out — even when the command itself fails, so aborted runs
    // are debuggable too. Tracing is observation-only: results are
    // bit-identical with or without it.
    let trace_out = args.get("trace-out").map(str::to_string);
    if trace_out.is_some() {
        sg_obs::trace::set_trace_enabled(true);
    }
    // --metrics-out FILE: dump the process-final metrics snapshot as JSON
    // on the way out (same write-even-on-failure contract as the trace).
    // --alloc-profile arms the tracking allocator first so the snapshot
    // carries alloc.* gauges and stage spans carry alloc_bytes deltas.
    let metrics_out = args.get("metrics-out").map(str::to_string);
    if args.flag("alloc-profile") {
        sg_obs::alloc::set_profiling(true);
    }
    let result = dispatch_command(&args);
    if let Some(path) = trace_out {
        sg_obs::trace::write_chrome_trace(std::path::Path::new(&path))
            .map_err(|e| format!("writing trace to {path}: {e}"))?;
        eprintln!("slimgraph: trace written to {path}");
    }
    if let Some(path) = metrics_out {
        let snapshot = sg_serve::snapshot_json(&sg_obs::global_snapshot()).render();
        std::fs::write(&path, snapshot + "\n")
            .map_err(|e| format!("writing metrics to {path}: {e}"))?;
        eprintln!("slimgraph: metrics written to {path}");
    }
    result
}

fn dispatch_command(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "compress" => compress(args),
        "analyze" => analyze(args),
        "tune" => tune(args),
        "stats" => stats(args),
        "convert" => convert(args),
        "generate" => generate(args),
        "schemes" => schemes(),
        "serve" => serve(args),
        "client" => client(args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Loads a graph honoring `--format` (shared with the catalog/daemon:
/// `.sgr` inputs go through the zero-copy mmap loader; `trusted` =
/// `--no-verify` skips the `.sgr` checksum pass, structural validation
/// still rejects corrupt files).
fn load_as(path: &str, explicit: Option<&str>, trusted: bool) -> Result<CsrGraph, String> {
    catalog::load_graph(path, explicit, trusted)
}

/// [`load_as`] wired to a command's `--input`/`--format`/`--no-verify`.
fn load_input(args: &Args) -> Result<CsrGraph, String> {
    load_as(args.require("input")?, args.get("format"), args.flag("no-verify"))
}

/// Parses `--encoding raw|delta|auto` (default raw). The encoding picks
/// the `.sgr` container version on outputs and, for `stats`/`analyze`,
/// whether metrics run over the decode-on-the-fly encoded adjacency.
fn encoding_from(args: &Args) -> Result<sg_store::Encoding, String> {
    match args.get("encoding") {
        None => Ok(sg_store::Encoding::Raw),
        Some(raw) => sg_store::Encoding::parse(raw)
            .ok_or_else(|| format!("flag --encoding: '{raw}' is not raw|delta|auto")),
    }
}

fn save_as(
    g: &CsrGraph,
    path: &str,
    explicit: Option<&str>,
    encoding: sg_store::Encoding,
) -> Result<(), String> {
    catalog::save_graph_with(g, path, explicit, encoding)
}

/// Parses `--scheme` into a [`PipelineSpec`] plus the shared base
/// parameter bag (`--p`, `--k`, `--epsilon`, `--variant`, `--reweight`,
/// `--x`).
fn spec_from(args: &Args) -> Result<(PipelineSpec, SchemeParams), String> {
    let mut base = SchemeParams::new();
    for key in ["p", "k", "epsilon", "variant", "reweight", "x"] {
        if let Some(value) = args.get(key) {
            base.set(key, value);
        }
    }
    Ok((PipelineSpec::parse(args.require("scheme")?)?, base))
}

/// Loads `--input` into a one-shot session and runs `--scheme` over it —
/// the CLI's execution path *is* the serving path. The graph moves into a
/// shared `Arc` (no copy), and the stage cache is disabled: a one-shot
/// process never re-reads it, so there is no reason to pin intermediate
/// graphs until exit.
fn run_session(args: &Args) -> Result<(Arc<CsrGraph>, SessionRun, String), String> {
    let g = Arc::new(load_input(args)?);
    let (spec, base) = spec_from(args)?;
    let registry = Arc::new(SchemeRegistry::with_defaults());
    let catalog = Arc::new(GraphCatalog::new());
    let handle = catalog
        .insert_arc("input", Arc::clone(&g), args.require("input")?)
        .expect("fresh catalog has no names");
    let session = SgSession::with_cache(
        catalog,
        Arc::clone(&registry),
        Arc::new(sg_core::StageCache::with_capacity(0)),
    );
    let run = session.run_with_base(&handle, &spec, &base, args.get_or("seed", 42)?)?;
    // The stage reports carry the constructed schemes' labels, so the
    // pipeline label needs no second build.
    let label = run.stages.iter().map(|s| s.report.label.clone()).collect::<Vec<_>>().join(" -> ");
    Ok((g, run, label))
}

fn compress(args: &Args) -> Result<(), String> {
    let (_, run, label) = run_session(args)?;
    for (i, stage) in run.stages.iter().enumerate() {
        println!(
            "stage {}: {}: m {} -> {} ({:.1}% kept) in {:.1} ms{}",
            i + 1,
            stage.report.label,
            stage.report.input_edges,
            stage.report.output_edges,
            stage.report.compression_ratio() * 100.0,
            stage.report.elapsed.as_secs_f64() * 1e3,
            if stage.cached { " (cached)" } else { "" }
        );
    }
    println!(
        "total: {}: m {} -> {} ({:.1}% kept) in {:.1} ms",
        label,
        run.original_edges,
        run.graph.num_edges(),
        run.compression_ratio() * 100.0,
        run.elapsed().as_secs_f64() * 1e3
    );
    save_as(&run.graph, args.require("output")?, args.get("output-format"), encoding_from(args)?)
}

fn analyze(args: &Args) -> Result<(), String> {
    let encoding = encoding_from(args)?;
    let (g, run, label) = run_session(args)?;
    println!("pipeline:          {label}");
    println!("edges kept:        {:.1}%", run.compression_ratio() * 100.0);
    // With --encoding delta|auto the "before" metrics run over the encoded
    // adjacency (decode-on-the-fly kernels); results are bit-identical to
    // the raw run, the path is just exercised end to end.
    let enc = (encoding != sg_store::Encoding::Raw).then(|| EncodedCsr::from_graph(&g));
    let (cc0, t0) = match &enc {
        Some(e) => (cc::connected_components(e).num_components, tc::count_triangles(e)),
        None => (cc::connected_components(&g).num_components, tc::count_triangles(&g)),
    };
    let cc1 = cc::connected_components(&run.graph).num_components;
    println!("components:        {cc0} -> {cc1}");
    let t1 = tc::count_triangles(&run.graph);
    println!("triangles:         {t0} -> {t1}");
    if run.graph.num_vertices() == g.num_vertices() {
        let pr0 = match &enc {
            Some(e) => pagerank::pagerank_default(e).scores,
            None => pagerank::pagerank_default(&g).scores,
        };
        let pr1 = pagerank::pagerank_default(&run.graph).scores;
        println!("PageRank KL:       {:.5} bits", kl_divergence(&pr0, &pr1));
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap_or(0);
        println!(
            "BFS critical kept: {:.1}%",
            sg_metrics::critical_edge_preservation(&g, &run.graph, root) * 100.0
        );
    } else {
        println!("(vertex set changed; distribution metrics skipped)");
    }
    Ok(())
}

/// `tune`: search the (chain, parameters) space for the smallest graph
/// meeting `--target`, report the Pareto frontier and the re-validated
/// winner (or honest infeasibility), and optionally write the winner's
/// compressed graph to `--output`.
fn tune(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    let target = sg_tune::Target::parse(args.require("target")?)?;
    let budget: usize = args.get_or("budget-edges", g.num_edges())?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = sg_tune::TuneConfig::new(budget, target, seed);
    cfg.max_depth = args.get_or("depth", cfg.max_depth)?;
    cfg.rounds = args.get_or("rounds", cfg.rounds)?;
    cfg.keep = args.get_or("keep", cfg.keep)?;
    cfg.grid = args.get_or("grid", cfg.grid)?;
    cfg.max_candidates = args.get_or("max-candidates", cfg.max_candidates)?;
    if let Some(list) = args.get("schemes") {
        let names: Vec<String> =
            list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        cfg.schemes = Some(names);
    }
    if let Some(path) = args.get("warm-start") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        cfg.warm_start = parse_warm_start(&text)?;
        if cfg.warm_start.is_empty() {
            return Err(format!("warm-start file {path} contains no specs"));
        }
    }
    let registry = Arc::new(SchemeRegistry::with_defaults());
    let outcome = sg_tune::tune(&g, &registry, &cfg)?;

    if args.flag("json") {
        // The diagnostics block is non-contractual (see OBSERVABILITY.md);
        // warm-start consumers only read frontier/winner and are unaffected.
        println!("{}", outcome.to_json_with_diagnostics());
    } else {
        println!("target:      {}", target.render());
        println!("budget:      {budget} edges (input m = {})", g.num_edges());
        println!("evaluated:   {} candidates", outcome.evaluated);
        println!(
            "stages:      {} executed of {} (prefix cache reused {})",
            outcome.stages_executed,
            outcome.stages_total,
            outcome.stages_total - outcome.stages_executed
        );
        println!("frontier ({} non-dominated points, * = feasible):", outcome.frontier.len());
        for p in outcome.frontier.points() {
            let feasible = p.edges <= budget && p.metric <= target.max;
            println!(
                "  {} {:>9} edges  ratio {:.3}  {} {:.5}  {}",
                if feasible { "*" } else { " " },
                p.edges,
                p.ratio,
                target.metric,
                p.metric,
                p.rendered
            );
        }
        match &outcome.winner {
            Some(w) => {
                println!("winner:      {}", w.rendered);
                println!(
                    "  m {} -> {} ({:.1}% kept), {} = {:.5} <= {}, pipeline seed {}",
                    g.num_edges(),
                    w.edges,
                    w.ratio * 100.0,
                    target.metric,
                    w.metric,
                    target.max,
                    w.seed
                );
                println!(
                    "  re-run:    slimgraph compress --input <in> --scheme '{}' --seed {}",
                    w.rendered, w.seed
                );
            }
            None => println!(
                "winner:      none — no candidate met {} within {budget} edges \
                 (closest trade-offs listed above)",
                target.render()
            ),
        }
    }

    if let Some(output) = args.get("output") {
        match &outcome.winner {
            Some(w) => {
                let out = w.spec.build(&registry)?.apply(&g, w.seed);
                save_as(
                    &out.result.graph,
                    output,
                    args.get("output-format"),
                    encoding_from(args)?,
                )?;
            }
            None => return Err("no feasible winner to write to --output".to_string()),
        }
    }
    Ok(())
}

/// Extracts warm-start specs from a previous `tune --json` outcome (its
/// frontier + winner) or from a plain JSON array of spec strings.
fn parse_warm_start(text: &str) -> Result<Vec<PipelineSpec>, String> {
    let value = Json::parse(text).map_err(|e| format!("warm-start file: {e}"))?;
    let mut rendered: Vec<String> = Vec::new();
    let mut push = |v: &Json| {
        if let Some(s) = v.get("spec").and_then(Json::as_str).or_else(|| v.as_str()) {
            rendered.push(s.to_string());
        }
    };
    match &value {
        Json::Arr(items) => items.iter().for_each(&mut push),
        Json::Obj(_) => {
            if let Some(frontier) = value.get("frontier").and_then(Json::as_arr) {
                frontier.iter().for_each(&mut push);
            }
            if let Some(winner) = value.get("winner") {
                push(winner);
            }
        }
        _ => return Err("warm-start file must be a tune outcome or an array".to_string()),
    }
    rendered.sort();
    rendered.dedup();
    rendered
        .iter()
        .map(|s| PipelineSpec::parse(s).map_err(|e| format!("warm-start spec '{s}': {e}")))
        .collect()
}

/// `serve`: run the compression-as-a-service daemon until a client sends
/// `shutdown`. The resolved listen address goes to stderr (stdout carries
/// the per-request transcript, one JSON event per line).
fn serve(args: &Args) -> Result<(), String> {
    let defaults = sg_serve::ServeConfig::default();
    let cfg = sg_serve::ServeConfig {
        listen: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        cache_bytes: args.get_or("cache-mb", 256usize)? << 20,
        transcript: !args.flag("quiet"),
        workers: args.get_or("workers", defaults.workers)?,
        queue_depth: args.get_or("queue-depth", defaults.queue_depth)?,
        read_timeout_ms: args.get_or("read-timeout-ms", defaults.read_timeout_ms)?,
        max_frame_bytes: args.get_or("max-frame-kb", defaults.max_frame_bytes >> 10)? << 10,
        token: args.get("token").map(str::to_string),
        catalog_quota_bytes: args.get_or("catalog-quota-mb", 0u64)? << 20,
        cache_quota_bytes: args.get_or("cache-quota-mb", 0u64)? << 20,
        upload_grace_ms: args.get_or("upload-grace-ms", defaults.upload_grace_ms)?,
        retry_after_ms: defaults.retry_after_ms,
        slow_ms: args.get_or("slow-ms", defaults.slow_ms)?,
        slowlog_capacity: args.get_or("slowlog-cap", defaults.slowlog_capacity)?,
        federation: federation_config(args)?,
    };
    let server =
        sg_serve::Server::bind(&cfg).map_err(|e| format!("binding {}: {e}", cfg.listen))?;
    eprintln!("slimgraph serve: listening on {}", server.local_addr());
    if let Some(fed) = &cfg.federation {
        eprintln!(
            "slimgraph serve: coordinating {} worker(s): {}",
            fed.workers.len(),
            fed.workers.join(", ")
        );
    }
    server.run().map_err(|e| format!("serve loop: {e}"))
}

/// Builds the coordinator config from `--coordinator`/`--worker-addr`/
/// `--fed-retries`/`--fed-timeout-ms`/`--worker-token`; `None` without
/// `--coordinator`.
fn federation_config(args: &Args) -> Result<Option<sg_serve::FedConfig>, String> {
    if !args.flag("coordinator") {
        return Ok(None);
    }
    let workers: Vec<String> = args
        .get("worker-addr")
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if workers.is_empty() {
        return Err("--coordinator needs --worker-addr ADDR[,ADDR...]".to_string());
    }
    let defaults = sg_serve::FedConfig::default();
    Ok(Some(sg_serve::FedConfig {
        workers,
        retries: args.get_or("fed-retries", defaults.retries)?,
        timeout_ms: args.get_or("fed-timeout-ms", defaults.timeout_ms)?,
        token: args.get("worker-token").map(str::to_string),
    }))
}

/// `client`: one-shot protocol requests (`--op …`) or a scripted session
/// (`--script FILE`, one JSON request per line). Raw response lines go to
/// stdout.
fn client(args: &Args) -> Result<(), String> {
    let addr = args.require("connect")?;
    let mut client =
        sg_serve::Client::connect_with_patience(addr, std::time::Duration::from_secs(5))
            .map_err(|e| format!("connecting to {addr}: {e}"))?;
    client.set_token(args.get("token").map(str::to_string));
    if let Some(script) = args.get("script") {
        let text = std::fs::read_to_string(script).map_err(|e| format!("reading {script}: {e}"))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            println!("{}", client.request_line(line)?);
        }
        return Ok(());
    }
    let op = args.require("op")?;
    if op == "upload" {
        // Driven client-side: begin/chunk/commit frames with digest
        // verification (and resume) handled by `Client::upload`.
        let name = args.require("name")?;
        let path = args.require("path")?;
        let chunk = args.get_or("chunk-kb", sg_serve::client::DEFAULT_UPLOAD_CHUNK >> 10)? << 10;
        let response = client.upload(name, path, args.get("format"), chunk)?;
        println!("{}", response.render());
        return if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(response
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("upload failed")
                .to_string())
        };
    }
    let mut request = sg_serve::Client::request_for(op);
    for (flag, field) in [
        ("name", "name"),
        ("path", "path"),
        ("graph", "graph"),
        ("spec", "spec"),
        ("output", "output"),
        ("format", "format"),
        ("output-format", "output_format"),
    ] {
        if let Some(value) = args.get(flag) {
            request = request.with(field, Json::str(value));
        }
    }
    if let Some(seed) = args.get("seed") {
        let seed: u64 = seed.parse().map_err(|_| format!("--seed: cannot parse '{seed}'"))?;
        request = request.with("seed", Json::u64(seed));
    }
    if args.flag("no-verify") {
        request = request.with("no_verify", Json::Bool(true));
    }
    if args.flag("cache") {
        request = request.with("cache", Json::Bool(true));
    }
    let response = client.request(&request)?;
    // `metrics` answers are deep JSON; render a human table unless the
    // caller asked for the raw line with --json (scripts/CI scrape that).
    if op == "metrics" && !args.flag("json") {
        print!("{}", metrics_table(&response));
    } else if op == "slowlog" && !args.flag("json") {
        print!("{}", slowlog_table(&response));
    } else {
        println!("{}", response.render());
    }
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string())
    }
}

/// Renders a `metrics` response as an aligned human table: counters and
/// gauges by name, histograms with count / total time / estimated p50
/// and p99 (bucket upper bounds — the resolution the fixed grid affords).
fn metrics_table(response: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let server = response.get("server");
    let build = server.and_then(|s| s.get("build")).and_then(Json::as_str).unwrap_or("?");
    let proto = server.and_then(|s| s.get("protocol_version")).and_then(Json::as_u64).unwrap_or(0);
    let workers = server.and_then(|s| s.get("workers")).and_then(Json::as_u64).unwrap_or(0);
    let uptime = response.get("uptime_ms").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "server   build {build}, protocol v{proto}, {workers} workers, up {uptime} ms"
    );
    if let Some(cache) = response.get("cache") {
        let g = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "cache    {} entries, {} bytes, {} hits / {} misses, {} evictions",
            g("entries"),
            g("bytes"),
            g("hits"),
            g("misses"),
            g("evictions")
        );
    }
    let metrics = response.get("metrics");
    let section = |name: &str| metrics.and_then(|m| m.get(name));
    if let Some(Json::Obj(counters)) = section("counters") {
        let _ = writeln!(out, "\ncounters");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<42} {:>12}", value.render());
        }
    }
    if let Some(Json::Obj(gauges)) = section("gauges") {
        let _ = writeln!(out, "\ngauges");
        for (name, value) in gauges {
            let _ = writeln!(out, "  {name:<42} {:>12}", value.render());
        }
    }
    if let Some(Json::Obj(histograms)) = section("histograms") {
        let _ = writeln!(
            out,
            "\nhistograms{:>34} {:>12} {:>9} {:>9}",
            "count", "sum_ms", "p50_ms", "p99_ms"
        );
        for (name, hist) in histograms {
            let count = hist.get("count").and_then(Json::as_u64).unwrap_or(0);
            let sum = hist.get("sum_ms").and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {name:<42} {count:>12} {sum:>12.3} {:>9} {:>9}",
                bucket_quantile(hist, 0.50),
                bucket_quantile(hist, 0.99),
            );
        }
    }
    out
}

/// Renders a `slowlog` response as an aligned human table: one row per
/// retained record (oldest first), newest-relative ordering preserved by
/// the monotone `seq` column. Stage counts render `-` for ops that have
/// none (ping, metrics, …).
fn slowlog_table(response: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let g = |k: &str| response.get(k).and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "slowlog  threshold {} ms, capacity {}, {} recorded, {} returned",
        g("slow_ms"),
        g("capacity"),
        g("recorded"),
        g("returned")
    );
    let Some(records) = response.get("slowlog").and_then(Json::as_arr) else {
        return out;
    };
    if records.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "\n{:>6} {:<10} {:<18} {:>6} {:>12} {:>11} {:>7} {:>7}  peer",
        "seq", "op", "trace", "ok", "queue_ms", "service_ms", "exec", "cached"
    );
    for record in records {
        let s = |k: &str| record.get(k).and_then(Json::as_str).unwrap_or("-").to_string();
        let f = |k: &str| record.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let stage = |k: &str| match record.get(k).and_then(Json::as_u64) {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        };
        let ok = match record.get("ok").and_then(Json::as_bool) {
            Some(true) => "ok",
            Some(false) => "err",
            None => "-",
        };
        let _ = writeln!(
            out,
            "{:>6} {:<10} {:<18} {:>6} {:>12.3} {:>11.3} {:>7} {:>7}  {}",
            record.get("seq").and_then(Json::as_u64).unwrap_or(0),
            s("op"),
            s("trace"),
            ok,
            f("queue_wait_ms"),
            f("service_ms"),
            stage("stages_executed"),
            stage("stages_cached"),
            s("peer"),
        );
    }
    out
}

/// Upper-bound quantile estimate from cumulative buckets: the `le` of the
/// first bucket covering `q` of the population (`+Inf` past the last
/// finite bound).
fn bucket_quantile(hist: &Json, q: f64) -> String {
    let total = hist.get("count").and_then(Json::as_u64).unwrap_or(0);
    let Some(buckets) = hist.get("buckets").and_then(Json::as_arr) else {
        return "-".to_string();
    };
    if total == 0 {
        return "-".to_string();
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    for bucket in buckets {
        if bucket.get("count").and_then(Json::as_u64).unwrap_or(0) >= rank {
            return match bucket.get("le") {
                Some(Json::Str(s)) => s.clone(),
                Some(le) => le.render(),
                None => "-".to_string(),
            };
        }
    }
    "+Inf".to_string()
}

fn convert(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let from = catalog::GraphFormat::resolve(input, args.get("format"))?;
    let to = catalog::GraphFormat::resolve(output, args.get("output-format"))?;
    let g = load_as(input, args.get("format"), args.flag("no-verify"))?;
    save_as(&g, output, args.get("output-format"), encoding_from(args)?)?;
    let bytes = std::fs::metadata(output).map_err(|e| format!("stat {output}: {e}"))?.len();
    println!(
        "converted {input} ({from:?}) -> {output} ({to:?}): n = {}, m = {}, {bytes} bytes",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    println!("vertices:     {}", g.num_vertices());
    println!("edges:        {}", g.num_edges());
    println!("weighted:     {}", g.is_weighted());
    // --encoding delta|auto: compute everything below over the encoded
    // adjacency instead of raw CSR (same numbers, decode-on-the-fly path).
    match encoding_from(args)? {
        sg_store::Encoding::Raw => stats_over(&g),
        _ => {
            let enc = EncodedCsr::from_graph(&g);
            let raw_adj = g.csr_offsets().len() * 8
                + g.csr_targets().len() * 4
                + g.csr_slot_edges().len() * 4;
            println!("adjacency:    {} bytes encoded ({raw_adj} raw)", enc.adjacency_bytes());
            stats_over(&enc);
        }
    }
    Ok(())
}

/// The structural statistics shared by the raw and encoded `stats` paths.
fn stats_over<G: GraphView>(g: &G) {
    let s = sg_graph::properties::degree_stats(g);
    println!("degrees:      min {} / mean {:.2} / max {}", s.min, s.mean, s.max);
    println!("isolated:     {}", s.isolated);
    println!("leaves:       {}", s.leaves);
    println!("components:   {}", cc::connected_components(g).num_components);
    println!("triangles:    {}", tc::count_triangles(g));
    if let Some(fit) = sg_graph::properties::DegreeDistribution::of(g).power_law_fit() {
        println!("power law:    exponent {:.2}, R2 {:.3}", fit.exponent, fit.r2);
    }
}

fn schemes() -> Result<(), String> {
    let registry = SchemeRegistry::with_defaults();
    println!("registered compression schemes (chain with commas):");
    for name in registry.names() {
        let scheme = registry.create(name, &SchemeParams::new())?;
        println!("  {name:<10} defaults: {}", scheme.label());
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get_or("seed", 42)?;
    let g = match args.require("kind")? {
        "rmat" => {
            let scale: u32 = args.get_or("scale", 12)?;
            let ef: usize = args.get_or("m", 8)?;
            generators::rmat_graph500(scale, ef, seed)
        }
        "er" => {
            let n: usize = args.get_or("n", 10_000)?;
            let m: usize = args.get_or("m", 50_000)?;
            generators::erdos_renyi(n, m, seed)
        }
        "ba" => {
            let n: usize = args.get_or("n", 10_000)?;
            let k: usize = args.get_or("k", 4)?;
            generators::barabasi_albert(n, k, seed)
        }
        "ws" => {
            let n: usize = args.get_or("n", 10_000)?;
            let k: usize = args.get_or("k", 4)?;
            generators::watts_strogatz(n, k, 0.1, seed)
        }
        "grid" => {
            let n: usize = args.get_or("n", 100)?;
            generators::grid(n, n)
        }
        other => return Err(format!("unknown generator '{other}'")),
    };
    println!("generated n = {}, m = {}", g.num_vertices(), g.num_edges());
    save_as(&g, args.require("output")?, args.get("output-format"), encoding_from(args)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("slimgraph-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Extension-driven load, as the subcommands themselves do it.
    fn load(path: &str) -> Result<CsrGraph, String> {
        load_as(path, None, false)
    }

    #[test]
    fn generate_stats_compress_analyze_roundtrip() {
        let gpath = tmp("g.txt");
        run(&sv(&["generate", "--kind", "ba", "--n", "500", "--k", "3", "--output", &gpath]))
            .expect("generate");
        run(&sv(&["stats", "--input", &gpath])).expect("stats");
        let out = tmp("g-compressed.bin");
        run(&sv(&[
            "compress", "--input", &gpath, "--scheme", "uniform", "--p", "0.4", "--output", &out,
        ]))
        .expect("compress");
        let g = load(&gpath).expect("load original");
        let h = load(&out).expect("load compressed");
        assert!(h.num_edges() < g.num_edges());
        run(&sv(&["analyze", "--input", &gpath, "--scheme", "tr-eo", "--p", "0.8"]))
            .expect("analyze");
    }

    #[test]
    fn binary_and_text_io_paths_roundtrip() {
        // generate → compress → stats across both serialization formats:
        // .bin in / .txt out, then .txt in / .bin out.
        let gbin = tmp("io.bin");
        run(&sv(&["generate", "--kind", "er", "--n", "300", "--m", "900", "--output", &gbin]))
            .expect("generate binary");
        let gtxt = tmp("io-compressed.txt");
        run(&sv(&[
            "compress", "--input", &gbin, "--scheme", "uniform", "--p", "0.2", "--output", &gtxt,
        ]))
        .expect("compress bin->txt");
        run(&sv(&["stats", "--input", &gtxt])).expect("stats on txt");
        let back = tmp("io-back.bin");
        run(&sv(&["compress", "--input", &gtxt, "--scheme", "lowdeg", "--output", &back]))
            .expect("compress txt->bin");
        run(&sv(&["stats", "--input", &back])).expect("stats on bin");
        assert!(load(&back).expect("load").num_edges() <= load(&gtxt).expect("load").num_edges());
    }

    #[test]
    fn convert_round_trips_all_formats() {
        // text -> bin -> sgr -> text: every pairwise hop, ending with a
        // byte-identical text file (conversion preserves canonical order).
        let gtxt = tmp("conv.txt");
        run(&sv(&["generate", "--kind", "er", "--n", "400", "--m", "1200", "--output", &gtxt]))
            .expect("generate");
        let gbin = tmp("conv.bin");
        let gsgr = tmp("conv.sgr");
        let back = tmp("conv-back.txt");
        run(&sv(&["convert", "--input", &gtxt, "--output", &gbin])).expect("text->bin");
        run(&sv(&["convert", "--input", &gbin, "--output", &gsgr])).expect("bin->sgr");
        run(&sv(&["convert", "--input", &gsgr, "--output", &back])).expect("sgr->text");
        assert_eq!(
            std::fs::read(&gtxt).expect("orig"),
            std::fs::read(&back).expect("back"),
            "text -> bin -> sgr -> text must be byte-identical"
        );
        // And the reverse direction: sgr -> bin and bin -> text.
        let gbin2 = tmp("conv2.bin");
        let gtxt2 = tmp("conv2.txt");
        run(&sv(&["convert", "--input", &gsgr, "--output", &gbin2])).expect("sgr->bin");
        run(&sv(&["convert", "--input", &gbin2, "--output", &gtxt2])).expect("bin->text");
        assert_eq!(std::fs::read(&gtxt).expect("orig"), std::fs::read(&gtxt2).expect("back2"));
    }

    #[test]
    fn convert_encoding_delta_round_trips_byte_identical() {
        // text -> sgr v2 (delta) -> text must reproduce the original file,
        // and a skewed graph's v2 container must be smaller than v1.
        let gtxt = tmp("enc.txt");
        run(&sv(&["generate", "--kind", "ba", "--n", "3000", "--k", "6", "--output", &gtxt]))
            .expect("generate");
        let raw = tmp("enc-raw.sgr");
        let delta = tmp("enc-delta.sgr");
        let auto = tmp("enc-auto.sgr");
        run(&sv(&["convert", "--input", &gtxt, "--output", &raw, "--encoding", "raw"]))
            .expect("raw convert");
        run(&sv(&["convert", "--input", &gtxt, "--output", &delta, "--encoding", "delta"]))
            .expect("delta convert");
        run(&sv(&["convert", "--input", &gtxt, "--output", &auto, "--encoding", "auto"]))
            .expect("auto convert");
        let (rb, db, ab) = (
            std::fs::metadata(&raw).expect("raw").len(),
            std::fs::metadata(&delta).expect("delta").len(),
            std::fs::metadata(&auto).expect("auto").len(),
        );
        assert!(db < rb, "delta container {db} must beat raw {rb} on a BA graph");
        assert_eq!(ab, db.min(rb), "auto writes the smaller container");
        let back = tmp("enc-back.txt");
        run(&sv(&["convert", "--input", &delta, "--output", &back])).expect("sgr v2 -> text");
        assert_eq!(std::fs::read(&gtxt).expect("orig"), std::fs::read(&back).expect("back"));
        // stats + analyze accept the flag and run over encoded adjacency;
        // compress reads a v2 input and writes a v2 output.
        run(&sv(&["stats", "--input", &delta, "--encoding", "delta"])).expect("encoded stats");
        run(&sv(&["analyze", "--input", &delta, "--scheme", "lowdeg", "--encoding", "delta"]))
            .expect("encoded analyze");
        let out = tmp("enc-out.sgr");
        run(&sv(&[
            "compress",
            "--input",
            &delta,
            "--scheme",
            "uniform",
            "--p",
            "0.5",
            "--output",
            &out,
            "--encoding",
            "delta",
        ]))
        .expect("compress v2 -> v2");
        assert!(load(&out).expect("v2 output loads").num_edges() > 0);
        assert!(
            run(&sv(&["stats", "--input", &gtxt, "--encoding", "nope"])).is_err(),
            "bad encoding name is rejected"
        );
    }

    #[test]
    fn explicit_format_overrides_extension() {
        // Write an .sgr image into a file with a misleading extension and
        // load it back with --format sgr.
        let gtxt = tmp("fmt.txt");
        run(&sv(&["generate", "--kind", "grid", "--n", "12", "--output", &gtxt]))
            .expect("generate");
        let odd = tmp("fmt.graph");
        run(&sv(&["convert", "--input", &gtxt, "--output", &odd, "--output-format", "sgr"]))
            .expect("convert to sgr with odd extension");
        run(&sv(&["stats", "--input", &odd, "--format", "sgr"])).expect("stats via --format");
        assert!(run(&sv(&["stats", "--input", &odd])).is_err(), "text parse of sgr must fail");
        assert!(
            run(&sv(&["stats", "--input", &odd, "--format", "nope"])).is_err(),
            "unknown format name"
        );
    }

    #[test]
    fn compress_reads_and_writes_sgr() {
        let gsgr = tmp("pipeline.sgr");
        run(&sv(&["generate", "--kind", "ba", "--n", "600", "--k", "4", "--output", &gsgr]))
            .expect("generate straight to .sgr");
        let out = tmp("pipeline-out.sgr");
        run(&sv(&[
            "compress", "--input", &gsgr, "--scheme", "uniform", "--p", "0.5", "--seed", "3",
            "--output", &out,
        ]))
        .expect("compress sgr -> sgr");
        let g = load(&gsgr).expect("load original");
        let h = load(&out).expect("load compressed");
        assert!(h.num_edges() < g.num_edges());
        run(&sv(&["analyze", "--input", &gsgr, "--scheme", "lowdeg"])).expect("analyze from sgr");
    }

    #[test]
    fn chained_scheme_compresses_and_is_deterministic() {
        let gpath = tmp("chain.txt");
        run(&sv(&["generate", "--kind", "ws", "--n", "400", "--k", "4", "--output", &gpath]))
            .expect("generate");
        let out_a = tmp("chain-a.bin");
        let out_b = tmp("chain-b.bin");
        for out in [&out_a, &out_b] {
            run(&sv(&[
                "compress",
                "--input",
                &gpath,
                "--scheme",
                "spanner,lowdeg,uniform",
                "--p",
                "0.5",
                "--seed",
                "7",
                "--output",
                out,
            ]))
            .expect("chained compress");
        }
        let a = load(&out_a).expect("load a");
        let b = load(&out_b).expect("load b");
        assert_eq!(a.edge_slice(), b.edge_slice(), "same seed must be bit-identical");
        assert!(a.num_edges() < load(&gpath).expect("orig").num_edges());
        // Per-stage parameter overrides parse too.
        run(&sv(&["analyze", "--input", &gpath, "--scheme", "spanner:k=4,uniform:p=0.2"]))
            .expect("per-stage overrides");
    }

    /// Mirrors what `run_session` does with `--scheme` flags: parse,
    /// resolve against the registry, build.
    fn pipeline_from(args: &Args) -> Result<sg_core::Pipeline, String> {
        let (spec, base) = spec_from(args)?;
        let registry = SchemeRegistry::with_defaults();
        spec.resolve(&registry, &base)?.build(&registry)
    }

    #[test]
    fn all_registry_schemes_parse_into_pipelines() {
        let registry = SchemeRegistry::with_defaults();
        for name in registry.names() {
            let a = Args::parse(&sv(&["compress", "--scheme", name])).expect("parse");
            pipeline_from(&a).expect("pipeline");
        }
        // And the full zoo as one chain.
        let chain: Vec<&str> = registry.names().collect();
        let a = Args::parse(&sv(&["compress", "--scheme", &chain.join(",")])).expect("parse");
        assert_eq!(pipeline_from(&a).expect("pipeline").len(), chain.len());
    }

    #[test]
    fn tune_winner_revalidates_standalone_on_two_graphs() {
        // The acceptance bar for the tuner: the winning spec, re-run as a
        // plain `compress` with the reported seed, must satisfy both the
        // edge budget and the metric target — on two different generated
        // graph families.
        for (kind, n, extra, extra_val) in [("ba", "500", "k", "3"), ("ws", "400", "k", "4")] {
            let gpath = tmp(&format!("tune-{kind}.txt"));
            run(&sv(&[
                "generate",
                "--kind",
                kind,
                "--n",
                n,
                &format!("--{extra}"),
                extra_val,
                "--output",
                &gpath,
            ]))
            .expect("generate");
            let g = load(&gpath).expect("load");
            let budget = g.num_edges() * 4 / 5;
            let target = sg_tune::Target::parse("degree-l1<=0.75").expect("target");
            let out = tmp(&format!("tune-{kind}-winner.txt"));
            run(&sv(&[
                "tune",
                "--input",
                &gpath,
                "--budget-edges",
                &budget.to_string(),
                "--target",
                "degree-l1<=0.75",
                "--schemes",
                "uniform,spanner,lowdeg",
                "--rounds",
                "1",
                "--seed",
                "9",
                "--output",
                &out,
            ]))
            .expect("tune finds a feasible winner under a generous target");

            // Re-derive the winner independently and re-run it standalone.
            let mut cfg = sg_tune::TuneConfig::new(budget, target, 9);
            cfg.rounds = 1;
            cfg.schemes = Some(vec!["uniform".into(), "spanner".into(), "lowdeg".into()]);
            let registry = Arc::new(SchemeRegistry::with_defaults());
            let outcome = sg_tune::tune(&g, &registry, &cfg).expect("tune");
            let w = outcome.winner.expect("feasible");
            let standalone = registry
                .parse_pipeline(&w.rendered, &SchemeParams::new())
                .expect("winner spec parses as a --scheme spec")
                .apply(&g, w.seed);
            assert_eq!(standalone.result.graph.num_edges(), w.edges, "standalone re-run matches");
            assert!(w.edges <= budget, "budget respected");
            assert!(w.metric <= target.max, "target respected");
            // And the graph `tune --output` wrote is exactly that graph.
            let written = load(&out).expect("winner graph written");
            assert_eq!(written.edge_slice(), standalone.result.graph.edge_slice());
        }
    }

    #[test]
    fn tune_reports_infeasibility_honestly() {
        let gpath = tmp("tune-infeasible.txt");
        run(&sv(&["generate", "--kind", "er", "--n", "200", "--m", "800", "--output", &gpath]))
            .expect("generate");
        // Budget 1 edge with a zero-distortion requirement: infeasible.
        run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--budget-edges",
            "1",
            "--target",
            "degree-l1<=0",
            "--schemes",
            "uniform",
            "--rounds",
            "0",
        ]))
        .expect("infeasible searches still succeed (reported, not errored)");
        // But asking to write a winner that does not exist is an error.
        let err = run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--budget-edges",
            "1",
            "--target",
            "degree-l1<=0",
            "--schemes",
            "uniform",
            "--rounds",
            "0",
            "--output",
            &tmp("tune-no-winner.txt"),
        ]))
        .unwrap_err();
        assert!(err.contains("no feasible winner"), "{err}");
        // Bad targets and scheme names fail loudly.
        assert!(run(&sv(&["tune", "--input", &gpath, "--target", "bogus<=1"])).is_err());
        assert!(run(&sv(&["tune", "--input", &gpath, "--target", "degree-l1"])).is_err());
        assert!(run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--target",
            "degree-l1<=1",
            "--schemes",
            "nope",
        ]))
        .is_err());
    }

    #[test]
    fn no_verify_loads_trusted_sgr_but_still_validates_structure() {
        let gsgr = tmp("noverify.sgr");
        run(&sv(&["generate", "--kind", "er", "--n", "200", "--m", "600", "--output", &gsgr]))
            .expect("generate");
        run(&sv(&["stats", "--input", &gsgr, "--no-verify"])).expect("trusted stats");
        // Corrupt only the stored digest: default load fails, trusted load
        // still decodes the (structurally intact) graph.
        let mut img = std::fs::read(&gsgr).expect("read");
        img[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        let bad = tmp("noverify-bad-digest.sgr");
        std::fs::write(&bad, &img).expect("write");
        assert!(run(&sv(&["stats", "--input", &bad])).is_err(), "checksum verified by default");
        run(&sv(&["stats", "--input", &bad, "--no-verify"])).expect("trusted load skips digest");
        run(&sv(&["analyze", "--input", &bad, "--no-verify", "--scheme", "lowdeg"]))
            .expect("analyze honors --no-verify");
    }

    #[test]
    fn unknown_command_and_scheme_error() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        let a = Args::parse(&sv(&["compress", "--scheme", "nope"])).expect("parse");
        assert!(pipeline_from(&a).is_err());
        let b = Args::parse(&sv(&["compress", "--scheme", "uniform,,lowdeg"])).expect("parse");
        assert!(pipeline_from(&b).is_err());
        let c = Args::parse(&sv(&["compress", "--scheme", "uniform:p"])).expect("parse");
        assert!(pipeline_from(&c).is_err());
    }

    #[test]
    fn help_and_schemes_run() {
        run(&sv(&["help"])).expect("help");
        run(&[]).expect("implicit help");
        run(&sv(&["schemes"])).expect("schemes listing");
    }

    #[test]
    fn missing_input_is_reported() {
        let err = run(&sv(&["stats", "--input", "/nonexistent/g.txt"])).unwrap_err();
        assert!(err.contains("loading"));
    }
}
