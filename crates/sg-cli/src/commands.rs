//! Subcommand implementations.

use crate::args::Args;
use sg_algos::{cc, pagerank, tc};
use sg_core::{Pipeline, SchemeParams, SchemeRegistry};
use sg_graph::{generators, io, CsrGraph};
use sg_metrics::kl_divergence;

const HELP: &str = "\
slimgraph — practical lossy graph compression (Slim Graph, SC'19)

USAGE:
  slimgraph <command> [--flag value]...

COMMANDS:
  compress   Compress a graph and write the result
             --input FILE  --output FILE
             --scheme SPEC  [--p F] [--k F] [--epsilon F] [--seed N]
             [--format text|bin|sgr] [--output-format text|bin|sgr]
  analyze    Compress, then report accuracy metrics vs the original
             (same flags as compress, no --output needed)
  tune       Search (scheme chain, parameters) for the smallest graph
             meeting a quality target
             --input FILE  --target METRIC<=BOUND  [--budget-edges N]
             [--depth N] [--rounds N] [--keep N] [--grid N] [--seed N]
             [--schemes a,b,c] [--output FILE] [--json]
             Metrics: pagerank-kl, reordered-tc, degree-l1,
             triangles-rel, components-rel.
             Example: --target pagerank-kl<=0.05 --budget-edges 50000
  stats      Print structural statistics of a graph
             --input FILE  [--format text|bin|sgr]
  convert    Convert a graph between storage formats
             --input FILE --output FILE
             [--format text|bin|sgr] [--output-format text|bin|sgr]
  generate   Produce a synthetic workload
             --kind rmat|er|ba|ws|grid  --output FILE
             [--scale N] [--n N] [--m N] [--k N] [--seed N]
  schemes    List every scheme registered in the compression registry
  help       Show this message

STORAGE FORMATS (inferred from the file extension, overridable with
--format for inputs and --output-format for outputs):
  text   whitespace edge list, `u v [w]` per line  (default)
  bin    compact binary edge list                  (*.bin)
  sgr    zero-copy binary CSR container; loaded through a read-only
         mmap with no rebuild and no copy          (*.sgr)
         --no-verify skips the checksum pass on trusted .sgr inputs
         (structural validation still runs)

SCHEME SPEC:
  A comma-separated chain of registry names; stages run left to right over
  the previous stage's output (the paper's kernel-chaining model). Each
  stage may override parameters with :key=value suffixes.

    --scheme uniform --p 0.3
    --scheme spanner,lowdeg,uniform --p 0.5
    --scheme spanner:k=4,uniform:p=0.3

  Registered names: uniform, spectral, tr, tr-eo, tr-ct, tr-mw, collapse,
  lowdeg, spanner, summary, cut (see `slimgraph schemes`).
";

/// Entry point shared with tests.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "compress" => compress(&args),
        "analyze" => analyze(&args),
        "tune" => tune(&args),
        "stats" => stats(&args),
        "convert" => convert(&args),
        "generate" => generate(&args),
        "schemes" => schemes(),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// A graph storage format the CLI can read and write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Text,
    Bin,
    Sgr,
}

impl Format {
    /// Resolves a format from an explicit `--format`/`--output-format`
    /// override, falling back to the file extension.
    fn resolve(path: &str, explicit: Option<&str>) -> Result<Format, String> {
        match explicit {
            Some("text" | "txt") => Ok(Format::Text),
            Some("bin") => Ok(Format::Bin),
            Some("sgr") => Ok(Format::Sgr),
            Some(other) => Err(format!("unknown format '{other}' (text|bin|sgr)")),
            None if path.ends_with(".bin") => Ok(Format::Bin),
            None if path.ends_with(".sgr") => Ok(Format::Sgr),
            None => Ok(Format::Text),
        }
    }
}

/// Loads a graph honoring `--format`. `.sgr` inputs go through the
/// zero-copy mmap loader — the CSR arrays stay borrowed from the mapping
/// for the whole run; the other formats rebuild a CSR in memory. With
/// `trusted` (`--no-verify`), `.sgr` opens skip the checksum pass —
/// structural validation still rejects corrupt files.
fn load_as(path: &str, explicit: Option<&str>, trusted: bool) -> Result<CsrGraph, String> {
    let verify = if trusted { sg_store::Verify::Trusted } else { sg_store::Verify::Checksum };
    let res = match Format::resolve(path, explicit)? {
        Format::Text => io::load_text(path),
        Format::Bin => io::load_binary(path),
        Format::Sgr => {
            sg_store::MmapGraph::open_with(path, verify).map(sg_store::MmapGraph::into_graph)
        }
    };
    res.map_err(|e| format!("loading {path}: {e}"))
}

/// [`load_as`] wired to a command's `--input`/`--format`/`--no-verify`.
fn load_input(args: &Args) -> Result<CsrGraph, String> {
    load_as(args.require("input")?, args.get("format"), args.flag("no-verify"))
}

fn save_as(g: &CsrGraph, path: &str, explicit: Option<&str>) -> Result<(), String> {
    let res = match Format::resolve(path, explicit)? {
        Format::Text => io::save_text(g, path),
        Format::Bin => io::save_binary(g, path).map(|_| ()),
        Format::Sgr => sg_store::save_sgr(g, path).map(|_| ()),
    };
    res.map_err(|e| format!("writing {path}: {e}"))
}

/// Builds the compression pipeline from `--scheme` plus shared parameter
/// flags (`--p`, `--k`, `--epsilon`, `--variant`, `--reweight`, `--x`).
fn pipeline_from(args: &Args) -> Result<Pipeline, String> {
    let mut base = SchemeParams::new();
    for key in ["p", "k", "epsilon", "variant", "reweight", "x"] {
        if let Some(value) = args.get(key) {
            base.set(key, value);
        }
    }
    SchemeRegistry::with_defaults().parse_pipeline(args.require("scheme")?, &base)
}

fn compress(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    let pipeline = pipeline_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = pipeline.apply(&g, seed);
    for (i, stage) in out.stages.iter().enumerate() {
        println!(
            "stage {}: {}: m {} -> {} ({:.1}% kept) in {:.1} ms",
            i + 1,
            stage.label,
            stage.input_edges,
            stage.output_edges,
            stage.compression_ratio() * 100.0,
            stage.elapsed.as_secs_f64() * 1e3
        );
    }
    let r = &out.result;
    println!(
        "total: {}: m {} -> {} ({:.1}% kept) in {:.1} ms",
        pipeline.label(),
        r.original_edges,
        r.graph.num_edges(),
        r.compression_ratio() * 100.0,
        r.elapsed.as_secs_f64() * 1e3
    );
    save_as(&r.graph, args.require("output")?, args.get("output-format"))
}

fn analyze(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    let pipeline = pipeline_from(args)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out = pipeline.apply(&g, seed);
    let r = &out.result;

    println!("pipeline:          {}", pipeline.label());
    println!("edges kept:        {:.1}%", r.compression_ratio() * 100.0);
    let cc0 = cc::connected_components(&g).num_components;
    let cc1 = cc::connected_components(&r.graph).num_components;
    println!("components:        {cc0} -> {cc1}");
    let t0 = tc::count_triangles(&g);
    let t1 = tc::count_triangles(&r.graph);
    println!("triangles:         {t0} -> {t1}");
    if r.graph.num_vertices() == g.num_vertices() {
        let pr0 = pagerank::pagerank_default(&g).scores;
        let pr1 = pagerank::pagerank_default(&r.graph).scores;
        println!("PageRank KL:       {:.5} bits", kl_divergence(&pr0, &pr1));
        let root = (0..g.num_vertices() as u32).max_by_key(|&v| g.degree(v)).unwrap_or(0);
        println!(
            "BFS critical kept: {:.1}%",
            sg_metrics::critical_edge_preservation(&g, &r.graph, root) * 100.0
        );
    } else {
        println!("(vertex set changed; distribution metrics skipped)");
    }
    Ok(())
}

/// `tune`: search the (chain, parameters) space for the smallest graph
/// meeting `--target`, report the Pareto frontier and the re-validated
/// winner (or honest infeasibility), and optionally write the winner's
/// compressed graph to `--output`.
fn tune(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    let target = sg_tune::Target::parse(args.require("target")?)?;
    let budget: usize = args.get_or("budget-edges", g.num_edges())?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = sg_tune::TuneConfig::new(budget, target, seed);
    cfg.max_depth = args.get_or("depth", cfg.max_depth)?;
    cfg.rounds = args.get_or("rounds", cfg.rounds)?;
    cfg.keep = args.get_or("keep", cfg.keep)?;
    cfg.grid = args.get_or("grid", cfg.grid)?;
    cfg.max_candidates = args.get_or("max-candidates", cfg.max_candidates)?;
    if let Some(list) = args.get("schemes") {
        let names: Vec<String> =
            list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        cfg.schemes = Some(names);
    }
    let registry = SchemeRegistry::with_defaults();
    let outcome = sg_tune::tune(&g, &registry, &cfg)?;

    if args.flag("json") {
        println!("{}", outcome.to_json());
    } else {
        println!("target:      {}", target.render());
        println!("budget:      {budget} edges (input m = {})", g.num_edges());
        println!("evaluated:   {} candidates", outcome.evaluated);
        println!("frontier ({} non-dominated points, * = feasible):", outcome.frontier.len());
        for p in outcome.frontier.points() {
            let feasible = p.edges <= budget && p.metric <= target.max;
            println!(
                "  {} {:>9} edges  ratio {:.3}  {} {:.5}  {}",
                if feasible { "*" } else { " " },
                p.edges,
                p.ratio,
                target.metric,
                p.metric,
                p.rendered
            );
        }
        match &outcome.winner {
            Some(w) => {
                println!("winner:      {}", w.rendered);
                println!(
                    "  m {} -> {} ({:.1}% kept), {} = {:.5} <= {}, pipeline seed {}",
                    g.num_edges(),
                    w.edges,
                    w.ratio * 100.0,
                    target.metric,
                    w.metric,
                    target.max,
                    w.seed
                );
                println!(
                    "  re-run:    slimgraph compress --input <in> --scheme '{}' --seed {}",
                    w.rendered, w.seed
                );
            }
            None => println!(
                "winner:      none — no candidate met {} within {budget} edges \
                 (closest trade-offs listed above)",
                target.render()
            ),
        }
    }

    if let Some(output) = args.get("output") {
        match &outcome.winner {
            Some(w) => {
                let out = w.spec.build(&registry)?.apply(&g, w.seed);
                save_as(&out.result.graph, output, args.get("output-format"))?;
            }
            None => return Err("no feasible winner to write to --output".to_string()),
        }
    }
    Ok(())
}

fn convert(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let from = Format::resolve(input, args.get("format"))?;
    let to = Format::resolve(output, args.get("output-format"))?;
    let g = load_as(input, args.get("format"), args.flag("no-verify"))?;
    save_as(&g, output, args.get("output-format"))?;
    let bytes = std::fs::metadata(output).map_err(|e| format!("stat {output}: {e}"))?.len();
    println!(
        "converted {input} ({from:?}) -> {output} ({to:?}): n = {}, m = {}, {bytes} bytes",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let g = load_input(args)?;
    let s = sg_graph::properties::degree_stats(&g);
    println!("vertices:     {}", g.num_vertices());
    println!("edges:        {}", g.num_edges());
    println!("weighted:     {}", g.is_weighted());
    println!("degrees:      min {} / mean {:.2} / max {}", s.min, s.mean, s.max);
    println!("isolated:     {}", s.isolated);
    println!("leaves:       {}", s.leaves);
    println!("components:   {}", cc::connected_components(&g).num_components);
    println!("triangles:    {}", tc::count_triangles(&g));
    if let Some(fit) = sg_graph::properties::DegreeDistribution::of(&g).power_law_fit() {
        println!("power law:    exponent {:.2}, R2 {:.3}", fit.exponent, fit.r2);
    }
    Ok(())
}

fn schemes() -> Result<(), String> {
    let registry = SchemeRegistry::with_defaults();
    println!("registered compression schemes (chain with commas):");
    for name in registry.names() {
        let scheme = registry.create(name, &SchemeParams::new())?;
        println!("  {name:<10} defaults: {}", scheme.label());
    }
    Ok(())
}

fn generate(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get_or("seed", 42)?;
    let g = match args.require("kind")? {
        "rmat" => {
            let scale: u32 = args.get_or("scale", 12)?;
            let ef: usize = args.get_or("m", 8)?;
            generators::rmat_graph500(scale, ef, seed)
        }
        "er" => {
            let n: usize = args.get_or("n", 10_000)?;
            let m: usize = args.get_or("m", 50_000)?;
            generators::erdos_renyi(n, m, seed)
        }
        "ba" => {
            let n: usize = args.get_or("n", 10_000)?;
            let k: usize = args.get_or("k", 4)?;
            generators::barabasi_albert(n, k, seed)
        }
        "ws" => {
            let n: usize = args.get_or("n", 10_000)?;
            let k: usize = args.get_or("k", 4)?;
            generators::watts_strogatz(n, k, 0.1, seed)
        }
        "grid" => {
            let n: usize = args.get_or("n", 100)?;
            generators::grid(n, n)
        }
        other => return Err(format!("unknown generator '{other}'")),
    };
    println!("generated n = {}, m = {}", g.num_vertices(), g.num_edges());
    save_as(&g, args.require("output")?, args.get("output-format"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("slimgraph-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Extension-driven load, as the subcommands themselves do it.
    fn load(path: &str) -> Result<CsrGraph, String> {
        load_as(path, None, false)
    }

    #[test]
    fn generate_stats_compress_analyze_roundtrip() {
        let gpath = tmp("g.txt");
        run(&sv(&["generate", "--kind", "ba", "--n", "500", "--k", "3", "--output", &gpath]))
            .expect("generate");
        run(&sv(&["stats", "--input", &gpath])).expect("stats");
        let out = tmp("g-compressed.bin");
        run(&sv(&[
            "compress", "--input", &gpath, "--scheme", "uniform", "--p", "0.4", "--output", &out,
        ]))
        .expect("compress");
        let g = load(&gpath).expect("load original");
        let h = load(&out).expect("load compressed");
        assert!(h.num_edges() < g.num_edges());
        run(&sv(&["analyze", "--input", &gpath, "--scheme", "tr-eo", "--p", "0.8"]))
            .expect("analyze");
    }

    #[test]
    fn binary_and_text_io_paths_roundtrip() {
        // generate → compress → stats across both serialization formats:
        // .bin in / .txt out, then .txt in / .bin out.
        let gbin = tmp("io.bin");
        run(&sv(&["generate", "--kind", "er", "--n", "300", "--m", "900", "--output", &gbin]))
            .expect("generate binary");
        let gtxt = tmp("io-compressed.txt");
        run(&sv(&[
            "compress", "--input", &gbin, "--scheme", "uniform", "--p", "0.2", "--output", &gtxt,
        ]))
        .expect("compress bin->txt");
        run(&sv(&["stats", "--input", &gtxt])).expect("stats on txt");
        let back = tmp("io-back.bin");
        run(&sv(&["compress", "--input", &gtxt, "--scheme", "lowdeg", "--output", &back]))
            .expect("compress txt->bin");
        run(&sv(&["stats", "--input", &back])).expect("stats on bin");
        assert!(load(&back).expect("load").num_edges() <= load(&gtxt).expect("load").num_edges());
    }

    #[test]
    fn convert_round_trips_all_formats() {
        // text -> bin -> sgr -> text: every pairwise hop, ending with a
        // byte-identical text file (conversion preserves canonical order).
        let gtxt = tmp("conv.txt");
        run(&sv(&["generate", "--kind", "er", "--n", "400", "--m", "1200", "--output", &gtxt]))
            .expect("generate");
        let gbin = tmp("conv.bin");
        let gsgr = tmp("conv.sgr");
        let back = tmp("conv-back.txt");
        run(&sv(&["convert", "--input", &gtxt, "--output", &gbin])).expect("text->bin");
        run(&sv(&["convert", "--input", &gbin, "--output", &gsgr])).expect("bin->sgr");
        run(&sv(&["convert", "--input", &gsgr, "--output", &back])).expect("sgr->text");
        assert_eq!(
            std::fs::read(&gtxt).expect("orig"),
            std::fs::read(&back).expect("back"),
            "text -> bin -> sgr -> text must be byte-identical"
        );
        // And the reverse direction: sgr -> bin and bin -> text.
        let gbin2 = tmp("conv2.bin");
        let gtxt2 = tmp("conv2.txt");
        run(&sv(&["convert", "--input", &gsgr, "--output", &gbin2])).expect("sgr->bin");
        run(&sv(&["convert", "--input", &gbin2, "--output", &gtxt2])).expect("bin->text");
        assert_eq!(std::fs::read(&gtxt).expect("orig"), std::fs::read(&gtxt2).expect("back2"));
    }

    #[test]
    fn explicit_format_overrides_extension() {
        // Write an .sgr image into a file with a misleading extension and
        // load it back with --format sgr.
        let gtxt = tmp("fmt.txt");
        run(&sv(&["generate", "--kind", "grid", "--n", "12", "--output", &gtxt]))
            .expect("generate");
        let odd = tmp("fmt.graph");
        run(&sv(&["convert", "--input", &gtxt, "--output", &odd, "--output-format", "sgr"]))
            .expect("convert to sgr with odd extension");
        run(&sv(&["stats", "--input", &odd, "--format", "sgr"])).expect("stats via --format");
        assert!(run(&sv(&["stats", "--input", &odd])).is_err(), "text parse of sgr must fail");
        assert!(
            run(&sv(&["stats", "--input", &odd, "--format", "nope"])).is_err(),
            "unknown format name"
        );
    }

    #[test]
    fn compress_reads_and_writes_sgr() {
        let gsgr = tmp("pipeline.sgr");
        run(&sv(&["generate", "--kind", "ba", "--n", "600", "--k", "4", "--output", &gsgr]))
            .expect("generate straight to .sgr");
        let out = tmp("pipeline-out.sgr");
        run(&sv(&[
            "compress", "--input", &gsgr, "--scheme", "uniform", "--p", "0.5", "--seed", "3",
            "--output", &out,
        ]))
        .expect("compress sgr -> sgr");
        let g = load(&gsgr).expect("load original");
        let h = load(&out).expect("load compressed");
        assert!(h.num_edges() < g.num_edges());
        run(&sv(&["analyze", "--input", &gsgr, "--scheme", "lowdeg"])).expect("analyze from sgr");
    }

    #[test]
    fn chained_scheme_compresses_and_is_deterministic() {
        let gpath = tmp("chain.txt");
        run(&sv(&["generate", "--kind", "ws", "--n", "400", "--k", "4", "--output", &gpath]))
            .expect("generate");
        let out_a = tmp("chain-a.bin");
        let out_b = tmp("chain-b.bin");
        for out in [&out_a, &out_b] {
            run(&sv(&[
                "compress",
                "--input",
                &gpath,
                "--scheme",
                "spanner,lowdeg,uniform",
                "--p",
                "0.5",
                "--seed",
                "7",
                "--output",
                out,
            ]))
            .expect("chained compress");
        }
        let a = load(&out_a).expect("load a");
        let b = load(&out_b).expect("load b");
        assert_eq!(a.edge_slice(), b.edge_slice(), "same seed must be bit-identical");
        assert!(a.num_edges() < load(&gpath).expect("orig").num_edges());
        // Per-stage parameter overrides parse too.
        run(&sv(&["analyze", "--input", &gpath, "--scheme", "spanner:k=4,uniform:p=0.2"]))
            .expect("per-stage overrides");
    }

    #[test]
    fn all_registry_schemes_parse_into_pipelines() {
        let registry = SchemeRegistry::with_defaults();
        for name in registry.names() {
            let a = Args::parse(&sv(&["compress", "--scheme", name])).expect("parse");
            pipeline_from(&a).expect("pipeline");
        }
        // And the full zoo as one chain.
        let chain: Vec<&str> = registry.names().collect();
        let a = Args::parse(&sv(&["compress", "--scheme", &chain.join(",")])).expect("parse");
        assert_eq!(pipeline_from(&a).expect("pipeline").len(), chain.len());
    }

    #[test]
    fn tune_winner_revalidates_standalone_on_two_graphs() {
        // The acceptance bar for the tuner: the winning spec, re-run as a
        // plain `compress` with the reported seed, must satisfy both the
        // edge budget and the metric target — on two different generated
        // graph families.
        for (kind, n, extra, extra_val) in [("ba", "500", "k", "3"), ("ws", "400", "k", "4")] {
            let gpath = tmp(&format!("tune-{kind}.txt"));
            run(&sv(&[
                "generate",
                "--kind",
                kind,
                "--n",
                n,
                &format!("--{extra}"),
                extra_val,
                "--output",
                &gpath,
            ]))
            .expect("generate");
            let g = load(&gpath).expect("load");
            let budget = g.num_edges() * 4 / 5;
            let target = sg_tune::Target::parse("degree-l1<=0.75").expect("target");
            let out = tmp(&format!("tune-{kind}-winner.txt"));
            run(&sv(&[
                "tune",
                "--input",
                &gpath,
                "--budget-edges",
                &budget.to_string(),
                "--target",
                "degree-l1<=0.75",
                "--schemes",
                "uniform,spanner,lowdeg",
                "--rounds",
                "1",
                "--seed",
                "9",
                "--output",
                &out,
            ]))
            .expect("tune finds a feasible winner under a generous target");

            // Re-derive the winner independently and re-run it standalone.
            let mut cfg = sg_tune::TuneConfig::new(budget, target, 9);
            cfg.rounds = 1;
            cfg.schemes = Some(vec!["uniform".into(), "spanner".into(), "lowdeg".into()]);
            let registry = SchemeRegistry::with_defaults();
            let outcome = sg_tune::tune(&g, &registry, &cfg).expect("tune");
            let w = outcome.winner.expect("feasible");
            let standalone = registry
                .parse_pipeline(&w.rendered, &SchemeParams::new())
                .expect("winner spec parses as a --scheme spec")
                .apply(&g, w.seed);
            assert_eq!(standalone.result.graph.num_edges(), w.edges, "standalone re-run matches");
            assert!(w.edges <= budget, "budget respected");
            assert!(w.metric <= target.max, "target respected");
            // And the graph `tune --output` wrote is exactly that graph.
            let written = load(&out).expect("winner graph written");
            assert_eq!(written.edge_slice(), standalone.result.graph.edge_slice());
        }
    }

    #[test]
    fn tune_reports_infeasibility_honestly() {
        let gpath = tmp("tune-infeasible.txt");
        run(&sv(&["generate", "--kind", "er", "--n", "200", "--m", "800", "--output", &gpath]))
            .expect("generate");
        // Budget 1 edge with a zero-distortion requirement: infeasible.
        run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--budget-edges",
            "1",
            "--target",
            "degree-l1<=0",
            "--schemes",
            "uniform",
            "--rounds",
            "0",
        ]))
        .expect("infeasible searches still succeed (reported, not errored)");
        // But asking to write a winner that does not exist is an error.
        let err = run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--budget-edges",
            "1",
            "--target",
            "degree-l1<=0",
            "--schemes",
            "uniform",
            "--rounds",
            "0",
            "--output",
            &tmp("tune-no-winner.txt"),
        ]))
        .unwrap_err();
        assert!(err.contains("no feasible winner"), "{err}");
        // Bad targets and scheme names fail loudly.
        assert!(run(&sv(&["tune", "--input", &gpath, "--target", "bogus<=1"])).is_err());
        assert!(run(&sv(&["tune", "--input", &gpath, "--target", "degree-l1"])).is_err());
        assert!(run(&sv(&[
            "tune",
            "--input",
            &gpath,
            "--target",
            "degree-l1<=1",
            "--schemes",
            "nope",
        ]))
        .is_err());
    }

    #[test]
    fn no_verify_loads_trusted_sgr_but_still_validates_structure() {
        let gsgr = tmp("noverify.sgr");
        run(&sv(&["generate", "--kind", "er", "--n", "200", "--m", "600", "--output", &gsgr]))
            .expect("generate");
        run(&sv(&["stats", "--input", &gsgr, "--no-verify"])).expect("trusted stats");
        // Corrupt only the stored digest: default load fails, trusted load
        // still decodes the (structurally intact) graph.
        let mut img = std::fs::read(&gsgr).expect("read");
        img[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        let bad = tmp("noverify-bad-digest.sgr");
        std::fs::write(&bad, &img).expect("write");
        assert!(run(&sv(&["stats", "--input", &bad])).is_err(), "checksum verified by default");
        run(&sv(&["stats", "--input", &bad, "--no-verify"])).expect("trusted load skips digest");
        run(&sv(&["analyze", "--input", &bad, "--no-verify", "--scheme", "lowdeg"]))
            .expect("analyze honors --no-verify");
    }

    #[test]
    fn unknown_command_and_scheme_error() {
        assert!(run(&sv(&["frobnicate"])).is_err());
        let a = Args::parse(&sv(&["compress", "--scheme", "nope"])).expect("parse");
        assert!(pipeline_from(&a).is_err());
        let b = Args::parse(&sv(&["compress", "--scheme", "uniform,,lowdeg"])).expect("parse");
        assert!(pipeline_from(&b).is_err());
        let c = Args::parse(&sv(&["compress", "--scheme", "uniform:p"])).expect("parse");
        assert!(pipeline_from(&c).is_err());
    }

    #[test]
    fn help_and_schemes_run() {
        run(&sv(&["help"])).expect("help");
        run(&[]).expect("implicit help");
        run(&sv(&["schemes"])).expect("schemes listing");
    }

    #[test]
    fn missing_input_is_reported() {
        let err = run(&sv(&["stats", "--input", "/nonexistent/g.txt"])).unwrap_err();
        assert!(err.contains("loading"));
    }
}
