//! The Pareto front of evaluated candidates over (size, accuracy).
//!
//! Every evaluated candidate is a point `(edges, metric)`; the front keeps
//! the non-dominated set (no other point is at least as small *and* at
//! least as accurate), which is the honest summary of a tuning run: the
//! winner is one point on it, but neighboring trade-offs matter when the
//! target was near-infeasible.

use sg_core::PipelineSpec;

/// One non-dominated candidate.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// The candidate spec.
    pub spec: PipelineSpec,
    /// Canonical rendered form of the spec (the dedup/tie-break key).
    pub rendered: String,
    /// Output edge count.
    pub edges: usize,
    /// Compression ratio `m'/m`.
    pub ratio: f64,
    /// Objective metric value (lower = more accurate).
    pub metric: f64,
}

/// The non-dominated set, sorted by ascending edge count (and therefore
/// strictly descending metric).
#[derive(Clone, Debug, Default)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// Builds the front from evaluated candidates. Infinite-metric
    /// (incomparable) candidates are excluded; among candidates with equal
    /// `(edges, metric)` the lexicographically smallest rendered spec wins,
    /// so the front is a deterministic function of the evaluation *set*
    /// regardless of evaluation order.
    pub fn from_points(mut all: Vec<ParetoPoint>) -> Self {
        all.retain(|p| p.metric.is_finite());
        all.sort_by(|a, b| {
            a.edges
                .cmp(&b.edges)
                .then(a.metric.total_cmp(&b.metric))
                .then(a.rendered.cmp(&b.rendered))
        });
        let mut points: Vec<ParetoPoint> = Vec::new();
        for p in all {
            match points.last() {
                // Strictly better metric than everything smaller-or-equal
                // so far, else dominated.
                Some(last) if p.metric >= last.metric => {}
                _ => points.push(p),
            }
        }
        Self { points }
    }

    /// The points, ascending by edge count.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty (every candidate was incomparable).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(rendered: &str, edges: usize, metric: f64) -> ParetoPoint {
        ParetoPoint {
            spec: PipelineSpec::parse(rendered).expect("parses"),
            rendered: rendered.to_string(),
            edges,
            ratio: 0.0,
            metric,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let front = ParetoFront::from_points(vec![
            pt("uniform:p=0.9", 10, 0.5),
            pt("uniform:p=0.5", 50, 0.1),
            pt("uniform:p=0.7", 30, 0.3),
            pt("uniform:p=0.6", 40, 0.35), // dominated by p=0.7 (30 edges, 0.3)
            pt("spanner:k=2", 60, 0.4),    // dominated by p=0.5
        ]);
        let rendered: Vec<&str> = front.points().iter().map(|p| p.rendered.as_str()).collect();
        assert_eq!(rendered, vec!["uniform:p=0.9", "uniform:p=0.7", "uniform:p=0.5"]);
        // Edges ascend, metric strictly descends.
        assert!(front.points().windows(2).all(|w| w[0].edges < w[1].edges));
        assert!(front.points().windows(2).all(|w| w[0].metric > w[1].metric));
    }

    #[test]
    fn order_independence_and_tie_breaks() {
        let a = vec![pt("b", 10, 0.5), pt("a", 10, 0.5), pt("c", 5, 0.9)];
        let mut b = a.clone();
        b.reverse();
        let fa = ParetoFront::from_points(a);
        let fb = ParetoFront::from_points(b);
        let ra: Vec<&str> = fa.points().iter().map(|p| p.rendered.as_str()).collect();
        let rb: Vec<&str> = fb.points().iter().map(|p| p.rendered.as_str()).collect();
        assert_eq!(ra, rb);
        assert_eq!(ra, vec!["c", "a"], "lexicographically smallest wins the tie");
    }

    #[test]
    fn infinite_metrics_are_excluded() {
        let front = ParetoFront::from_points(vec![pt("a", 1, f64::INFINITY)]);
        assert!(front.is_empty());
        assert_eq!(front.len(), 0);
    }
}
