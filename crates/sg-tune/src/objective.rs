//! The objective layer: quality metrics as scoring functions over
//! compression results, with the uncompressed baseline computed once.
//!
//! The paper's central discipline is that lossy schemes are judged by
//! *measured* accuracy at a given edge budget, not by construction. An
//! [`Objective`] packages one accuracy metric together with everything it
//! needs from the uncompressed graph (PageRank scores, per-vertex triangle
//! counts, scalar totals), computed exactly once and reused across every
//! candidate evaluation — the expensive part of a tuning run is the
//! candidates, not the baseline.
//!
//! Vertex-removing stages are handled by projecting compressed per-vertex
//! scores back onto the original id space through the pipeline's composed
//! vertex mapping ([`sg_metrics::project_scores`]); candidates whose output
//! cannot be aligned at all score [`f64::INFINITY`] and are never feasible.

use sg_algos::{cc, pagerank, tc};
use sg_core::CompressionResult;
use sg_graph::properties::DegreeDistribution;
use sg_graph::{CsrGraph, VertexId};
use sg_metrics::{
    compare_degree_distribution_baseline, kl_divergence, project_scores, relative_error,
    reordered_pair_fraction,
};

/// An accuracy metric the tuner can target, one per output class of §5:
/// distribution outputs (PageRank → KL), ordering outputs (per-vertex
/// triangle counts → reordered pairs), whole-graph structure
/// (degree-distribution L1), and scalar outputs (triangle / component
/// totals → relative error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// KL divergence (bits) between PageRank distributions.
    PagerankKl,
    /// Reordered-pair fraction `|PRE|/n²` of per-vertex triangle counts.
    ReorderedTc,
    /// L1 distance between degree distributions (works across vertex sets).
    DegreeL1,
    /// Relative error of the global triangle count.
    TrianglesRel,
    /// Relative error of the connected-component count.
    ComponentsRel,
}

impl MetricKind {
    /// Every metric, in the canonical (CLI listing) order.
    pub const ALL: [MetricKind; 5] = [
        MetricKind::PagerankKl,
        MetricKind::ReorderedTc,
        MetricKind::DegreeL1,
        MetricKind::TrianglesRel,
        MetricKind::ComponentsRel,
    ];

    /// The metric's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::PagerankKl => "pagerank-kl",
            MetricKind::ReorderedTc => "reordered-tc",
            MetricKind::DegreeL1 => "degree-l1",
            MetricKind::TrianglesRel => "triangles-rel",
            MetricKind::ComponentsRel => "components-rel",
        }
    }

    /// Resolves a CLI name.
    pub fn parse(name: &str) -> Result<MetricKind, String> {
        MetricKind::ALL.into_iter().find(|m| m.name() == name).ok_or_else(|| {
            let known: Vec<&str> = MetricKind::ALL.iter().map(|m| m.name()).collect();
            format!("unknown metric '{name}' (known: {})", known.join(", "))
        })
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A quality target: `metric <= max`, parsed from the CLI syntax
/// `pagerank-kl<=0.05`.
#[derive(Clone, Copy, Debug)]
pub struct Target {
    /// The metric being bounded.
    pub metric: MetricKind,
    /// Inclusive upper bound a candidate must meet to be feasible.
    pub max: f64,
}

impl Target {
    /// Parses `metric<=bound`.
    pub fn parse(spec: &str) -> Result<Target, String> {
        let (name, bound) =
            spec.split_once("<=").ok_or_else(|| format!("expected metric<=bound, got '{spec}'"))?;
        let metric = MetricKind::parse(name.trim())?;
        let max: f64 = bound
            .trim()
            .parse()
            .map_err(|_| format!("target bound: cannot parse '{}'", bound.trim()))?;
        if !max.is_finite() || max < 0.0 {
            return Err(format!("target bound must be a finite non-negative number, got {max}"));
        }
        Ok(Target { metric, max })
    }

    /// Renders back to the CLI syntax.
    pub fn render(&self) -> String {
        format!("{}<={}", self.metric.name(), self.max)
    }
}

/// Baseline data for one metric over the uncompressed graph, computed once
/// per tuning run and shared (immutably) by all candidate evaluations.
#[derive(Clone, Debug, Default)]
struct Baseline {
    pagerank: Option<Vec<f64>>,
    tc_per_vertex: Option<Vec<f64>>,
    triangles: Option<u64>,
    components: Option<usize>,
    degree_dist: Option<DegreeDistribution>,
}

/// A scoring function for compression results: one [`MetricKind`] plus its
/// cached baseline.
pub struct Objective {
    metric: MetricKind,
    baseline: Baseline,
    num_vertices: usize,
}

impl Objective {
    /// Builds the objective for `metric` over `g`, computing exactly the
    /// baseline results the metric needs (once).
    pub fn new(g: &CsrGraph, metric: MetricKind) -> Self {
        let mut baseline = Baseline::default();
        match metric {
            MetricKind::PagerankKl => {
                baseline.pagerank = Some(pagerank::pagerank_default(g).scores);
            }
            MetricKind::ReorderedTc => {
                baseline.tc_per_vertex =
                    Some(tc::triangles_per_vertex(g).iter().map(|&x| x as f64).collect());
            }
            MetricKind::DegreeL1 => {
                baseline.degree_dist = Some(DegreeDistribution::of(g));
            }
            MetricKind::TrianglesRel => {
                baseline.triangles = Some(tc::count_triangles(g));
            }
            MetricKind::ComponentsRel => {
                baseline.components = Some(cc::connected_components(g).num_components);
            }
        }
        Self { metric, baseline, num_vertices: g.num_vertices() }
    }

    /// The metric this objective scores.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// Scores a compression result against the cached baseline. Lower is
    /// better; `f64::INFINITY` means "not comparable" (the candidate can
    /// never be feasible). The score is a pure function of
    /// `(baseline, result)`, so repeated calls are bit-identical.
    pub fn score(&self, result: &CompressionResult) -> f64 {
        self.score_parts(&result.graph, result.vertex_mapping.as_deref())
    }

    /// [`Objective::score`] over the raw parts — the session-API entry
    /// point: [`sg_core::SessionRun`] hands out its graph and composed
    /// mapping behind `Arc`s, and scoring them in place avoids
    /// materializing (deep-cloning) a `CompressionResult` per candidate.
    pub fn score_parts(&self, graph: &CsrGraph, mapping: Option<&[Option<VertexId>]>) -> f64 {
        let value = match self.metric {
            MetricKind::PagerankKl => {
                let base = self.baseline.pagerank.as_ref().expect("baseline computed");
                let scores = if graph.num_vertices() == 0 {
                    Vec::new()
                } else {
                    pagerank::pagerank_default(graph).scores
                };
                match project_scores(self.num_vertices, mapping, &scores) {
                    // An empty support (n = 0) is trivially undistorted;
                    // kl_divergence asserts non-emptiness.
                    Some(projected) if projected.is_empty() => 0.0,
                    Some(projected) => kl_divergence(base, &projected),
                    None => f64::INFINITY,
                }
            }
            MetricKind::ReorderedTc => {
                let base = self.baseline.tc_per_vertex.as_ref().expect("baseline computed");
                let after: Vec<f64> =
                    tc::triangles_per_vertex(graph).iter().map(|&x| x as f64).collect();
                match project_scores(self.num_vertices, mapping, &after) {
                    Some(projected) => reordered_pair_fraction(base, &projected),
                    None => f64::INFINITY,
                }
            }
            MetricKind::DegreeL1 => {
                let base = self.baseline.degree_dist.as_ref().expect("baseline computed");
                compare_degree_distribution_baseline(base, graph).l1_distance
            }
            MetricKind::TrianglesRel => {
                let t0 = self.baseline.triangles.expect("baseline computed");
                relative_error(t0 as f64, tc::count_triangles(graph) as f64)
            }
            MetricKind::ComponentsRel => {
                let c0 = self.baseline.components.expect("baseline computed");
                relative_error(c0 as f64, cc::connected_components(graph).num_components as f64)
            }
        };
        if value.is_nan() {
            f64::INFINITY
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::schemes::uniform_sample;
    use sg_core::{CompressionScheme, PipelineSpec, SchemeRegistry};
    use sg_graph::generators;

    #[test]
    fn metric_names_roundtrip() {
        for m in MetricKind::ALL {
            assert_eq!(MetricKind::parse(m.name()).expect("round-trips"), m);
        }
        assert!(MetricKind::parse("nope").is_err());
    }

    #[test]
    fn target_parse_and_render() {
        let t = Target::parse("pagerank-kl<=0.05").expect("parses");
        assert_eq!(t.metric, MetricKind::PagerankKl);
        assert!((t.max - 0.05).abs() < 1e-12);
        assert_eq!(t.render(), "pagerank-kl<=0.05");
        assert!(Target::parse("pagerank-kl").is_err());
        assert!(Target::parse("pagerank-kl<=-1").is_err());
        assert!(Target::parse("pagerank-kl<=abc").is_err());
    }

    #[test]
    fn identity_compression_scores_near_zero() {
        let g = generators::erdos_renyi(300, 1200, 1);
        let r = uniform_sample(&g, 0.0, 2); // keeps everything
        for m in MetricKind::ALL {
            let obj = Objective::new(&g, m);
            let s = obj.score(&r);
            assert!(s < 1e-9, "{m}: identity scored {s}");
        }
    }

    #[test]
    fn scores_grow_with_distortion() {
        let g = generators::planted_triangles(&generators::barabasi_albert(800, 4, 3), 800, 4);
        // Reordered pairs is deliberately excluded: at heavy compression
        // per-vertex triangle counts collapse to 0 and ties suppress strict
        // flips (see tests/metrics_integration.rs), so it is only monotone
        // at *equal* edge budgets.
        for m in [
            MetricKind::PagerankKl,
            MetricKind::DegreeL1,
            MetricKind::TrianglesRel,
            MetricKind::ComponentsRel,
        ] {
            let obj = Objective::new(&g, m);
            let mild = obj.score(&uniform_sample(&g, 0.1, 5));
            let harsh = obj.score(&uniform_sample(&g, 0.8, 5));
            assert!(
                mild <= harsh,
                "{m}: mild {mild} should not exceed harsh {harsh} on the same seed"
            );
        }
        let obj = Objective::new(&g, MetricKind::ReorderedTc);
        let s = obj.score(&uniform_sample(&g, 0.4, 5));
        assert!(s > 0.0 && s.is_finite(), "real compression reorders some pairs: {s}");
    }

    #[test]
    fn vertex_removing_stages_score_finitely_via_projection() {
        let g = generators::planted_triangles(&generators::barabasi_albert(500, 2, 6), 300, 7);
        let registry = SchemeRegistry::with_defaults();
        let out = PipelineSpec::parse("lowdeg,uniform:p=0.3")
            .expect("parses")
            .build(&registry)
            .expect("builds")
            .apply(&g, 8);
        for m in [MetricKind::PagerankKl, MetricKind::ReorderedTc, MetricKind::DegreeL1] {
            let obj = Objective::new(&g, m);
            let s = obj.score(&out.result);
            assert!(s.is_finite(), "{m}: projection should make this comparable, got {s}");
        }
    }

    #[test]
    fn empty_graphs_score_cleanly_for_every_metric() {
        // Regression: pagerank-kl used to panic on n = 0 via kl_divergence's
        // non-empty assertion. An empty graph is trivially undistorted.
        let g = sg_graph::CsrGraph::from_pairs(0, &[]);
        let r = uniform_sample(&g, 0.5, 1);
        for m in MetricKind::ALL {
            let s = Objective::new(&g, m).score(&r);
            assert_eq!(s, 0.0, "{m}: empty graph must score 0, got {s}");
        }
    }

    #[test]
    fn misaligned_results_score_infinite() {
        let g = generators::erdos_renyi(100, 300, 9);
        let other = generators::erdos_renyi(50, 120, 10);
        // A result claiming identity mapping but with a different vertex
        // count cannot be aligned.
        let bogus = sg_core::scheme::Uniform { p: 0.0 }.apply(&other, 0);
        let obj = Objective::new(&g, MetricKind::PagerankKl);
        assert_eq!(obj.score(&bogus), f64::INFINITY);
    }
}
