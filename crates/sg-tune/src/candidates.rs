//! Deterministic candidate generation: chain enumeration over the registry
//! and per-stage parameter grids with successive refinement.
//!
//! The search space is the cross product of (scheme chains up to a depth
//! bound) × (per-stage parameter values). Every function here is a pure
//! function of its arguments — candidate order never depends on thread
//! count, wall clock, or map iteration order — which is what lets the
//! whole tuning run be bit-reproducible.
//!
//! Parameters are explored on a per-scheme *axis* ([`Axis`]): probabilities
//! and error budgets on a linear scale, stretch/connectivity parameters
//! (`k`) on a log₂ scale. Round 0 evaluates a coarse inclusive grid;
//! refinement rounds move each axis of a surviving candidate by ± one step
//! in transformed space, halving the step each round (grid refinement, the
//! deterministic cousin of successive halving's budget doubling).

use sg_core::{PipelineSpec, StageSpec};

/// How an axis maps parameter values to the search's transformed space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Explore values evenly.
    Linear,
    /// Explore exponents evenly (for `k`-style parameters spanning decades).
    Log2,
}

/// The tunable parameter of one scheme family.
#[derive(Clone, Copy, Debug)]
pub struct Axis {
    /// Parameter key the scheme reads.
    pub key: &'static str,
    /// Smallest value explored.
    pub lo: f64,
    /// Largest value explored.
    pub hi: f64,
    /// Grid scale.
    pub scale: Scale,
    /// Whether values are rounded to integers before rendering.
    pub integer: bool,
}

impl Axis {
    fn transform(&self, v: f64) -> f64 {
        match self.scale {
            Scale::Linear => v,
            Scale::Log2 => v.log2(),
        }
    }

    fn invert(&self, t: f64) -> f64 {
        let v = match self.scale {
            Scale::Linear => t,
            Scale::Log2 => t.exp2(),
        };
        let v = v.clamp(self.lo, self.hi);
        if self.integer {
            v.round()
        } else {
            v
        }
    }

    /// Transformed-space width of the axis.
    pub fn span_t(&self) -> f64 {
        self.transform(self.hi) - self.transform(self.lo)
    }

    /// `points` grid values, inclusive of both ends (midpoint when
    /// `points == 1`), evenly spaced in transformed space.
    pub fn grid(&self, points: usize) -> Vec<f64> {
        let (lo_t, hi_t) = (self.transform(self.lo), self.transform(self.hi));
        if points <= 1 {
            return vec![self.invert(0.5 * (lo_t + hi_t))];
        }
        (0..points)
            .map(|i| self.invert(lo_t + self.span_t() * i as f64 / (points - 1) as f64))
            .collect()
    }

    /// Renders a value as the canonical parameter string.
    pub fn render(&self, v: f64) -> String {
        format_value(v, self.integer)
    }
}

/// The tunable axis of a built-in scheme; `None` for parameterless schemes
/// (`lowdeg`) and unknown/custom registrations (explored with factory
/// defaults only).
pub fn axis_for(name: &str) -> Option<Axis> {
    match name {
        "uniform" | "tr" | "tr-eo" | "tr-ct" | "tr-mw" | "collapse" | "spectral" => {
            Some(Axis { key: "p", lo: 0.05, hi: 0.95, scale: Scale::Linear, integer: false })
        }
        "spanner" => {
            Some(Axis { key: "k", lo: 2.0, hi: 128.0, scale: Scale::Log2, integer: false })
        }
        "cut" => Some(Axis { key: "k", lo: 1.0, hi: 64.0, scale: Scale::Log2, integer: true }),
        "summary" => {
            Some(Axis { key: "epsilon", lo: 0.02, hi: 0.5, scale: Scale::Linear, integer: false })
        }
        _ => None,
    }
}

/// Formats a parameter value canonically: integers exactly, floats with at
/// most four decimals and no trailing zeros (so rendered specs stay tidy
/// and `parse(render(spec)) == spec`).
pub fn format_value(v: f64, integer: bool) -> String {
    if integer {
        return format!("{}", v.round() as i64);
    }
    let mut s = format!("{v:.4}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    s
}

/// All scheme chains of length `1..=max_depth` over `names`, with
/// repetition, in deterministic order (shorter chains first, then
/// lexicographic by position).
pub fn enumerate_chains(names: &[String], max_depth: usize) -> Vec<Vec<String>> {
    let mut chains: Vec<Vec<String>> = Vec::new();
    let mut frontier: Vec<Vec<String>> = vec![Vec::new()];
    for _ in 0..max_depth {
        let mut next = Vec::with_capacity(frontier.len() * names.len());
        for prefix in &frontier {
            for name in names {
                let mut chain = prefix.clone();
                chain.push(name.clone());
                next.push(chain);
            }
        }
        chains.extend(next.iter().cloned());
        frontier = next;
    }
    chains
}

/// Round-0 candidates: for each chain, the cross product of every stage's
/// coarse grid (a single default-parameter stage for axis-less schemes).
pub fn initial_candidates(chains: &[Vec<String>], grid_points: usize) -> Vec<PipelineSpec> {
    let mut out = Vec::new();
    for chain in chains {
        // Per-stage option lists (None = factory defaults).
        let options: Vec<Vec<Option<(&'static str, String)>>> = chain
            .iter()
            .map(|name| match axis_for(name) {
                Some(axis) => axis
                    .grid(grid_points)
                    .iter()
                    .map(|&v| Some((axis.key, axis.render(v))))
                    .collect(),
                None => vec![None],
            })
            .collect();
        // Deterministic cross product, last stage varying fastest.
        let combos: usize = options.iter().map(Vec::len).product();
        for mut index in 0..combos {
            let mut stages = Vec::with_capacity(chain.len());
            for (stage, opts) in chain.iter().zip(&options).rev() {
                let pick = &opts[index % opts.len()];
                index /= opts.len();
                stages.push(match pick {
                    Some((key, value)) => StageSpec::with_params(stage, &[(key, value)]),
                    None => StageSpec::new(stage),
                });
            }
            stages.reverse();
            out.push(PipelineSpec::from_stages(stages));
        }
    }
    out
}

/// Refinement neighbors of a surviving candidate for refinement round
/// `round` (1-based): for each stage with an axis, the current value moved
/// by ± one step in transformed space, where the step is the round-0 grid
/// spacing halved `round` times. One axis moves at a time (coordinate
/// descent), so a survivor with `s` tunable stages yields at most `2s`
/// neighbors.
pub fn refine(spec: &PipelineSpec, round: usize, grid_points: usize) -> Vec<PipelineSpec> {
    let mut out = Vec::new();
    for (i, stage) in spec.stages.iter().enumerate() {
        let Some(axis) = axis_for(&stage.name) else { continue };
        let Some(current) = stage.params.get_str(axis.key).and_then(|s| s.parse::<f64>().ok())
        else {
            continue;
        };
        let spacing = axis.span_t() / (grid_points.saturating_sub(1).max(1)) as f64;
        let step = spacing / (1u64 << round.min(52)) as f64;
        for dir in [-1.0, 1.0] {
            let moved = axis.invert(axis.transform(current) + dir * step);
            let rendered = axis.render(moved);
            if rendered == axis.render(current) {
                continue; // clamped or rounded back onto itself
            }
            let mut neighbor = spec.clone();
            // Overwrite only the moved axis key — any other parameters the
            // stage carries (e.g. a spectral `variant`) must survive, or
            // the neighbor would score a different scheme configuration.
            neighbor.stages[i].params.set(axis.key, &rendered);
            out.push(neighbor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn chains_enumerate_depth_major() {
        let chains = enumerate_chains(&names(&["a", "b"]), 2);
        let rendered: Vec<String> = chains.iter().map(|c| c.join(",")).collect();
        assert_eq!(rendered, vec!["a", "b", "a,a", "a,b", "b,a", "b,b"]);
        assert_eq!(enumerate_chains(&names(&["a", "b", "c"]), 1).len(), 3);
        assert_eq!(enumerate_chains(&names(&["a", "b", "c"]), 3).len(), 3 + 9 + 27);
    }

    #[test]
    fn grids_are_inclusive_and_monotone() {
        let axis = axis_for("uniform").expect("axis");
        let g = axis.grid(3);
        assert_eq!(g.len(), 3);
        assert!((g[0] - 0.05).abs() < 1e-12 && (g[2] - 0.95).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[0] < w[1]));

        let k = axis_for("spanner").expect("axis");
        let kg = k.grid(3);
        assert!((kg[0] - 2.0).abs() < 1e-9 && (kg[2] - 128.0).abs() < 1e-6);
        // Log scale: middle point is the geometric mean.
        assert!((kg[1] - 16.0).abs() < 1e-6, "geometric midpoint, got {}", kg[1]);
    }

    #[test]
    fn initial_candidates_cross_stage_grids() {
        let chains = enumerate_chains(&names(&["uniform", "lowdeg"]), 2);
        let cands = initial_candidates(&chains, 3);
        // uniform(3) + lowdeg(1) + uniform,uniform(9) + uniform,lowdeg(3)
        // + lowdeg,uniform(3) + lowdeg,lowdeg(1)
        assert_eq!(cands.len(), 3 + 1 + 9 + 3 + 3 + 1);
        // All rendered specs are unique and parse back.
        let mut rendered: Vec<String> = cands.iter().map(PipelineSpec::render).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), cands.len(), "no duplicate candidates");
        for spec in &cands {
            assert_eq!(&PipelineSpec::parse(&spec.render()).expect("parses"), spec);
        }
    }

    #[test]
    fn refinement_moves_one_axis_at_a_time() {
        let spec = PipelineSpec::parse("uniform:p=0.5,lowdeg").expect("parses");
        let n1 = refine(&spec, 1, 3);
        assert_eq!(n1.len(), 2, "one tunable axis, two directions");
        // grid spacing 0.45, round-1 step 0.225.
        let values: Vec<&str> =
            n1.iter().map(|s| s.stages[0].params.get_str("p").expect("p set")).collect();
        assert_eq!(values, vec!["0.275", "0.725"]);
        // Rounds shrink the step.
        let n2 = refine(&spec, 2, 3);
        let v2: Vec<&str> =
            n2.iter().map(|s| s.stages[0].params.get_str("p").expect("p set")).collect();
        assert_eq!(v2, vec!["0.3875", "0.6125"]);
    }

    #[test]
    fn refinement_preserves_non_axis_parameters() {
        // Only the moved axis key may change; other stage parameters (like
        // spectral's `variant`) must carry over into every neighbor.
        let spec = PipelineSpec::parse("spectral:p=0.5:variant=avgdeg").expect("parses");
        let neighbors = refine(&spec, 1, 3);
        assert_eq!(neighbors.len(), 2);
        for n in &neighbors {
            assert_eq!(n.stages[0].params.get_str("variant"), Some("avgdeg"));
            assert_ne!(n.stages[0].params.get_str("p"), Some("0.5"));
        }
    }

    #[test]
    fn refinement_clamps_at_axis_bounds() {
        let spec = PipelineSpec::parse("uniform:p=0.95").expect("parses");
        let n = refine(&spec, 1, 3);
        // Upward move clamps onto 0.95 itself and is dropped.
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].stages[0].params.get_str("p"), Some("0.725"));
    }

    #[test]
    fn format_value_trims_and_rounds() {
        assert_eq!(format_value(0.5, false), "0.5");
        assert_eq!(format_value(0.2500, false), "0.25");
        assert_eq!(format_value(1.0, false), "1");
        assert_eq!(format_value(2.82842712, false), "2.8284");
        assert_eq!(format_value(3.6, true), "4");
    }
}
