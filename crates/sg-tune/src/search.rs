//! The tuning loop: deterministic successive grid refinement over the
//! candidate space, parallel candidate evaluation, and winner validation.
//!
//! Determinism contract (the same one the rayon shim pins for kernels):
//! the candidate list of every round, each candidate's RNG seed, and all
//! tie-breaks are pure functions of `(graph, TuneConfig)` — never of
//! thread count or evaluation timing. Candidates are evaluated with
//! `par_iter().map(..).collect()`, which assembles results in input order,
//! so a tuning run is bit-identical at any `SG_THREADS`.

use crate::candidates::{enumerate_chains, initial_candidates, refine};
use crate::objective::{Objective, Target};
use crate::pareto::{ParetoFront, ParetoPoint};
use rayon::prelude::*;
use sg_core::{PipelineSpec, SchemeRegistry};
use sg_graph::prng::mix64;
use sg_graph::CsrGraph;
use std::collections::BTreeSet;

/// Configuration of one tuning run.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Hard upper bound on output edges for a candidate to be feasible.
    pub budget_edges: usize,
    /// Quality target (`metric <= max`) a candidate must meet.
    pub target: Target,
    /// Maximum chain length explored.
    pub max_depth: usize,
    /// Master seed; every candidate's pipeline seed derives from this and
    /// the candidate's rendered spec.
    pub seed: u64,
    /// Refinement rounds after the coarse screening round.
    pub rounds: usize,
    /// Survivors kept per refinement round.
    pub keep: usize,
    /// Coarse grid points per parameter axis.
    pub grid: usize,
    /// Scheme-name subset to search; `None` = every registered scheme.
    pub schemes: Option<Vec<String>>,
    /// Safety cap on round-0 candidates (the chain × grid cross product
    /// grows fast with depth).
    pub max_candidates: usize,
}

impl TuneConfig {
    /// A config with the default search shape (depth 2, 3-point grids, 2
    /// refinement rounds, 8 survivors).
    pub fn new(budget_edges: usize, target: Target, seed: u64) -> Self {
        Self {
            budget_edges,
            target,
            max_depth: 2,
            seed,
            rounds: 2,
            keep: 8,
            grid: 3,
            schemes: None,
            max_candidates: 20_000,
        }
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Evaluated {
    /// The candidate spec.
    pub spec: PipelineSpec,
    /// Canonical rendered spec (dedup and tie-break key).
    pub rendered: String,
    /// Output edge count.
    pub edges: usize,
    /// Output vertex count.
    pub vertices: usize,
    /// Compression ratio `m'/m`.
    pub ratio: f64,
    /// Objective metric value (lower = better; `INFINITY` = incomparable).
    pub metric: f64,
    /// The pipeline seed this candidate ran with.
    pub seed: u64,
}

impl Evaluated {
    /// Whether the candidate meets both the edge budget and the target.
    pub fn feasible(&self, cfg: &TuneConfig) -> bool {
        self.edges <= cfg.budget_edges && self.metric <= cfg.target.max
    }
}

/// Result of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Non-dominated (edges, metric) points over every evaluated candidate.
    pub frontier: ParetoFront,
    /// The smallest feasible candidate, re-validated by a fresh run;
    /// `None` when no candidate met the target within the budget.
    pub winner: Option<Evaluated>,
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// The budget the run enforced.
    pub budget_edges: usize,
    /// The target the run enforced.
    pub target: Target,
}

impl TuneOutcome {
    /// Serializes the outcome as one JSON object (spec strings escaped).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        fn eval_json(e: &Evaluated) -> String {
            format!(
                "{{\"spec\":\"{}\",\"edges\":{},\"vertices\":{},\"ratio\":{},\"metric\":{},\"seed\":{}}}",
                esc(&e.rendered),
                e.edges,
                e.vertices,
                num(e.ratio),
                num(e.metric),
                e.seed
            )
        }
        let mut out = String::from("{");
        out.push_str(&format!("\"budget_edges\":{}", self.budget_edges));
        out.push_str(&format!(",\"target\":\"{}\"", esc(&self.target.render())));
        out.push_str(&format!(",\"evaluated\":{}", self.evaluated));
        out.push_str(",\"winner\":");
        match &self.winner {
            Some(w) => out.push_str(&eval_json(w)),
            None => out.push_str("null"),
        }
        out.push_str(",\"frontier\":[");
        for (i, p) in self.frontier.points().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"spec\":\"{}\",\"edges\":{},\"ratio\":{},\"metric\":{}}}",
                esc(&p.rendered),
                p.edges,
                num(p.ratio),
                num(p.metric)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The deterministic pipeline seed of a candidate: FNV-1a over the
/// rendered spec, mixed with the master seed. A pure function of
/// `(seed, spec)` — never of candidate index, round, or thread count — so
/// re-running a spec standalone reproduces the tuner's result exactly.
pub fn candidate_seed(seed: u64, rendered: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in rendered.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(seed ^ h)
}

fn evaluate(
    g: &CsrGraph,
    registry: &SchemeRegistry,
    objective: &Objective,
    master_seed: u64,
    spec: &PipelineSpec,
) -> Option<Evaluated> {
    let rendered = spec.render();
    let pipeline = spec.build(registry).ok()?;
    let seed = candidate_seed(master_seed, &rendered);
    let out = pipeline.apply(g, seed);
    let metric = objective.score(&out.result);
    Some(Evaluated {
        spec: spec.clone(),
        rendered,
        edges: out.result.graph.num_edges(),
        vertices: out.result.graph.num_vertices(),
        ratio: out.result.compression_ratio(),
        metric,
        seed,
    })
}

/// Total order used both to pick refinement survivors and the winner:
/// feasible candidates first (smallest output, then most accurate);
/// infeasible ones by accuracy (so refinement pulls toward feasibility);
/// rendered spec as the final deterministic tie-break.
fn rank(a: &Evaluated, b: &Evaluated, cfg: &TuneConfig) -> std::cmp::Ordering {
    match (a.feasible(cfg), b.feasible(cfg)) {
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (true, true) => a
            .edges
            .cmp(&b.edges)
            .then(a.metric.total_cmp(&b.metric))
            .then_with(|| a.rendered.cmp(&b.rendered)),
        (false, false) => a
            .metric
            .total_cmp(&b.metric)
            .then(a.edges.cmp(&b.edges))
            .then_with(|| a.rendered.cmp(&b.rendered)),
    }
}

/// Runs the search: screen every (chain, coarse grid) candidate, refine
/// survivors for `cfg.rounds` rounds, re-validate the winner with a fresh
/// run, and return the frontier + winner.
///
/// Errors on invalid configuration (unknown scheme names, zero-sized
/// search, a round-0 cross product beyond `max_candidates`) and on winner
/// re-validation mismatch (which would indicate a determinism bug —
/// pipelines are pure functions of `(graph, spec, seed)`).
pub fn tune(
    g: &CsrGraph,
    registry: &SchemeRegistry,
    cfg: &TuneConfig,
) -> Result<TuneOutcome, String> {
    if cfg.max_depth == 0 || cfg.grid == 0 || cfg.keep == 0 {
        return Err("max_depth, grid, and keep must all be at least 1".to_string());
    }
    let names: Vec<String> = match &cfg.schemes {
        Some(list) => {
            let mut names: Vec<String> = list.clone();
            names.sort();
            names.dedup();
            for name in &names {
                if !registry.contains(name) {
                    let known: Vec<&str> = registry.names().collect();
                    return Err(format!("unknown scheme '{name}' (known: {})", known.join(", ")));
                }
            }
            names
        }
        None => registry.names().map(String::from).collect(),
    };
    if names.is_empty() {
        return Err("no schemes to search over".to_string());
    }

    // Enforce the candidate cap *arithmetically* before materializing
    // anything: the round-0 count is Σ_{d=1..depth} (Σ per-scheme grid
    // sizes)^d, which explodes long before the Vec would finish allocating
    // at high --depth (11 schemes × grid 3 × depth 6 is ~10^9 specs).
    let per_stage: u128 = names
        .iter()
        .map(|n| if crate::candidates::axis_for(n).is_some() { cfg.grid as u128 } else { 1 })
        .sum();
    let mut round0: u128 = 0;
    let mut power: u128 = 1;
    for _ in 0..cfg.max_depth {
        power = power.saturating_mul(per_stage);
        round0 = round0.saturating_add(power);
    }
    if round0 > cfg.max_candidates as u128 {
        return Err(format!(
            "round-0 search space has {round0} candidates (cap {}); lower --depth/--grid or \
             pass --schemes to narrow the chain alphabet",
            cfg.max_candidates
        ));
    }

    let objective = Objective::new(g, cfg.target.metric);
    let chains = enumerate_chains(&names, cfg.max_depth);
    let mut batch = initial_candidates(&chains, cfg.grid);
    debug_assert_eq!(batch.len() as u128, round0, "cap arithmetic matches enumeration");

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut all: Vec<Evaluated> = Vec::new();
    for round in 0..=cfg.rounds {
        batch.retain(|spec| seen.insert(spec.render()));
        if batch.is_empty() {
            break;
        }
        // Parallel evaluation; `collect` assembles in input order, so the
        // result is bit-identical at any thread count.
        let evals: Vec<Option<Evaluated>> = batch
            .par_iter()
            .map(|spec| evaluate(g, registry, &objective, cfg.seed, spec))
            .collect();
        all.extend(evals.into_iter().flatten());
        if round == cfg.rounds {
            break;
        }
        let mut order: Vec<usize> = (0..all.len()).collect();
        order.sort_by(|&a, &b| rank(&all[a], &all[b], cfg));
        batch = order
            .iter()
            .take(cfg.keep)
            .flat_map(|&i| refine(&all[i].spec, round + 1, cfg.grid))
            .collect();
    }

    let winner = all.iter().min_by(|a, b| rank(a, b, cfg)).filter(|e| e.feasible(cfg)).cloned();
    if let Some(w) = &winner {
        // Fresh standalone run of the winning spec: the determinism
        // contract says it must reproduce the tuner's numbers exactly.
        let fresh = evaluate(g, registry, &objective, cfg.seed, &w.spec)
            .ok_or_else(|| format!("winner '{}' failed to rebuild", w.rendered))?;
        if fresh.edges != w.edges || fresh.metric.to_bits() != w.metric.to_bits() {
            return Err(format!(
                "winner '{}' failed re-validation: {} edges / metric {} vs fresh {} / {}",
                w.rendered, w.edges, w.metric, fresh.edges, fresh.metric
            ));
        }
    }

    let frontier = ParetoFront::from_points(
        all.iter()
            .map(|e| ParetoPoint {
                spec: e.spec.clone(),
                rendered: e.rendered.clone(),
                edges: e.edges,
                ratio: e.ratio,
                metric: e.metric,
            })
            .collect(),
    );
    Ok(TuneOutcome {
        frontier,
        winner,
        evaluated: all.len(),
        budget_edges: cfg.budget_edges,
        target: cfg.target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::MetricKind;
    use sg_graph::generators;

    fn small_cfg(budget: usize, max: f64) -> TuneConfig {
        let target = Target { metric: MetricKind::DegreeL1, max };
        let mut cfg = TuneConfig::new(budget, target, 7);
        cfg.schemes = Some(vec!["uniform".into(), "lowdeg".into(), "spanner".into()]);
        cfg.max_depth = 2;
        cfg.rounds = 1;
        cfg.keep = 4;
        cfg
    }

    #[test]
    fn finds_a_feasible_winner_and_validates_it() {
        let g = generators::barabasi_albert(400, 4, 1);
        let registry = SchemeRegistry::with_defaults();
        let cfg = small_cfg(g.num_edges() * 3 / 4, 1.0);
        let out = tune(&g, &registry, &cfg).expect("search runs");
        let w = out.winner.expect("generous target is feasible");
        assert!(w.edges <= cfg.budget_edges);
        assert!(w.metric <= cfg.target.max);
        assert!(!out.frontier.is_empty());
        assert!(out.evaluated > 0);

        // The winner must hold up under a fully standalone re-run.
        let pipeline = w.spec.build(&registry).expect("builds");
        let fresh = pipeline.apply(&g, candidate_seed(cfg.seed, &w.rendered));
        assert_eq!(fresh.result.graph.num_edges(), w.edges);
    }

    #[test]
    fn impossible_targets_are_reported_infeasible() {
        let g = generators::erdos_renyi(200, 800, 2);
        let registry = SchemeRegistry::with_defaults();
        // Budget of 0 edges with a 0.0-distortion requirement: nothing can
        // satisfy both on a connected-ish graph.
        let mut cfg = small_cfg(0, 0.0);
        cfg.rounds = 0;
        let out = tune(&g, &registry, &cfg).expect("search still runs");
        assert!(out.winner.is_none(), "must report infeasibility, not invent a winner");
        assert!(out.evaluated > 0);
    }

    #[test]
    fn repeated_runs_are_identical() {
        let g = generators::watts_strogatz(300, 4, 0.1, 3);
        let registry = SchemeRegistry::with_defaults();
        let cfg = small_cfg(g.num_edges(), 0.5);
        let a = tune(&g, &registry, &cfg).expect("run a");
        let b = tune(&g, &registry, &cfg).expect("run b");
        assert_eq!(a.to_json(), b.to_json(), "bit-identical runs");
    }

    #[test]
    fn config_errors_are_loud() {
        let g = generators::cycle(10);
        let registry = SchemeRegistry::with_defaults();
        let mut cfg = small_cfg(10, 1.0);
        cfg.schemes = Some(vec!["nope".into()]);
        assert!(tune(&g, &registry, &cfg).unwrap_err().contains("unknown scheme"));
        let mut cfg = small_cfg(10, 1.0);
        cfg.max_candidates = 1;
        assert!(tune(&g, &registry, &cfg).unwrap_err().contains("cap"));
        let mut cfg = small_cfg(10, 1.0);
        cfg.keep = 0;
        assert!(tune(&g, &registry, &cfg).is_err());
    }

    #[test]
    fn candidate_seeds_differ_by_spec_not_by_order() {
        let s1 = candidate_seed(7, "uniform:p=0.5");
        let s2 = candidate_seed(7, "uniform:p=0.55");
        assert_ne!(s1, s2);
        assert_eq!(s1, candidate_seed(7, "uniform:p=0.5"), "pure function");
        assert_ne!(s1, candidate_seed(8, "uniform:p=0.5"), "master seed matters");
    }
}
