//! The tuning loop: deterministic successive grid refinement over the
//! candidate space, parallel session-based candidate evaluation, and
//! winner validation.
//!
//! Determinism contract (the same one the rayon shim pins for kernels):
//! the candidate list of every round and all tie-breaks are pure functions
//! of `(graph, TuneConfig)` — never of thread count or evaluation timing.
//! Candidates are evaluated with `par_iter().map(..).collect()`, which
//! assembles results in input order, so a tuning run is bit-identical at
//! any `SG_THREADS`.
//!
//! Every candidate runs with the **same pipeline seed** (the master seed)
//! through a shared [`sg_core::SgSession`], so grid-refinement neighbors —
//! which differ only in one suffix stage's parameter — reuse their shared
//! chain prefix from the [`sg_core::StageCache`] instead of recomputing
//! it. Cache hits are bit-identical to cold runs (pipelines are pure
//! functions of `(graph, spec, seed)`), so *results* stay deterministic;
//! only the [`TuneOutcome::stages_executed`] perf counter depends on
//! evaluation interleaving and is therefore excluded from the JSON.

use crate::candidates::{enumerate_chains, initial_candidates, refine};
use crate::objective::{Objective, Target};
use crate::pareto::{ParetoFront, ParetoPoint};
use rayon::prelude::*;
use sg_core::{GraphCatalog, PipelineSpec, SchemeRegistry, SgSession, StageCache};
use sg_graph::CsrGraph;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of one tuning run.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Hard upper bound on output edges for a candidate to be feasible.
    pub budget_edges: usize,
    /// Quality target (`metric <= max`) a candidate must meet.
    pub target: Target,
    /// Maximum chain length explored.
    pub max_depth: usize,
    /// Master seed; every candidate's pipeline seed derives from this and
    /// the candidate's rendered spec.
    pub seed: u64,
    /// Refinement rounds after the coarse screening round.
    pub rounds: usize,
    /// Survivors kept per refinement round.
    pub keep: usize,
    /// Coarse grid points per parameter axis.
    pub grid: usize,
    /// Scheme-name subset to search; `None` = every registered scheme.
    pub schemes: Option<Vec<String>>,
    /// Safety cap on round-0 candidates (the chain × grid cross product
    /// grows fast with depth).
    pub max_candidates: usize,
    /// Extra round-0 candidates — typically the Pareto frontier of a
    /// previous run (`slimgraph tune --warm-start frontier.json`). They
    /// are screened and refined alongside the generated grid, so a warm
    /// start both seeds known-good regions and composes with the stage
    /// cache (warm specs share prefixes with their own refinements).
    pub warm_start: Vec<PipelineSpec>,
    /// Byte budget of the shared stage cache used for candidate
    /// evaluation (0 disables prefix reuse).
    pub cache_bytes: usize,
}

impl TuneConfig {
    /// A config with the default search shape (depth 2, 3-point grids, 2
    /// refinement rounds, 8 survivors).
    pub fn new(budget_edges: usize, target: Target, seed: u64) -> Self {
        Self {
            budget_edges,
            target,
            max_depth: 2,
            seed,
            rounds: 2,
            keep: 8,
            grid: 3,
            schemes: None,
            max_candidates: 20_000,
            warm_start: Vec::new(),
            cache_bytes: sg_core::cache::DEFAULT_CACHE_BYTES,
        }
    }
}

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Evaluated {
    /// The candidate spec.
    pub spec: PipelineSpec,
    /// Canonical rendered spec (dedup and tie-break key).
    pub rendered: String,
    /// Output edge count.
    pub edges: usize,
    /// Output vertex count.
    pub vertices: usize,
    /// Compression ratio `m'/m`.
    pub ratio: f64,
    /// Objective metric value (lower = better; `INFINITY` = incomparable).
    pub metric: f64,
    /// The pipeline seed this candidate ran with.
    pub seed: u64,
}

impl Evaluated {
    /// Whether the candidate meets both the edge budget and the target.
    pub fn feasible(&self, cfg: &TuneConfig) -> bool {
        self.edges <= cfg.budget_edges && self.metric <= cfg.target.max
    }
}

/// Result of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Non-dominated (edges, metric) points over every evaluated candidate.
    pub frontier: ParetoFront,
    /// The smallest feasible candidate, re-validated by a fresh run;
    /// `None` when no candidate met the target within the budget.
    pub winner: Option<Evaluated>,
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// The budget the run enforced.
    pub budget_edges: usize,
    /// The target the run enforced.
    pub target: Target,
    /// Pipeline stages across all candidates (executed + cache-reused).
    ///
    /// **Perf counter, not part of the deterministic outcome**: which
    /// concurrent candidate computes a shared prefix (and which reuses it)
    /// depends on evaluation interleaving, so `stages_executed` may vary
    /// with `SG_THREADS` even though every graph, metric, and the JSON
    /// rendering are bit-identical. Deliberately excluded from
    /// [`TuneOutcome::to_json`].
    pub stages_total: usize,
    /// Pipeline stages actually executed (see [`TuneOutcome::stages_total`]).
    pub stages_executed: usize,
}

impl TuneOutcome {
    /// Serializes the outcome as one JSON object (spec strings escaped).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        fn eval_json(e: &Evaluated) -> String {
            format!(
                "{{\"spec\":\"{}\",\"edges\":{},\"vertices\":{},\"ratio\":{},\"metric\":{},\"seed\":{}}}",
                esc(&e.rendered),
                e.edges,
                e.vertices,
                num(e.ratio),
                num(e.metric),
                e.seed
            )
        }
        let mut out = String::from("{");
        out.push_str(&format!("\"budget_edges\":{}", self.budget_edges));
        out.push_str(&format!(",\"target\":\"{}\"", esc(&self.target.render())));
        out.push_str(&format!(",\"evaluated\":{}", self.evaluated));
        out.push_str(",\"winner\":");
        match &self.winner {
            Some(w) => out.push_str(&eval_json(w)),
            None => out.push_str("null"),
        }
        out.push_str(",\"frontier\":[");
        for (i, p) in self.frontier.points().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"spec\":\"{}\",\"edges\":{},\"ratio\":{},\"metric\":{}}}",
                esc(&p.rendered),
                p.edges,
                num(p.ratio),
                num(p.metric)
            ));
        }
        out.push_str("]}");
        out
    }

    /// [`TuneOutcome::to_json`] plus a trailing **non-contractual**
    /// `diagnostics` block carrying the execution counters
    /// (`stages_total` / `stages_executed`). Split from `to_json` on
    /// purpose: the counters vary with `SG_THREADS` interleaving, so the
    /// contractual serialization must not contain them (tests compare
    /// `to_json` across cache/thread settings), while humans and
    /// dashboards reading `tune --json` output still get them. Nothing
    /// may assert on this block; its shape can change without notice.
    pub fn to_json_with_diagnostics(&self) -> String {
        let contractual = self.to_json();
        let base = contractual.strip_suffix('}').unwrap_or(&contractual);
        format!(
            "{base},\"diagnostics\":{{\"stages_total\":{},\"stages_executed\":{}}}}}",
            self.stages_total, self.stages_executed
        )
    }
}

/// Every candidate runs with the master seed itself as its pipeline seed.
///
/// Until the session rewiring, each candidate derived a private seed from
/// its rendered spec text. Sharing one seed has two deliberate effects:
/// grid neighbors now compare under *common random numbers* (a paired
/// comparison — parameter differences are not confounded with RNG
/// differences), and chain prefixes become shareable through the
/// [`StageCache`] (stage `i`'s seed is positional in the chain, so two
/// specs agreeing on a prefix agree on its stage seeds). Still a pure
/// function of the config — re-running the winner standalone with
/// [`Evaluated::seed`] reproduces the tuner's numbers exactly.
fn evaluate(
    session: &SgSession,
    handle: &sg_core::GraphHandle,
    objective: &Objective,
    seed: u64,
    spec: &PipelineSpec,
) -> Option<(Evaluated, usize)> {
    let rendered = spec.render();
    let run = session.run(handle, spec, seed).ok()?;
    let metric = objective.score_parts(&run.graph, run.vertex_mapping.as_deref().map(|m| &m[..]));
    let executed = run.stages_executed();
    Some((
        Evaluated {
            spec: spec.clone(),
            rendered,
            edges: run.graph.num_edges(),
            vertices: run.graph.num_vertices(),
            ratio: run.compression_ratio(),
            metric,
            seed,
        },
        executed,
    ))
}

/// Total order used both to pick refinement survivors and the winner:
/// feasible candidates first (smallest output, then most accurate);
/// infeasible ones by accuracy (so refinement pulls toward feasibility);
/// rendered spec as the final deterministic tie-break.
fn rank(a: &Evaluated, b: &Evaluated, cfg: &TuneConfig) -> std::cmp::Ordering {
    match (a.feasible(cfg), b.feasible(cfg)) {
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (true, true) => a
            .edges
            .cmp(&b.edges)
            .then(a.metric.total_cmp(&b.metric))
            .then_with(|| a.rendered.cmp(&b.rendered)),
        (false, false) => a
            .metric
            .total_cmp(&b.metric)
            .then(a.edges.cmp(&b.edges))
            .then_with(|| a.rendered.cmp(&b.rendered)),
    }
}

/// Runs the search: screen every (chain, coarse grid) candidate, refine
/// survivors for `cfg.rounds` rounds, re-validate the winner with a fresh
/// run, and return the frontier + winner.
///
/// The registry is taken as an `Arc` because evaluation runs through a
/// shared [`SgSession`] (whose stage cache lets grid neighbors reuse
/// chain prefixes); the session holds a reference for the whole run.
///
/// Errors on invalid configuration (unknown scheme names, zero-sized
/// search, a round-0 cross product beyond `max_candidates`) and on winner
/// re-validation mismatch (which would indicate a determinism bug —
/// pipelines are pure functions of `(graph, spec, seed)`).
pub fn tune(
    g: &CsrGraph,
    registry: &Arc<SchemeRegistry>,
    cfg: &TuneConfig,
) -> Result<TuneOutcome, String> {
    if cfg.max_depth == 0 || cfg.grid == 0 || cfg.keep == 0 {
        return Err("max_depth, grid, and keep must all be at least 1".to_string());
    }
    let names: Vec<String> = match &cfg.schemes {
        Some(list) => {
            let mut names: Vec<String> = list.clone();
            names.sort();
            names.dedup();
            for name in &names {
                if !registry.contains(name) {
                    let known: Vec<&str> = registry.names().collect();
                    return Err(format!("unknown scheme '{name}' (known: {})", known.join(", ")));
                }
            }
            names
        }
        None => registry.names().map(String::from).collect(),
    };
    if names.is_empty() {
        return Err("no schemes to search over".to_string());
    }

    // Enforce the candidate cap *arithmetically* before materializing
    // anything: the round-0 count is Σ_{d=1..depth} (Σ per-scheme grid
    // sizes)^d, which explodes long before the Vec would finish allocating
    // at high --depth (11 schemes × grid 3 × depth 6 is ~10^9 specs).
    let per_stage: u128 = names
        .iter()
        .map(|n| if crate::candidates::axis_for(n).is_some() { cfg.grid as u128 } else { 1 })
        .sum();
    let mut round0: u128 = 0;
    let mut power: u128 = 1;
    for _ in 0..cfg.max_depth {
        power = power.saturating_mul(per_stage);
        round0 = round0.saturating_add(power);
    }
    if round0 > cfg.max_candidates as u128 {
        return Err(format!(
            "round-0 search space has {round0} candidates (cap {}); lower --depth/--grid or \
             pass --schemes to narrow the chain alphabet",
            cfg.max_candidates
        ));
    }

    let objective = Objective::new(g, cfg.target.metric);
    let chains = enumerate_chains(&names, cfg.max_depth);
    let mut batch = initial_candidates(&chains, cfg.grid);
    debug_assert_eq!(batch.len() as u128, round0, "cap arithmetic matches enumeration");
    // Warm-start specs join round 0 after the generated grid (dedup below
    // drops exact repeats); invalid specs fail loudly rather than being
    // silently skipped.
    for spec in &cfg.warm_start {
        spec.build(registry).map_err(|e| format!("warm-start spec '{}': {e}", spec.render()))?;
        batch.push(spec.clone());
    }

    // One shared session: every candidate runs against the same handle
    // with the same seed, so chain prefixes are reused across candidates.
    let catalog = Arc::new(GraphCatalog::new());
    let handle =
        catalog.insert("tune-input", g.clone(), "tune input").expect("fresh catalog has no names");
    let session = SgSession::with_cache(
        catalog,
        Arc::clone(registry),
        Arc::new(StageCache::with_capacity(cfg.cache_bytes)),
    );

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut all: Vec<Evaluated> = Vec::new();
    let mut stages_total = 0usize;
    let mut stages_executed = 0usize;
    for round in 0..=cfg.rounds {
        batch.retain(|spec| seen.insert(spec.render()));
        if batch.is_empty() {
            break;
        }
        // Parallel evaluation; `collect` assembles in input order, so the
        // result is bit-identical at any thread count.
        let evals: Vec<Option<(Evaluated, usize)>> = batch
            .par_iter()
            .map(|spec| evaluate(&session, &handle, &objective, cfg.seed, spec))
            .collect();
        for (evaluated, executed) in evals.into_iter().flatten() {
            stages_total += evaluated.spec.len();
            stages_executed += executed;
            all.push(evaluated);
        }
        if round == cfg.rounds {
            break;
        }
        let mut order: Vec<usize> = (0..all.len()).collect();
        order.sort_by(|&a, &b| rank(&all[a], &all[b], cfg));
        batch = order
            .iter()
            .take(cfg.keep)
            .flat_map(|&i| refine(&all[i].spec, round + 1, cfg.grid))
            .collect();
    }

    let winner = all.iter().min_by(|a, b| rank(a, b, cfg)).filter(|e| e.feasible(cfg)).cloned();
    if let Some(w) = &winner {
        // Fresh standalone run of the winning spec through the *cold*
        // `Pipeline::apply` path (no session, no cache): the determinism
        // contract says it must reproduce the tuner's numbers exactly, and
        // going cold cross-checks the session executor against the classic
        // one.
        let fresh = w
            .spec
            .build(registry)
            .map_err(|e| format!("winner '{}' failed to rebuild: {e}", w.rendered))?
            .apply(g, w.seed);
        let fresh_metric = objective.score(&fresh.result);
        if fresh.result.graph.num_edges() != w.edges || fresh_metric.to_bits() != w.metric.to_bits()
        {
            return Err(format!(
                "winner '{}' failed re-validation: {} edges / metric {} vs fresh {} / {}",
                w.rendered,
                w.edges,
                w.metric,
                fresh.result.graph.num_edges(),
                fresh_metric
            ));
        }
    }

    let frontier = ParetoFront::from_points(
        all.iter()
            .map(|e| ParetoPoint {
                spec: e.spec.clone(),
                rendered: e.rendered.clone(),
                edges: e.edges,
                ratio: e.ratio,
                metric: e.metric,
            })
            .collect(),
    );
    Ok(TuneOutcome {
        frontier,
        winner,
        evaluated: all.len(),
        budget_edges: cfg.budget_edges,
        target: cfg.target,
        stages_total,
        stages_executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::MetricKind;
    use sg_graph::generators;

    fn small_cfg(budget: usize, max: f64) -> TuneConfig {
        let target = Target { metric: MetricKind::DegreeL1, max };
        let mut cfg = TuneConfig::new(budget, target, 7);
        cfg.schemes = Some(vec!["uniform".into(), "lowdeg".into(), "spanner".into()]);
        cfg.max_depth = 2;
        cfg.rounds = 1;
        cfg.keep = 4;
        cfg
    }

    fn registry() -> Arc<SchemeRegistry> {
        Arc::new(SchemeRegistry::with_defaults())
    }

    #[test]
    fn finds_a_feasible_winner_and_validates_it() {
        let g = generators::barabasi_albert(400, 4, 1);
        let registry = registry();
        let cfg = small_cfg(g.num_edges() * 3 / 4, 1.0);
        let out = tune(&g, &registry, &cfg).expect("search runs");
        let w = out.winner.expect("generous target is feasible");
        assert!(w.edges <= cfg.budget_edges);
        assert!(w.metric <= cfg.target.max);
        assert!(!out.frontier.is_empty());
        assert!(out.evaluated > 0);

        // The winner must hold up under a fully standalone re-run with
        // its reported seed (which is the master seed).
        assert_eq!(w.seed, cfg.seed);
        let pipeline = w.spec.build(&registry).expect("builds");
        let fresh = pipeline.apply(&g, w.seed);
        assert_eq!(fresh.result.graph.num_edges(), w.edges);
    }

    #[test]
    fn shared_prefixes_are_reused_across_candidates() {
        let g = generators::barabasi_albert(300, 3, 4);
        let registry = registry();
        let mut cfg = small_cfg(g.num_edges(), 1.0);
        cfg.max_depth = 2;
        let out = tune(&g, &registry, &cfg).expect("runs");
        assert!(out.stages_total > 0);
        assert!(
            out.stages_executed < out.stages_total,
            "two-stage chains share single-stage prefixes; {} executed of {}",
            out.stages_executed,
            out.stages_total
        );
        // Disabling the cache executes everything, with identical results.
        let mut cold = cfg.clone();
        cold.cache_bytes = 0;
        let cold_out = tune(&g, &registry, &cold).expect("cold runs");
        assert_eq!(cold_out.stages_executed, cold_out.stages_total);
        assert_eq!(cold_out.to_json(), out.to_json(), "cache is invisible in the outcome");
    }

    #[test]
    fn impossible_targets_are_reported_infeasible() {
        let g = generators::erdos_renyi(200, 800, 2);
        // Budget of 0 edges with a 0.0-distortion requirement: nothing can
        // satisfy both on a connected-ish graph.
        let mut cfg = small_cfg(0, 0.0);
        cfg.rounds = 0;
        let out = tune(&g, &registry(), &cfg).expect("search still runs");
        assert!(out.winner.is_none(), "must report infeasibility, not invent a winner");
        assert!(out.evaluated > 0);
    }

    #[test]
    fn repeated_runs_are_identical() {
        let g = generators::watts_strogatz(300, 4, 0.1, 3);
        let registry = registry();
        let cfg = small_cfg(g.num_edges(), 0.5);
        let a = tune(&g, &registry, &cfg).expect("run a");
        let b = tune(&g, &registry, &cfg).expect("run b");
        assert_eq!(a.to_json(), b.to_json(), "bit-identical runs");
    }

    #[test]
    fn warm_start_seeds_round_zero() {
        let g = generators::barabasi_albert(300, 4, 8);
        let registry = registry();
        let cfg = small_cfg(g.num_edges() * 3 / 4, 1.0);
        let first = tune(&g, &registry, &cfg).expect("first run");
        let frontier_specs: Vec<PipelineSpec> =
            first.frontier.points().iter().map(|p| p.spec.clone()).collect();
        assert!(!frontier_specs.is_empty());

        // Warm-starting with the previous frontier cannot lose: the warm
        // run must find a winner at least as small.
        let mut warm = cfg.clone();
        warm.warm_start = frontier_specs;
        let second = tune(&g, &registry, &warm).expect("warm run");
        let (a, b) = (first.winner.expect("feasible"), second.winner.expect("feasible"));
        assert!(b.edges <= a.edges, "warm start regressed: {} > {}", b.edges, a.edges);

        // Bad warm-start specs fail loudly.
        let mut bad = cfg.clone();
        bad.warm_start = vec![PipelineSpec::parse("nope").expect("syntactically fine")];
        assert!(tune(&g, &registry, &bad).unwrap_err().contains("warm-start"));
    }

    #[test]
    fn config_errors_are_loud() {
        let g = generators::cycle(10);
        let registry = registry();
        let mut cfg = small_cfg(10, 1.0);
        cfg.schemes = Some(vec!["nope".into()]);
        assert!(tune(&g, &registry, &cfg).unwrap_err().contains("unknown scheme"));
        let mut cfg = small_cfg(10, 1.0);
        cfg.max_candidates = 1;
        assert!(tune(&g, &registry, &cfg).unwrap_err().contains("cap"));
        let mut cfg = small_cfg(10, 1.0);
        cfg.keep = 0;
        assert!(tune(&g, &registry, &cfg).is_err());
    }
}
