//! # sg-tune — pipeline auto-tuning for Slim Graph
//!
//! The paper's thesis is that lossy compression schemes must be selected
//! by their *measured* accuracy/size trade-off at a given edge budget, not
//! by construction. This crate closes that loop as a subsystem: given a
//! graph, an edge budget, and a quality target like
//! `pagerank-kl<=0.05`, it searches the space of scheme chains
//! ([`sg_core::PipelineSpec`]s over the [`sg_core::SchemeRegistry`]) and
//! per-stage parameters for the **smallest graph that still meets the
//! target** — "give me the smallest graph whose PageRank KL stays under
//! x bits".
//!
//! The pieces:
//!
//! * [`objective`] — [`MetricKind`]/[`Target`]/[`Objective`]: quality
//!   metrics (PageRank KL, reordered per-vertex triangle ordering,
//!   degree-distribution L1, scalar deltas) as scoring functions, with the
//!   uncompressed baseline computed once and cached for the whole run.
//! * [`candidates`] — deterministic enumeration of chains (bounded depth,
//!   full registry or a user subset) and per-stage parameter grids, plus
//!   grid *refinement*: each round halves the parameter step around the
//!   survivors (the deterministic cousin of successive halving).
//! * [`pareto`] — the non-dominated [`ParetoFront`] over
//!   `(edges, metric)` of everything evaluated.
//! * [`search`] — the loop: screen, refine, pick the winner, and
//!   *re-validate* it with a fresh standalone run.
//!
//! ## Determinism
//!
//! A tuning run is a pure function of `(graph, TuneConfig)`. Candidate
//! order is fixed by enumeration; every candidate runs with the master
//! seed as its pipeline seed (common random numbers — and the key that
//! lets grid neighbors share chain prefixes through the session's
//! [`sg_core::StageCache`]); candidates are evaluated in parallel through
//! the rayon shim, whose `collect` assembles results in input order, and
//! cache hits are bit-identical to cold runs. Frontier, winner, and every
//! reported float are bit-identical at any `SG_THREADS` (pinned by
//! `tests/tune_determinism.rs`). The only interleaving-dependent outputs
//! are the [`TuneOutcome::stages_executed`] perf counters, which are
//! excluded from the JSON rendering.
//!
//! ## Warm starting
//!
//! [`TuneConfig::warm_start`] seeds round 0 with extra specs — typically
//! the frontier of a previous run (`slimgraph tune --warm-start
//! frontier.json` parses a prior `--json` outcome). Warm specs are
//! screened and refined like generated candidates, so a warm run can
//! never lose to the run that produced the frontier.
//!
//! ## Example
//!
//! ```
//! use sg_core::SchemeRegistry;
//! use sg_graph::generators;
//! use sg_tune::{tune, MetricKind, Target, TuneConfig};
//! use std::sync::Arc;
//!
//! let g = generators::barabasi_albert(300, 4, 1);
//! let registry = Arc::new(SchemeRegistry::with_defaults());
//! let target = Target { metric: MetricKind::DegreeL1, max: 0.8 };
//! let mut cfg = TuneConfig::new(g.num_edges() * 3 / 4, target, 42);
//! cfg.schemes = Some(vec!["uniform".into(), "spanner".into()]);
//! let outcome = tune(&g, &registry, &cfg).unwrap();
//! if let Some(winner) = &outcome.winner {
//!     // The spec re-runs standalone to exactly these numbers.
//!     assert!(winner.edges <= cfg.budget_edges);
//!     assert!(winner.metric <= target.max);
//! }
//! ```

pub mod candidates;
pub mod objective;
pub mod pareto;
pub mod search;

pub use candidates::{axis_for, enumerate_chains, Axis, Scale};
pub use objective::{MetricKind, Objective, Target};
pub use pareto::{ParetoFront, ParetoPoint};
pub use search::{tune, Evaluated, TuneConfig, TuneOutcome};
