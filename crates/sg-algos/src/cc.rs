//! Connected components.
//!
//! Component preservation is one of the paper's headline invariants: Triangle
//! Reduction and spanners never disconnect a graph, while uniform sampling
//! and summarization can (§6.3, Table 3). Two engines are provided: a
//! sequential union-find sweep and a parallel label-propagation
//! (Shiloach–Vishkin-style hooking with pointer jumping).

use crate::union_find::UnionFind;
use rayon::prelude::*;
use sg_graph::{GraphView, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a components computation.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Component label per vertex (labels are representative vertex ids,
    /// normalized to the minimum id in the component).
    pub labels: Vec<VertexId>,
    /// Number of connected components.
    pub num_components: usize,
}

impl CcResult {
    /// Size of each component, keyed by label.
    pub fn component_sizes(&self) -> rustc_hash::FxHashMap<VertexId, usize> {
        let mut sizes = rustc_hash::FxHashMap::default();
        for &l in &self.labels {
            *sizes.entry(l).or_insert(0) += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn largest_component(&self) -> usize {
        self.component_sizes().values().copied().max().unwrap_or(0)
    }
}

/// Sequential union-find components.
///
/// Edges are visited in canonical (lexicographic) order by walking rows in
/// vertex order and taking each edge at its forward slot — for a raw CSR
/// graph this is exactly the `edge_slice` order, so the union sequence (and
/// thus every intermediate union-find state) is identical across raw and
/// encoded representations.
pub fn connected_components<G: GraphView>(g: &G) -> CcResult {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    let directed = g.is_directed();
    for v in 0..n as VertexId {
        g.cursor(v).for_each(|t| {
            if directed || t > v {
                uf.union(v, t);
            }
        });
    }
    normalize(&mut uf, n)
}

fn normalize(uf: &mut UnionFind, n: usize) -> CcResult {
    // Normalize labels to the minimum vertex id per component so labels are
    // engine-independent and comparable across runs.
    let mut min_label: Vec<VertexId> = (0..n as VertexId).collect();
    for v in 0..n as VertexId {
        let r = uf.find(v) as usize;
        if v < min_label[r] {
            min_label[r] = v;
        }
    }
    let labels: Vec<VertexId> =
        (0..n as VertexId).map(|v| min_label[uf.find(v) as usize]).collect();
    CcResult { num_components: uf.num_components(), labels }
}

/// Parallel label propagation: repeatedly hook each vertex's label to the
/// minimum label in its closed neighborhood until a fixed point.
pub fn connected_components_parallel<G: GraphView>(g: &G) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as VertexId).map(AtomicU32::new).collect();
    loop {
        let changed: usize = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut best = labels[v as usize].load(Ordering::Relaxed);
                g.cursor(v).for_each(|u| {
                    best = best.min(labels[u as usize].load(Ordering::Relaxed));
                });
                if best < labels[v as usize].load(Ordering::Relaxed) {
                    labels[v as usize].store(best, Ordering::Relaxed);
                    1
                } else {
                    0
                }
            })
            .sum();
        if changed == 0 {
            break;
        }
        // Pointer jumping: compress label chains to accelerate convergence.
        (0..n).into_par_iter().for_each(|v| {
            let mut l = labels[v].load(Ordering::Relaxed);
            loop {
                let ll = labels[l as usize].load(Ordering::Relaxed);
                if ll == l {
                    break;
                }
                l = ll;
            }
            labels[v].store(l, Ordering::Relaxed);
        });
    }
    let labels: Vec<VertexId> = labels.into_iter().map(|a| a.into_inner()).collect();
    let mut distinct: Vec<VertexId> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    CcResult { num_components: distinct.len(), labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn two_components() {
        let g = CsrGraph::from_pairs(5, &[(0, 1), (1, 2), (3, 4)]);
        let r = connected_components(&g);
        assert_eq!(r.num_components, 2);
        assert_eq!(r.labels[0], r.labels[2]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_eq!(r.largest_component(), 3);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = CsrGraph::from_pairs(4, &[(0, 1)]);
        let r = connected_components(&g);
        assert_eq!(r.num_components, 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = generators::erdos_renyi(2000, 2500, 4); // sparse -> many comps
        let a = connected_components(&g);
        let b = connected_components_parallel(&g);
        assert_eq!(a.num_components, b.num_components);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_pairs(0, &[]);
        assert_eq!(connected_components(&g).num_components, 0);
    }

    use sg_graph::CsrGraph;
}
