//! Triangle counting and listing.
//!
//! Triangles are the "smallest unit of graph compression" in Triangle
//! Reduction (§4.3): the engine streams every triangle to a kernel instance.
//! Enumeration uses the standard sorted-adjacency intersection with id
//! ordering (`u < v < w`), O(m^{3/2})-class work, parallel over vertices.

use rayon::prelude::*;
use sg_graph::{CsrGraph, EdgeId, GraphView, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};

/// A triangle with its three canonical edge ids. Vertices satisfy
/// `u < v < w`; `e_uv` connects `u`/`v`, etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triangle {
    pub u: VertexId,
    pub v: VertexId,
    pub w: VertexId,
    pub e_uv: EdgeId,
    pub e_vw: EdgeId,
    pub e_uw: EdgeId,
}

impl Triangle {
    /// The three edge ids.
    pub fn edges(&self) -> [EdgeId; 3] {
        [self.e_uv, self.e_vw, self.e_uw]
    }
}

/// Invokes `f` for every triangle whose *smallest* vertex is `u`, in
/// canonical `(u, v, w)` order (ascending `v`, then `w`). This is the per-
/// vertex inner loop of [`for_each_triangle`], exposed so partitioned
/// executors (sg-dist ranks owning a vertex range) can enumerate exactly
/// the triangles they own — each triangle belongs to exactly one vertex.
pub fn for_triangles_at(g: &CsrGraph, u: VertexId, f: &mut impl FnMut(Triangle)) {
    let nu = g.neighbors(u);
    let eu = g.neighbor_edge_ids(u);
    // Position of the first neighbor greater than u.
    let start_u = nu.partition_point(|&x| x <= u);
    for i in start_u..nu.len() {
        let v = nu[i];
        let e_uv = eu[i];
        let nv = g.neighbors(v);
        let ev = g.neighbor_edge_ids(v);
        // Intersect {w in N(u) : w > v} with {w in N(v) : w > v}.
        let mut a = nu.partition_point(|&x| x <= v);
        let mut b = nv.partition_point(|&x| x <= v);
        while a < nu.len() && b < nv.len() {
            match nu[a].cmp(&nv[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    f(Triangle { u, v, w: nu[a], e_uv, e_vw: ev[b], e_uw: eu[a] });
                    a += 1;
                    b += 1;
                }
            }
        }
    }
}

/// Invokes `f` once per triangle, in parallel. `f` must be thread-safe; the
/// visit order is unspecified but the *set* of triangles is deterministic.
pub fn for_each_triangle(g: &CsrGraph, f: impl Fn(Triangle) + Sync) {
    let n = g.num_vertices() as VertexId;
    (0..n).into_par_iter().for_each(|u| {
        let mut emit = |t| f(t);
        for_triangles_at(g, u, &mut emit);
    });
}

/// Total number of triangles `T`.
///
/// Generic over [`GraphView`]: counting needs only sorted target rows, not
/// edge ids, so the intersection runs over [`GraphView::row_into`] slices —
/// borrowed directly from raw CSR, or decoded once per row into per-chunk
/// scratch buffers for encoded graphs.
pub fn count_triangles<G: GraphView>(g: &G) -> u64 {
    let n = g.num_vertices() as VertexId;
    (0..n)
        .into_par_iter()
        .fold(
            || (0u64, Vec::new(), Vec::new()),
            |(mut count, mut scratch_u, mut scratch_v), u| {
                let nu = g.row_into(u, &mut scratch_u);
                let start_u = nu.partition_point(|&x| x <= u);
                for i in start_u..nu.len() {
                    let v = nu[i];
                    let nv = g.row_into(v, &mut scratch_v);
                    // Intersect {w in N(u) : w > v} with {w in N(v) : w > v}.
                    let mut a = nu.partition_point(|&x| x <= v);
                    let mut b = nv.partition_point(|&x| x <= v);
                    while a < nu.len() && b < nv.len() {
                        match nu[a].cmp(&nv[b]) {
                            std::cmp::Ordering::Less => a += 1,
                            std::cmp::Ordering::Greater => b += 1,
                            std::cmp::Ordering::Equal => {
                                count += 1;
                                a += 1;
                                b += 1;
                            }
                        }
                    }
                }
                (count, scratch_u, scratch_v)
            },
        )
        .map(|(count, _, _)| count)
        .sum()
}

/// Number of triangles incident to each vertex (each triangle contributes to
/// all three corners). This is the per-vertex "TC" score whose ordering the
/// reordered-pairs metric inspects (§7.2).
pub fn triangles_per_vertex(g: &CsrGraph) -> Vec<u64> {
    let counts: Vec<AtomicU64> = (0..g.num_vertices()).map(|_| AtomicU64::new(0)).collect();
    for_each_triangle(g, |t| {
        counts[t.u as usize].fetch_add(1, Ordering::Relaxed);
        counts[t.v as usize].fetch_add(1, Ordering::Relaxed);
        counts[t.w as usize].fetch_add(1, Ordering::Relaxed);
    });
    counts.into_iter().map(|a| a.into_inner()).collect()
}

/// Doulion \[156\] approximate triangle count: sparsify with a coin of
/// keep-probability `q`, count triangles there, scale by `1/q^3`. This is
/// the estimator whose accuracy motivates uniform sampling "preserving the
/// triangle count best" (Table 2).
pub fn doulion_estimate(g: &CsrGraph, q: f64, seed: u64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "keep probability must be in (0, 1]");
    let sparse = g.filter_edges(|e| sg_graph::prng::unit_f64(seed ^ 0xd071, e as u64) < q);
    count_triangles(&sparse) as f64 / (q * q * q)
}

/// Collects all triangles into a vector (sorted for determinism). Intended
/// for kernel scheduling at moderate T; counting paths never materialize.
pub fn list_triangles(g: &CsrGraph) -> Vec<Triangle> {
    let out = std::sync::Mutex::new(Vec::new());
    // Thread-local buffers flushed once would be faster; a mutex push per
    // triangle is acceptable at evaluation scale and keeps the code obvious.
    for_each_triangle(g, |t| out.lock().expect("no poisoned lock").push(t));
    let mut v = out.into_inner().expect("no poisoned lock");
    v.par_sort_unstable_by_key(|t| (t.u, t.v, t.w));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn counts_single_triangle() {
        let g = CsrGraph::from_pairs(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(count_triangles(&g), 1);
        let per = triangles_per_vertex(&g);
        assert_eq!(per, vec![1, 1, 1]);
    }

    #[test]
    fn complete_graph_count() {
        // K_6 has C(6,3) = 20 triangles.
        let g = generators::complete(6);
        assert_eq!(count_triangles(&g), 20);
        let per = triangles_per_vertex(&g);
        // Each vertex participates in C(5,2) = 10 triangles.
        assert!(per.iter().all(|&c| c == 10));
    }

    #[test]
    fn bipartite_has_no_triangles() {
        // 4-cycle is triangle-free.
        let g = generators::cycle(4);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn listed_triangles_have_valid_edges() {
        let g = generators::watts_strogatz(200, 4, 0.1, 3);
        let tris = list_triangles(&g);
        assert_eq!(tris.len() as u64, count_triangles(&g));
        for t in &tris {
            assert!(t.u < t.v && t.v < t.w);
            assert_eq!(g.find_edge(t.u, t.v), Some(t.e_uv));
            assert_eq!(g.find_edge(t.v, t.w), Some(t.e_vw));
            assert_eq!(g.find_edge(t.u, t.w), Some(t.e_uw));
        }
    }

    #[test]
    fn doulion_estimates_within_tolerance() {
        let g = generators::planted_triangles(&generators::erdos_renyi(2000, 8000, 9), 4000, 10);
        let exact = count_triangles(&g) as f64;
        let est: f64 = (0..5).map(|s| doulion_estimate(&g, 0.6, s)).sum::<f64>() / 5.0;
        assert!((est - exact).abs() < 0.1 * exact, "est {est} vs exact {exact}");
    }

    #[test]
    fn doulion_q1_is_exact() {
        let g = generators::complete(8);
        assert_eq!(doulion_estimate(&g, 1.0, 3) as u64, count_triangles(&g));
    }

    #[test]
    fn planted_triangles_increase_count() {
        let base = generators::erdos_renyi(500, 700, 1);
        let dense = generators::planted_triangles(&base, 300, 2);
        assert!(count_triangles(&dense) > count_triangles(&base));
    }

    use sg_graph::CsrGraph;
}
