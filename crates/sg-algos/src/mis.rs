//! Maximal independent set.
//!
//! Table 3 tracks how compression inflates the maximum independent set upper
//! bound (ÎS); the harness estimates ÎS with randomized greedy MIS, the
//! standard practical surrogate.

use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, VertexId};

/// Greedy maximal independent set over a pseudo-random vertex order.
pub fn greedy_mis(g: &CsrGraph, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| mix64(seed ^ v as u64));
    let mut blocked = vec![false; n];
    let mut set = Vec::new();
    for v in order {
        if !blocked[v as usize] {
            set.push(v);
            blocked[v as usize] = true;
            for &u in g.neighbors(v) {
                blocked[u as usize] = true;
            }
        }
    }
    set.sort_unstable();
    set
}

/// Best (largest) of `trials` greedy MIS runs.
pub fn best_greedy_mis(g: &CsrGraph, trials: usize, seed: u64) -> Vec<VertexId> {
    (0..trials as u64)
        .map(|t| greedy_mis(g, seed.wrapping_add(t.wrapping_mul(0x517c_c1b7))))
        .max_by_key(|s| s.len())
        .unwrap_or_default()
}

/// Validates independence and maximality.
pub fn is_maximal_independent_set(g: &CsrGraph, set: &[VertexId]) -> bool {
    let n = g.num_vertices();
    let mut member = vec![false; n];
    for &v in set {
        member[v as usize] = true;
    }
    // Independence.
    for (_, u, v) in g.edge_iter() {
        if member[u as usize] && member[v as usize] {
            return false;
        }
    }
    // Maximality: every non-member has a member neighbor.
    for v in 0..n as VertexId {
        if !member[v as usize] && !g.neighbors(v).iter().any(|&u| member[u as usize]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn star_mis_is_leaves_or_hub() {
        let g = generators::star(10);
        let s = greedy_mis(&g, 1);
        assert!(is_maximal_independent_set(&g, &s));
        assert!(s.len() == 1 || s.len() == 9);
    }

    #[test]
    fn complete_graph_mis_is_single() {
        let g = generators::complete(7);
        let s = greedy_mis(&g, 2);
        assert_eq!(s.len(), 1);
        assert!(is_maximal_independent_set(&g, &s));
    }

    #[test]
    fn path_mis() {
        let g = generators::path(5);
        let s = best_greedy_mis(&g, 10, 3);
        assert!(is_maximal_independent_set(&g, &s));
        assert!(s.len() >= 2);
    }

    #[test]
    fn isolated_vertices_always_in_mis() {
        let g = CsrGraph::from_pairs(4, &[(0, 1)]);
        let s = greedy_mis(&g, 4);
        assert!(s.contains(&2));
        assert!(s.contains(&3));
        assert!(is_maximal_independent_set(&g, &s));
    }

    use sg_graph::CsrGraph;
}
