//! PageRank (pull-based, rayon-parallel).
//!
//! PageRank is the paper's canonical "output is a probability distribution"
//! algorithm: Table 5 compares PageRank distributions on original vs
//! compressed graphs with the Kullback-Leibler divergence, so this
//! implementation guarantees the output sums to 1 (dangling mass is
//! redistributed uniformly).

use rayon::prelude::*;
use sg_graph::{GraphView, VertexId};

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (paper/standard default 0.85).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self { damping: 0.85, max_iterations: 100, tolerance: 1e-9 }
    }
}

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Per-vertex rank; a probability distribution (sums to 1).
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 residual.
    pub residual: f64,
}

/// Runs pull-based PageRank. For undirected graphs each edge acts in both
/// directions; for directed graphs the pull uses in-neighbors and
/// out-degrees, with dangling-vertex mass spread uniformly.
///
/// Generic over [`GraphView`]: raw CSR rows iterate borrowed slices, encoded
/// rows decode on the fly — the per-row accumulation order is identical, so
/// both forms produce bit-identical scores.
pub fn pagerank<G: GraphView>(g: &G, cfg: PageRankConfig) -> PageRankResult {
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult { scores: Vec::new(), iterations: 0, residual: 0.0 };
    }
    let inv_n = 1.0 / n as f64;
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let base_teleport = (1.0 - cfg.damping) * inv_n;
    let out_degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < cfg.max_iterations && residual > cfg.tolerance {
        // Mass of dangling vertices (out-degree 0) teleports everywhere.
        let dangling: f64 =
            (0..n).into_par_iter().filter(|&v| out_degree[v] == 0).map(|v| rank[v]).sum();
        let dangling_share = cfg.damping * dangling * inv_n;

        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            let mut pulled = 0.0f64;
            g.in_cursor(v as VertexId)
                .for_each(|u| pulled += rank[u as usize] / out_degree[u as usize] as f64);
            *slot = base_teleport + dangling_share + cfg.damping * pulled;
        });

        residual = rank.par_iter().zip(next.par_iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
    }

    // Normalize defensively (floating-point drift) so callers can treat the
    // result as a distribution.
    let total: f64 = rank.par_iter().sum();
    if total > 0.0 {
        rank.par_iter_mut().for_each(|x| *x /= total);
    }
    PageRankResult { scores: rank, iterations, residual }
}

/// PageRank with default configuration.
pub fn pagerank_default<G: GraphView>(g: &G) -> PageRankResult {
    pagerank(g, PageRankConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;
    use sg_graph::EdgeList;

    #[test]
    fn ranks_sum_to_one() {
        let g = generators::erdos_renyi(200, 800, 1);
        let r = pagerank_default(&g);
        let s: f64 = r.scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!(r.iterations > 1);
    }

    #[test]
    fn symmetric_graph_uniform_ranks() {
        // On a cycle all vertices are equivalent -> uniform distribution.
        let g = generators::cycle(10);
        let r = pagerank_default(&g);
        for &x in &r.scores {
            assert!((x - 0.1).abs() < 1e-6, "rank {x}");
        }
    }

    #[test]
    fn hub_gets_highest_rank() {
        let g = generators::star(20);
        let r = pagerank_default(&g);
        let hub = r.scores[0];
        for &leaf in &r.scores[1..] {
            assert!(hub > leaf);
        }
    }

    #[test]
    fn directed_dangling_mass_handled() {
        // 0 -> 1 -> 2, vertex 2 dangles.
        let el = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        let g = sg_graph::CsrGraph::from_edge_list_directed(el);
        let r = pagerank_default(&g);
        let s: f64 = r.scores.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert!(r.scores[2] > r.scores[0], "sink should outrank source");
    }

    #[test]
    fn empty_graph_ok() {
        let g = sg_graph::CsrGraph::from_pairs(0, &[]);
        let r = pagerank_default(&g);
        assert!(r.scores.is_empty());
    }

    #[test]
    fn converges_on_skewed_graph() {
        let g = generators::rmat_graph500(10, 8, 5);
        let r = pagerank(
            &g,
            PageRankConfig { tolerance: 1e-12, max_iterations: 300, ..Default::default() },
        );
        assert!(r.residual < 1e-10);
    }
}
