//! Minimum spanning tree / forest (Kruskal).
//!
//! MST weight preservation is one of Triangle Reduction's showcase
//! guarantees: removing the *maximum-weight* edge of a triangle never changes
//! the MST weight (§4.3, §6.1 "Others"), verified empirically in E7/E13.

use crate::union_find::UnionFind;
use rayon::prelude::*;
use sg_graph::{CsrGraph, EdgeId};

/// Result of an MST/MSF computation.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// Canonical edge ids of the chosen forest edges.
    pub edges: Vec<EdgeId>,
    /// Total weight of the forest.
    pub total_weight: f64,
    /// Number of trees in the forest (= number of connected components).
    pub num_trees: usize,
}

/// Kruskal's algorithm (works on forests; unweighted edges count weight 1).
pub fn minimum_spanning_forest(g: &CsrGraph) -> MstResult {
    let mut order: Vec<EdgeId> = (0..g.num_edges() as EdgeId).collect();
    // Sort by (weight, id) — the id tiebreak makes the result deterministic.
    order.par_sort_unstable_by(|&a, &b| {
        g.edge_weight(a).total_cmp(&g.edge_weight(b)).then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(g.num_vertices());
    let mut edges = Vec::new();
    let mut total_weight = 0.0f64;
    for e in order {
        let (u, v) = g.edge_endpoints(e);
        if uf.union(u, v) {
            edges.push(e);
            total_weight += g.edge_weight(e) as f64;
            if edges.len() + 1 == g.num_vertices() {
                break; // spanning tree complete
            }
        }
    }
    MstResult { num_trees: uf.num_components(), edges, total_weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;
    use sg_graph::CsrGraph;

    #[test]
    fn weighted_triangle_mst() {
        let g = CsrGraph::from_weighted_pairs(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let r = minimum_spanning_forest(&g);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.total_weight, 3.0);
        assert_eq!(r.num_trees, 1);
    }

    #[test]
    fn unweighted_tree_weight_is_edge_count() {
        let g = generators::grid(5, 5);
        let r = minimum_spanning_forest(&g);
        assert_eq!(r.edges.len(), 24);
        assert_eq!(r.total_weight, 24.0);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = CsrGraph::from_pairs(5, &[(0, 1), (2, 3)]);
        let r = minimum_spanning_forest(&g);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.num_trees, 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn mst_weight_invariant_to_max_triangle_edge_removal() {
        // The invariant TR relies on: dropping the strictly heaviest edge of
        // any triangle leaves MST weight unchanged (cycle property).
        let g = generators::with_random_weights(&generators::complete(12), 1.0, 100.0, 3);
        let before = minimum_spanning_forest(&g).total_weight;
        // Remove the max-weight edge of the triangle (0, 1, 2).
        let tri = [
            g.find_edge(0, 1).expect("edge"),
            g.find_edge(1, 2).expect("edge"),
            g.find_edge(0, 2).expect("edge"),
        ];
        let heaviest = tri
            .into_iter()
            .max_by(|&a, &b| g.edge_weight(a).total_cmp(&g.edge_weight(b)))
            .expect("three edges");
        let h = g.filter_edges(|e| e != heaviest);
        let after = minimum_spanning_forest(&h).total_weight;
        assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let g =
            generators::with_random_weights(&generators::erdos_renyi(200, 800, 1), 1.0, 10.0, 2);
        let a = minimum_spanning_forest(&g);
        let b = minimum_spanning_forest(&g);
        assert_eq!(a.edges, b.edges);
    }
}
