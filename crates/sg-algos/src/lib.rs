//! # sg-algos — GAPBS-equivalent graph algorithms
//!
//! Stage 2 of the Slim Graph pipeline runs graph algorithms over compressed
//! graphs to measure the impact of compression. The paper integrates with the
//! GAP Benchmark Suite and extends it with matchings, spanning trees, and
//! other kernels; this crate is the Rust equivalent, parallelized with rayon.
//!
//! Algorithms (paper Table 1 plus the §3.2 extensions):
//!
//! * [`bfs`] — breadth-first search (parent + depth vectors),
//! * [`sssp`] — single-source shortest paths (Dijkstra and Δ-stepping),
//! * [`pagerank`] — pull-based PageRank producing a probability distribution,
//! * [`cc`] — connected components,
//! * [`tc`] — triangle counting/listing (total, per-vertex, streaming),
//! * [`bc`] — Brandes betweenness centrality (exact or sampled sources),
//! * [`mst`] — minimum spanning tree/forest (Kruskal),
//! * [`matching`] — maximal cardinality matching (greedy, randomized),
//! * [`coloring`] — greedy coloring in degeneracy order (coloring number),
//! * [`kcore`] — core decomposition, degeneracy, arboricity bounds,
//! * [`mis`] — maximal independent set,
//! * [`diameter`] — exact (small graphs) and double-sweep estimates,
//! * [`spanning`] — BFS spanning forests.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod coloring;
pub mod diameter;
pub mod kcore;
pub mod matching;
pub mod mis;
pub mod mst;
pub mod pagerank;
pub mod spanning;
pub mod sssp;
pub mod tc;
pub mod union_find;
