//! Diameter and average path length.
//!
//! Table 3 tracks how compression stretches D (diameter) and P̄ (average
//! path length). Exact all-pairs BFS is quadratic, so larger graphs use the
//! standard double-sweep lower bound and sampled averages — the same
//! methodology approximation frameworks use.

use crate::bfs::{bfs, UNREACHABLE};
use rayon::prelude::*;
use sg_graph::prng::bounded_u64;
use sg_graph::{CsrGraph, VertexId};

/// Exact diameter of the largest component via all-sources BFS (O(nm); keep
/// to small graphs). Returns 0 for empty/edgeless graphs.
pub fn diameter_exact(g: &CsrGraph) -> u32 {
    let n = g.num_vertices();
    (0..n as VertexId).into_par_iter().map(|s| eccentricity(g, s)).max().unwrap_or(0)
}

/// Eccentricity of `s` within its component.
pub fn eccentricity(g: &CsrGraph, s: VertexId) -> u32 {
    bfs(g, s).depth.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest vertex found. Exact on trees, a strong lower bound elsewhere.
pub fn diameter_double_sweep(g: &CsrGraph, start: VertexId) -> u32 {
    let first = bfs(g, start);
    let far = first
        .depth
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    eccentricity(g, far)
}

/// Average shortest-path length over sampled sources (hop distances,
/// unreachable pairs skipped).
pub fn average_path_length_sampled(g: &CsrGraph, samples: usize, seed: u64) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let sources: Vec<VertexId> = (0..samples.min(n) as u64)
        .map(|i| bounded_u64(seed ^ 0xd1a, i, 0, n as u64) as VertexId)
        .collect();
    let (sum, count) = sources
        .par_iter()
        .map(|&s| {
            let r = bfs(g, s);
            let mut sum = 0u64;
            let mut cnt = 0u64;
            for &d in &r.depth {
                if d != UNREACHABLE && d > 0 {
                    sum += d as u64;
                    cnt += 1;
                }
            }
            (sum, cnt)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn path_diameter() {
        let g = generators::path(10);
        assert_eq!(diameter_exact(&g), 9);
        assert_eq!(diameter_double_sweep(&g, 5), 9);
    }

    #[test]
    fn cycle_diameter() {
        let g = generators::cycle(8);
        assert_eq!(diameter_exact(&g), 4);
    }

    #[test]
    fn complete_diameter_one() {
        let g = generators::complete(5);
        assert_eq!(diameter_exact(&g), 1);
        assert_eq!(diameter_double_sweep(&g, 0), 1);
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        let g = generators::erdos_renyi(300, 600, 1);
        assert!(diameter_double_sweep(&g, 0) <= diameter_exact(&g));
    }

    #[test]
    fn average_path_length_on_path() {
        let g = generators::path(3); // distances: 1,2 from 0; 1,1 from 1; 2,1 from 2
        let apl = average_path_length_sampled(&g, 3, 1);
        assert!(apl > 1.0 && apl < 2.0);
    }

    #[test]
    fn edgeless_graph() {
        let g = CsrGraph::from_pairs(5, &[]);
        assert_eq!(diameter_exact(&g), 0);
        assert_eq!(average_path_length_sampled(&g, 3, 1), 0.0);
    }

    use sg_graph::CsrGraph;
}
