//! Betweenness centrality (Brandes' algorithm \[36\]).
//!
//! The paper uses BC as the canonical "output is a vector that imposes a
//! vertex ordering" algorithm — the reordered-pairs metric compares BC
//! orderings before and after compression. Exact BC runs Brandes from every
//! vertex; the sampled variant (as in GAPBS) uses a subset of sources, which
//! is what the evaluation does on larger graphs.

use rayon::prelude::*;
use sg_graph::prng::bounded_u64;
use sg_graph::{CsrGraph, VertexId};

/// Accumulates one source's Brandes contribution into `scores`.
fn brandes_from(g: &CsrGraph, s: VertexId, scores: &mut [f64]) {
    let n = g.num_vertices();
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut depth = vec![-1i32; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    sigma[s as usize] = 1.0;
    depth[s as usize] = 0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = depth[u as usize];
        for &v in g.neighbors(u) {
            if depth[v as usize] < 0 {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
            if depth[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    // Dependency accumulation in reverse BFS order.
    for &w in order.iter().rev() {
        for &v in g.neighbors(w) {
            if depth[v as usize] == depth[w as usize] + 1 {
                delta[w as usize] +=
                    sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
        if w != s {
            scores[w as usize] += delta[w as usize];
        }
    }
}

/// Exact betweenness centrality (all sources). Undirected convention: each
/// pair is counted twice (once per direction), matching Brandes/GAPBS raw
/// scores; relative orderings — what the metrics use — are unaffected.
pub fn betweenness_exact(g: &CsrGraph) -> Vec<f64> {
    betweenness_from_sources(g, (0..g.num_vertices() as VertexId).collect())
}

/// Sampled betweenness from `num_sources` deterministic pseudo-random roots.
pub fn betweenness_sampled(g: &CsrGraph, num_sources: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let sources: Vec<VertexId> = (0..num_sources.min(n) as u64)
        .map(|i| bounded_u64(seed ^ 0xbc, i, 0, n as u64) as VertexId)
        .collect();
    betweenness_from_sources(g, sources)
}

/// Brandes accumulation over an explicit source set.
///
/// Sources are processed in parallel: each split folds its sources into a
/// private score vector (rayon `fold` semantics — the accumulator only ever
/// sees one split's items) and the per-split vectors are merged elementwise
/// by `reduce`. A plain sequential-fold accumulator would silently drop
/// contributions under real splitting, which is why the identity-closure
/// form is load-bearing here.
pub fn betweenness_from_sources(g: &CsrGraph, sources: Vec<VertexId>) -> Vec<f64> {
    let n = g.num_vertices();
    sources
        .par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut acc, &s| {
                brandes_from(g, s, &mut acc);
                acc
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn path_center_has_highest_bc() {
        let g = generators::path(5);
        let bc = betweenness_exact(&g);
        // Vertex 2 lies on the most shortest paths.
        assert!(bc[2] > bc[1] && bc[2] > bc[3]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn path_bc_exact_values() {
        // Undirected path 0-1-2: vertex 1 mediates pairs (0,2) and (2,0).
        let g = generators::path(3);
        let bc = betweenness_exact(&g);
        assert_eq!(bc, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn star_hub_dominates() {
        let g = generators::star(8);
        let bc = betweenness_exact(&g);
        assert!(bc[0] > 0.0);
        for &leaf in &bc[1..] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn degree_one_removal_preserves_bc_of_core() {
        // §4.4: removing degree-1 vertices preserves BC of the remaining
        // high-degree vertices' *relative* standing on shortest paths among
        // themselves; check the simplest instance: a path with a pendant.
        let g = CsrGraph::from_pairs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = betweenness_exact(&g);
        assert!(bc[2] >= bc[1]);
    }

    #[test]
    fn sampled_correlates_with_exact() {
        let g = generators::barabasi_albert(300, 3, 5);
        let exact = betweenness_exact(&g);
        let sampled = betweenness_sampled(&g, 150, 7);
        // Top-exact vertex must rank highly in the sampled scores.
        let top = (0..300).max_by(|&a, &b| exact[a].total_cmp(&exact[b])).expect("nonempty");
        let rank_of_top = (0..300).filter(|&v| sampled[v] > sampled[top]).count();
        assert!(rank_of_top < 30, "top vertex fell to rank {rank_of_top}");
    }

    #[test]
    fn disconnected_graph_ok() {
        let g = CsrGraph::from_pairs(4, &[(0, 1)]);
        let bc = betweenness_exact(&g);
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    use sg_graph::CsrGraph;
}
