//! k-core decomposition, degeneracy ordering and arboricity bounds.
//!
//! Table 3 reasons about the coloring number via arboricity
//! (α ≤ C_G ≤ 2α, §6.1); this module supplies the degeneracy ordering used
//! by greedy coloring and the arboricity lower bound used by the
//! bound-checking harness.

use sg_graph::{CsrGraph, VertexId};

/// Result of the peeling decomposition.
#[derive(Clone, Debug)]
pub struct CoreResult {
    /// Core number per vertex.
    pub core: Vec<u32>,
    /// Degeneracy (maximum core number).
    pub degeneracy: u32,
    /// Vertices in peeling order (non-decreasing core number) — the reverse
    /// of this is the degeneracy ordering used by greedy coloring.
    pub order: Vec<VertexId>,
}

/// Classic O(n + m) bucket-peeling core decomposition (Matula–Beck).
pub fn core_decomposition(g: &CsrGraph) -> CoreResult {
    let n = g.num_vertices();
    if n == 0 {
        return CoreResult { core: Vec::new(), degeneracy: 0, order: Vec::new() };
    }
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin_start[d + 1] += 1;
    }
    for i in 0..=max_deg {
        bin_start[i + 1] += bin_start[i];
    }
    let mut pos = vec![0usize; n];
    let mut order: Vec<VertexId> = vec![0; n];
    {
        let mut cursor = bin_start.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            order[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = order[i];
        let dv = degree[v as usize];
        core[v as usize] = dv as u32;
        degeneracy = degeneracy.max(dv as u32);
        for &u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > dv {
                // Move u one bucket down: swap with first element of its bin.
                let pu = pos[u as usize];
                let first = bin_start[du];
                let wfirst = order[first];
                order.swap(pu, first);
                pos[u as usize] = first;
                pos[wfirst as usize] = pu;
                bin_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
        // Advance the bin boundary past the peeled vertex.
        bin_start[dv] = bin_start[dv].max(i + 1);
    }
    CoreResult { core, degeneracy, order }
}

/// Arboricity lower bound ⌈m(S)/(|S|-1)⌉ using the densest prefix the core
/// decomposition exposes (the whole graph and the maximum core subgraph are
/// both checked). True arboricity is NP-easy via matroids but this bound is
/// all the harness needs.
pub fn arboricity_lower_bound(g: &CsrGraph) -> u32 {
    let n = g.num_vertices();
    if n < 2 {
        return 0;
    }
    let whole = (g.num_edges() as f64 / (n as f64 - 1.0)).ceil() as u32;
    let cores = core_decomposition(&g.clone());
    // Subgraph induced by vertices with maximum core number.
    let kmax = cores.degeneracy;
    let in_core: Vec<bool> = cores.core.iter().map(|&c| c == kmax).collect();
    let core_n = in_core.iter().filter(|&&b| b).count();
    let core_m =
        g.edge_iter().filter(|&(_, u, v)| in_core[u as usize] && in_core[v as usize]).count();
    let core_bound =
        if core_n >= 2 { (core_m as f64 / (core_n as f64 - 1.0)).ceil() as u32 } else { 0 };
    // Degeneracy/2 is also a classic arboricity lower bound.
    whole.max(core_bound).max(cores.degeneracy.div_ceil(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn tree_has_degeneracy_one() {
        let g = generators::path(10);
        let r = core_decomposition(&g);
        assert_eq!(r.degeneracy, 1);
        assert!(r.core.iter().all(|&c| c <= 1));
    }

    #[test]
    fn complete_graph_core() {
        let g = generators::complete(5);
        let r = core_decomposition(&g);
        assert_eq!(r.degeneracy, 4);
        assert!(r.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn cycle_core_two() {
        let g = generators::cycle(7);
        let r = core_decomposition(&g);
        assert_eq!(r.degeneracy, 2);
    }

    #[test]
    fn order_is_permutation() {
        let g = generators::erdos_renyi(300, 900, 2);
        let r = core_decomposition(&g);
        let mut seen = vec![false; 300];
        for &v in &r.order {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn arboricity_of_tree_is_one() {
        let g = generators::path(20);
        assert_eq!(arboricity_lower_bound(&g), 1);
    }

    #[test]
    fn arboricity_of_k5() {
        // α(K5) = ⌈10/4⌉ = 3.
        let g = generators::complete(5);
        assert_eq!(arboricity_lower_bound(&g), 3);
    }
}
