//! Breadth-first search.
//!
//! BFS is the Graph500 kernel and the paper's special-cased accuracy target
//! (§5): its output is the vector of parents in the traversal tree, from
//! which `sg-metrics` derives the critical-edge sets. The parallel variant
//! processes each frontier with rayon and resolves parent races with atomics
//! (any valid parent is acceptable, exactly as in GAPBS).

use rayon::prelude::*;
use sg_graph::types::NO_VERTEX;
use sg_graph::{CsrGraph, GraphView, VertexId};
use std::sync::atomic::{AtomicU32, Ordering};

/// Depth value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a BFS traversal.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Parent of each vertex in the BFS tree (`NO_VERTEX` for the root's
    /// parent and for unreachable vertices).
    pub parent: Vec<VertexId>,
    /// Depth (hop distance) of each vertex; `UNREACHABLE` if not reached.
    pub depth: Vec<u32>,
    /// Number of vertices reached (including the root).
    pub reached: usize,
}

impl BfsResult {
    /// True when `v` was reached from the root.
    pub fn is_reached(&self, v: VertexId) -> bool {
        self.depth[v as usize] != UNREACHABLE
    }
}

/// Graph500-style validation of a BFS tree (the output class §5 says the
/// benchmark checks): every reached non-root vertex must have a reached
/// parent joined by a real edge with depth exactly one less; unreached
/// vertices must have no parent; the root has depth 0.
pub fn validate_bfs_tree(g: &CsrGraph, root: VertexId, r: &BfsResult) -> bool {
    if r.depth.len() != g.num_vertices() || r.parent.len() != g.num_vertices() {
        return false;
    }
    if r.depth[root as usize] != 0 || r.parent[root as usize] != NO_VERTEX {
        return false;
    }
    for v in 0..g.num_vertices() as VertexId {
        if v == root {
            continue;
        }
        match (r.is_reached(v), r.parent[v as usize]) {
            (false, p) => {
                if p != NO_VERTEX {
                    return false;
                }
            }
            (true, p) => {
                if p == NO_VERTEX
                    || !g.has_edge(p, v)
                    || r.depth[p as usize] == UNREACHABLE
                    || r.depth[v as usize] != r.depth[p as usize] + 1
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Sequential BFS from `root`.
pub fn bfs<G: GraphView>(g: &G, root: VertexId) -> BfsResult {
    let n = g.num_vertices();
    let mut parent = vec![NO_VERTEX; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    let mut reached = 1usize;
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        g.cursor(u).for_each(|v| {
            if depth[v as usize] == UNREACHABLE {
                depth[v as usize] = du + 1;
                parent[v as usize] = u;
                reached += 1;
                queue.push_back(v);
            }
        });
    }
    BfsResult { parent, depth, reached }
}

/// Frontier-parallel BFS from `root`. Produces a valid BFS tree (depths are
/// deterministic; parents may differ between runs among equal-depth
/// candidates, as in any parallel BFS).
pub fn bfs_parallel<G: GraphView>(g: &G, root: VertexId) -> BfsResult {
    let n = g.num_vertices();
    let depth_atomic: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    let parent_atomic: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_VERTEX)).collect();
    depth_atomic[root as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![root];
    let mut level = 0u32;
    let mut reached = 1usize;
    let depth_ref = &depth_atomic;
    let parent_ref = &parent_atomic;
    while !frontier.is_empty() {
        level += 1;
        let next: Vec<VertexId> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.cursor(u).filter(move |&v| {
                    // Claim v if still unvisited; the winner sets the parent.
                    let claimed = depth_ref[v as usize]
                        .compare_exchange(UNREACHABLE, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok();
                    if claimed {
                        parent_ref[v as usize].store(u, Ordering::Relaxed);
                    }
                    claimed
                })
            })
            .collect();
        reached += next.len();
        frontier = next;
    }
    BfsResult {
        parent: parent_atomic.into_iter().map(|a| a.into_inner()).collect(),
        depth: depth_atomic.into_iter().map(|a| a.into_inner()).collect(),
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let r = bfs(&g, 0);
        assert_eq!(r.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.parent[4], 3);
        assert_eq!(r.parent[0], NO_VERTEX);
        assert_eq!(r.reached, 5);
    }

    #[test]
    fn bfs_disconnected() {
        let g = CsrGraph::from_pairs(4, &[(0, 1)]);
        let r = bfs(&g, 0);
        assert_eq!(r.reached, 2);
        assert!(!r.is_reached(3));
        assert_eq!(r.depth[3], UNREACHABLE);
    }

    #[test]
    fn parallel_matches_sequential_depths() {
        let g = generators::rmat_graph500(10, 8, 42);
        let seq = bfs(&g, 0);
        let par = bfs_parallel(&g, 0);
        assert_eq!(seq.depth, par.depth);
        assert_eq!(seq.reached, par.reached);
    }

    #[test]
    fn validator_accepts_real_trees_and_rejects_corruption() {
        let g = generators::erdos_renyi(300, 900, 5);
        let mut r = bfs(&g, 0);
        assert!(validate_bfs_tree(&g, 0, &r));
        let rp = bfs_parallel(&g, 0);
        assert!(validate_bfs_tree(&g, 0, &rp));
        // Corrupt a depth.
        if let Some(v) = (1..300).find(|&v| r.is_reached(v)) {
            r.depth[v as usize] += 1;
            assert!(!validate_bfs_tree(&g, 0, &r));
        }
    }

    #[test]
    fn parallel_parents_are_valid_tree() {
        let g = generators::erdos_renyi(500, 2000, 3);
        let r = bfs_parallel(&g, 0);
        for v in 0..500u32 {
            if v != 0 && r.is_reached(v) {
                let p = r.parent[v as usize];
                assert!(g.has_edge(p, v), "parent edge missing for {v}");
                assert_eq!(r.depth[v as usize], r.depth[p as usize] + 1);
            }
        }
    }

    use sg_graph::CsrGraph;
}
