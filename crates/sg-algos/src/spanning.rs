//! BFS spanning trees and forests.
//!
//! The spanner kernel (§4.5.3) replaces every low-diameter cluster by a
//! spanning tree; this module provides the tree machinery, both for whole
//! graphs and restricted to vertex subsets (clusters).

use crate::bfs::bfs;
use sg_graph::types::NO_VERTEX;
use sg_graph::{CsrGraph, EdgeId, VertexId};

/// Spanning forest via BFS from every unvisited vertex: returns the chosen
/// canonical edge ids (n - #components edges).
pub fn spanning_forest(g: &CsrGraph) -> Vec<EdgeId> {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut edges = Vec::new();
    for root in 0..n as VertexId {
        if visited[root as usize] {
            continue;
        }
        let r = bfs(g, root);
        for v in 0..n as VertexId {
            if r.is_reached(v) {
                visited[v as usize] = true;
                let p = r.parent[v as usize];
                if p != NO_VERTEX {
                    edges.push(g.find_edge(p, v).expect("BFS tree edge exists"));
                }
            }
        }
    }
    edges
}

/// BFS spanning tree of the subgraph induced by `members` (a cluster),
/// starting at `members\[0\]`, with membership given by a predicate. Only
/// edges with both endpoints in the cluster are traversed. Returns tree
/// edge ids plus the tree's depth (the low-diameter guarantee spanners rely
/// on). The predicate form avoids allocating an O(n) bitmap per cluster —
/// important when a decomposition yields thousands of clusters.
pub fn cluster_spanning_tree_by(
    g: &CsrGraph,
    members: &[VertexId],
    in_cluster: impl Fn(VertexId) -> bool,
) -> (Vec<EdgeId>, u32) {
    let mut edges = Vec::with_capacity(members.len().saturating_sub(1));
    if members.is_empty() {
        return (edges, 0);
    }
    let mut depth_of = rustc_hash::FxHashMap::default();
    let root = members[0];
    depth_of.insert(root, 0u32);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    let mut max_depth = 0;
    while let Some(u) = queue.pop_front() {
        let du = depth_of[&u];
        let row = g.neighbors(u);
        let eids = g.neighbor_edge_ids(u);
        for (i, &v) in row.iter().enumerate() {
            if in_cluster(v) && !depth_of.contains_key(&v) {
                depth_of.insert(v, du + 1);
                max_depth = max_depth.max(du + 1);
                edges.push(eids[i]);
                queue.push_back(v);
            }
        }
    }
    (edges, max_depth)
}

/// Bitmap-based variant of [`cluster_spanning_tree_by`].
pub fn cluster_spanning_tree(
    g: &CsrGraph,
    members: &[VertexId],
    in_cluster: &[bool],
) -> (Vec<EdgeId>, u32) {
    cluster_spanning_tree_by(g, members, |v| in_cluster[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::connected_components;
    use sg_graph::generators;

    #[test]
    fn forest_size_is_n_minus_components() {
        let g = generators::erdos_renyi(300, 450, 2);
        let cc = connected_components(&g);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 300 - cc.num_components);
    }

    #[test]
    fn forest_is_acyclic_and_spanning() {
        let g = generators::erdos_renyi(200, 800, 3);
        let f = spanning_forest(&g);
        let keep: rustc_hash::FxHashSet<EdgeId> = f.iter().copied().collect();
        let tree = g.filter_edges(|e| keep.contains(&e));
        let cc_tree = connected_components(&tree);
        let cc_full = connected_components(&g);
        assert_eq!(cc_tree.num_components, cc_full.num_components);
        assert_eq!(tree.num_edges(), 200 - cc_full.num_components);
    }

    #[test]
    fn cluster_tree_respects_membership() {
        let g = generators::grid(4, 4);
        let members: Vec<VertexId> = vec![0, 1, 4, 5]; // 2x2 corner block
        let mut in_cluster = vec![false; 16];
        for &v in &members {
            in_cluster[v as usize] = true;
        }
        let (edges, depth) = cluster_spanning_tree(&g, &members, &in_cluster);
        assert_eq!(edges.len(), 3);
        assert!(depth <= 2);
        for &e in &edges {
            let (u, v) = g.edge_endpoints(e);
            assert!(in_cluster[u as usize] && in_cluster[v as usize]);
        }
    }

    #[test]
    fn empty_cluster() {
        let g = generators::path(4);
        let (edges, depth) = cluster_spanning_tree(&g, &[], &[false; 4]);
        assert!(edges.is_empty());
        assert_eq!(depth, 0);
    }
}
