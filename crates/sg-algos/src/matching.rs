//! Maximal cardinality matching.
//!
//! Table 3 bounds how Triangle Reduction shrinks the maximum matching (to no
//! less than 2/3 of its size in expectation); the evaluation approximates
//! M̂C with a randomized greedy maximal matching, which is a 1/2-approximation
//! of the maximum and the standard practical surrogate (the paper extends
//! GAPBS with a matchings kernel).

use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, EdgeId, VertexId};

/// Result of a matching computation.
#[derive(Clone, Debug)]
pub struct MatchingResult {
    /// Chosen edge ids (pairwise vertex-disjoint).
    pub edges: Vec<EdgeId>,
    /// Matched partner per vertex (`None` if unmatched).
    pub mate: Vec<Option<VertexId>>,
}

impl MatchingResult {
    /// Matching cardinality.
    pub fn size(&self) -> usize {
        self.edges.len()
    }
}

/// Greedy maximal matching over a pseudo-random edge order derived from
/// `seed`. Deterministic for a given (graph, seed).
pub fn greedy_matching(g: &CsrGraph, seed: u64) -> MatchingResult {
    let m = g.num_edges();
    let mut order: Vec<EdgeId> = (0..m as EdgeId).collect();
    order.sort_unstable_by_key(|&e| mix64(seed ^ e as u64));
    let mut mate: Vec<Option<VertexId>> = vec![None; g.num_vertices()];
    let mut edges = Vec::new();
    for e in order {
        let (u, v) = g.edge_endpoints(e);
        if mate[u as usize].is_none() && mate[v as usize].is_none() {
            mate[u as usize] = Some(v);
            mate[v as usize] = Some(u);
            edges.push(e);
        }
    }
    MatchingResult { edges, mate }
}

/// Best of `trials` greedy runs — a tighter M̂C estimate for accuracy
/// experiments.
pub fn best_greedy_matching(g: &CsrGraph, trials: usize, seed: u64) -> MatchingResult {
    (0..trials as u64)
        .map(|t| greedy_matching(g, seed.wrapping_add(t.wrapping_mul(0x9e37_79b9))))
        .max_by_key(|r| r.size())
        .unwrap_or_else(|| greedy_matching(g, seed))
}

/// Verifies that a matching is valid and maximal (every unmatched edge has a
/// matched endpoint). Used by tests and the bound-checking harness.
pub fn is_maximal_matching(g: &CsrGraph, r: &MatchingResult) -> bool {
    // Validity: endpoints pair up consistently.
    for &e in &r.edges {
        let (u, v) = g.edge_endpoints(e);
        if r.mate[u as usize] != Some(v) || r.mate[v as usize] != Some(u) {
            return false;
        }
    }
    // Maximality: no edge with two free endpoints.
    for (_, u, v) in g.edge_iter() {
        if r.mate[u as usize].is_none() && r.mate[v as usize].is_none() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn path_matching() {
        let g = generators::path(4); // edges 0-1, 1-2, 2-3
        let r = greedy_matching(&g, 1);
        assert!(r.size() >= 1 && r.size() <= 2);
        assert!(is_maximal_matching(&g, &r));
    }

    #[test]
    fn complete_graph_perfect_matching_possible() {
        let g = generators::complete(6);
        let r = best_greedy_matching(&g, 8, 2);
        assert_eq!(r.size(), 3); // greedy is perfect on K6
        assert!(is_maximal_matching(&g, &r));
    }

    #[test]
    fn star_matches_one_edge() {
        let g = generators::star(10);
        let r = greedy_matching(&g, 3);
        assert_eq!(r.size(), 1);
        assert!(is_maximal_matching(&g, &r));
    }

    #[test]
    fn greedy_is_half_approx_on_random() {
        let g = generators::erdos_renyi(200, 600, 4);
        let r = greedy_matching(&g, 5);
        // Maximal matching >= (max matching)/2 >= (greedy best)/2; sanity only.
        assert!(is_maximal_matching(&g, &r));
        assert!(r.size() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(100, 300, 6);
        assert_eq!(greedy_matching(&g, 9).edges, greedy_matching(&g, 9).edges);
    }
}
