//! Single-source shortest paths on weighted graphs.
//!
//! Two engines: a binary-heap Dijkstra (the reference) and a Δ-stepping
//! variant (the GAPBS SSSP kernel the paper runs; the paper notes that "for
//! some graphs and roots very high p may cause slowdowns; changing Δ can
//! help but needs manual tuning", which is observable here too).

use sg_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distance assigned to unreachable vertices.
pub const INF: f64 = f64::INFINITY;

/// Dijkstra from `source`. Edge weights must be non-negative; unweighted
/// graphs use weight 1 per edge (i.e. BFS distances).
pub fn dijkstra(g: &CsrGraph, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap: BinaryHeap<Reverse<(ordered::F64, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((ordered::F64(0.0), source)));
    while let Some(Reverse((ordered::F64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        let row = g.neighbors(u);
        let eids = g.neighbor_edge_ids(u);
        for (i, &v) in row.iter().enumerate() {
            let w = g.edge_weight(eids[i]) as f64;
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((ordered::F64(nd), v)));
            }
        }
    }
    dist
}

/// Δ-stepping SSSP. `delta` buckets tentative distances; a good default is
/// the average edge weight. Falls back to Dijkstra-equivalent results
/// (asserted by tests), only the work schedule differs.
pub fn delta_stepping(g: &CsrGraph, source: VertexId, delta: f64) -> Vec<f64> {
    assert!(delta > 0.0, "delta must be positive");
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0.0;
    let bucket_of = |d: f64| (d / delta) as usize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new()];
    buckets[0].push(source);
    let mut i = 0usize;
    while i < buckets.len() {
        // Repeatedly relax inside bucket i until it stops refilling
        // (light-edge phase folded together with heavy edges; correct, if
        // slightly more re-relaxation than the classic split).
        while let Some(batch) = {
            let b = std::mem::take(&mut buckets[i]);
            if b.is_empty() {
                None
            } else {
                Some(b)
            }
        } {
            for u in batch {
                let du = dist[u as usize];
                if bucket_of(du) != i {
                    continue; // stale entry
                }
                let row = g.neighbors(u);
                let eids = g.neighbor_edge_ids(u);
                for (idx, &v) in row.iter().enumerate() {
                    let w = g.edge_weight(eids[idx]) as f64;
                    let nd = du + w;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        let b = bucket_of(nd);
                        if b >= buckets.len() {
                            buckets.resize_with(b + 1, Vec::new);
                        }
                        buckets[b].push(v);
                    }
                }
            }
        }
        i += 1;
    }
    dist
}

/// Δ-stepping with a heuristic Δ (average edge weight, or 1 for unweighted).
pub fn delta_stepping_auto(g: &CsrGraph, source: VertexId) -> Vec<f64> {
    let m = g.num_edges().max(1);
    let delta = (g.total_weight() / m as f64).max(1e-6);
    delta_stepping(g, source, delta)
}

/// Average finite distance from `source` (used when summarizing path-length
/// impact of compression).
pub fn average_distance(dist: &[f64]) -> f64 {
    let finite: Vec<f64> = dist.iter().copied().filter(|d| d.is_finite() && *d > 0.0).collect();
    if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

mod ordered {
    /// Total-order wrapper for non-NaN f64 heap keys.
    #[derive(Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("distances are never NaN")
        }
    }
}

/// Convenience: SSSP distances treating the graph as unweighted if needed.
pub fn shortest_path_length(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
    dijkstra(g, u)[v as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn dijkstra_on_weighted_triangle() {
        let g = CsrGraph::from_weighted_pairs(3, &[(0, 1, 5.0), (1, 2, 5.0), (0, 2, 20.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn dijkstra_unweighted_is_bfs() {
        let g = generators::path(6);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = CsrGraph::from_pairs(3, &[(0, 1)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn delta_stepping_matches_dijkstra() {
        let g =
            generators::with_random_weights(&generators::erdos_renyi(300, 1500, 7), 1.0, 10.0, 8);
        let a = dijkstra(&g, 0);
        let b = delta_stepping(&g, 0, 2.0);
        for (x, y) in a.iter().zip(&b) {
            if x.is_finite() {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            } else {
                assert!(y.is_infinite());
            }
        }
    }

    #[test]
    fn delta_stepping_auto_on_grid() {
        let g = generators::with_random_weights(&generators::grid(10, 10), 1.0, 5.0, 9);
        let a = dijkstra(&g, 0);
        let b = delta_stepping_auto(&g, 0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn average_distance_skips_unreachable() {
        assert_eq!(average_distance(&[0.0, 2.0, 4.0, INF]), 3.0);
        assert_eq!(average_distance(&[0.0, INF]), 0.0);
    }

    use sg_graph::CsrGraph;
}
