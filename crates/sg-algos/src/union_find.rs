//! Disjoint-set union with union-by-size and path halving.

use sg_graph::VertexId;

/// A classic DSU over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<VertexId>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as VertexId).collect(), size: vec![1; n], components: n }
    }

    /// Finds the representative of `x`, halving paths along the way.
    pub fn find(&mut self, mut x: VertexId) -> VertexId {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: VertexId) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(2), 3);
    }

    #[test]
    fn empty_dsu() {
        let uf = UnionFind::new(0);
        assert_eq!(uf.num_components(), 0);
    }
}
