//! Greedy vertex coloring.
//!
//! The paper's "coloring number" (Erdős–Hajnal \[65\]) is the fewest colors a
//! greedy coloring achieves over all vertex orderings; the degeneracy
//! ordering achieves degeneracy+1 colors, the standard proxy. Table 3 bounds
//! how compression schemes change this quantity.

use crate::kcore::core_decomposition;
use sg_graph::{CsrGraph, VertexId};

/// Result of a greedy coloring.
#[derive(Clone, Debug)]
pub struct ColoringResult {
    /// Color per vertex (0-based).
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: u32,
}

/// Greedy coloring along an explicit vertex order.
pub fn greedy_coloring_in_order(g: &CsrGraph, order: &[VertexId]) -> ColoringResult {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut colors = vec![u32::MAX; n];
    let mut used: Vec<u32> = Vec::new(); // scratch: colors seen at neighbors
    let mut num_colors = 0u32;
    for &v in order {
        used.clear();
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX {
                used.push(c);
            }
        }
        used.sort_unstable();
        used.dedup();
        // Smallest color not used by any neighbor.
        let mut c = 0u32;
        for &uc in &used {
            if uc == c {
                c += 1;
            } else if uc > c {
                break;
            }
        }
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    ColoringResult { colors, num_colors }
}

/// Greedy coloring in degeneracy order — uses at most degeneracy+1 colors,
/// i.e. at most 2α+1 where α is the arboricity, the bound §6.1 leans on.
pub fn greedy_coloring(g: &CsrGraph) -> ColoringResult {
    let cores = core_decomposition(g);
    let order: Vec<VertexId> = cores.order.iter().rev().copied().collect();
    greedy_coloring_in_order(g, &order)
}

/// Checks that a coloring is proper.
pub fn is_proper_coloring(g: &CsrGraph, colors: &[u32]) -> bool {
    g.edge_iter().all(|(_, u, v)| colors[u as usize] != colors[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn bipartite_two_colors() {
        let g = generators::grid(4, 4);
        let r = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn complete_needs_n_colors() {
        let g = generators::complete(6);
        let r = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 6);
    }

    #[test]
    fn odd_cycle_three_colors() {
        let g = generators::cycle(7);
        let r = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 3);
    }

    #[test]
    fn tree_two_colors() {
        let g = generators::star(15);
        let r = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &r.colors));
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn degeneracy_bound_holds() {
        let g = generators::erdos_renyi(400, 2000, 3);
        let cores = core_decomposition(&g);
        let r = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &r.colors));
        assert!(r.num_colors <= cores.degeneracy + 1);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn wrong_order_length_panics() {
        let g = generators::path(4);
        greedy_coloring_in_order(&g, &[0, 1]);
    }
}
