//! Per-peer byte budgets on catalog and cache footprint.
//!
//! The peer identity is [`crate::net::Stream::peer_id`]: the remote IP
//! for TCP, `"unix"` for unix-domain clients. Two budgets exist, both
//! measured with the system-wide `sg_core::graph_approx_bytes`
//! yardstick and both disabled when 0:
//!
//! - **catalog**: graphs a peer registered (`load` or committed
//!   `upload`) count against it; evicting the graph refunds it. The
//!   book remembers which peer owns each graph name so the refund goes
//!   to the right account regardless of who evicts.
//! - **cache**: each pipeline run charges the peer for the stage
//!   outputs it newly materialized (executed, non-cached stages). The
//!   accounting is deliberately approximate — LRU evictions inside the
//!   stage cache are not refunded — so it bounds *materialization
//!   pressure*, not residency; `evict cache:true` clears the stage
//!   cache and zeroes every peer's cache account with it.

use crate::json::Json;
use crate::proto::{ErrorCode, ProtoError};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Clone, Copy, Default)]
struct Usage {
    catalog_bytes: u64,
    cache_bytes: u64,
    requests: u64,
}

struct Inner {
    clients: BTreeMap<String, Usage>,
    /// graph name → (owning peer, charged bytes), for eviction refunds.
    owners: BTreeMap<String, (String, u64)>,
}

/// The per-peer accounting ledger. Budgets of 0 mean unlimited (usage is
/// still tracked for `stats`).
pub struct QuotaBook {
    catalog_budget: u64,
    cache_budget: u64,
    inner: Mutex<Inner>,
}

impl QuotaBook {
    /// A ledger with the given budgets (0 = unlimited).
    pub fn new(catalog_budget: u64, cache_budget: u64) -> Self {
        Self {
            catalog_budget,
            cache_budget,
            inner: Mutex::new(Inner { clients: BTreeMap::new(), owners: BTreeMap::new() }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counts one served request for `peer`.
    pub fn bump_requests(&self, peer: &str) {
        self.lock().clients.entry(peer.to_string()).or_default().requests += 1;
    }

    /// Rejects early when `peer` registering `declared_bytes` more would
    /// blow its catalog budget (advisory pre-check for upload `begin`;
    /// the binding check is [`QuotaBook::charge_catalog`] at commit).
    pub fn check_catalog_headroom(
        &self,
        peer: &str,
        declared_bytes: u64,
    ) -> Result<(), ProtoError> {
        if self.catalog_budget == 0 {
            return Ok(());
        }
        let used = self.lock().clients.get(peer).map_or(0, |u| u.catalog_bytes);
        if used.saturating_add(declared_bytes) > self.catalog_budget {
            return Err(self.catalog_exceeded(peer, used, declared_bytes));
        }
        Ok(())
    }

    /// Charges `peer` for registering graph `name` at `bytes`; fails
    /// without charging when the catalog budget would be exceeded.
    pub fn charge_catalog(&self, peer: &str, name: &str, bytes: u64) -> Result<(), ProtoError> {
        let mut inner = self.lock();
        let used = inner.clients.get(peer).map_or(0, |u| u.catalog_bytes);
        if self.catalog_budget > 0 && used.saturating_add(bytes) > self.catalog_budget {
            drop(inner);
            return Err(self.catalog_exceeded(peer, used, bytes));
        }
        inner.clients.entry(peer.to_string()).or_default().catalog_bytes += bytes;
        inner.owners.insert(name.to_string(), (peer.to_string(), bytes));
        Ok(())
    }

    /// Refunds the owning peer when graph `name` is evicted.
    pub fn release_graph(&self, name: &str) {
        let mut inner = self.lock();
        if let Some((peer, bytes)) = inner.owners.remove(name) {
            if let Some(usage) = inner.clients.get_mut(&peer) {
                usage.catalog_bytes = usage.catalog_bytes.saturating_sub(bytes);
            }
        }
    }

    /// Rejects pipeline work from a peer whose cache account is full.
    pub fn check_cache(&self, peer: &str) -> Result<(), ProtoError> {
        if self.cache_budget == 0 {
            return Ok(());
        }
        let used = self.lock().clients.get(peer).map_or(0, |u| u.cache_bytes);
        if used >= self.cache_budget {
            return Err(ProtoError::new(
                ErrorCode::QuotaExceeded,
                format!(
                    "cache quota exceeded for {peer}: {used} of {} bytes materialized; \
                     clear with evict cache:true",
                    self.cache_budget
                ),
            ));
        }
        Ok(())
    }

    /// Charges `peer` for stage outputs a run newly materialized.
    pub fn charge_cache(&self, peer: &str, bytes: u64) {
        if bytes > 0 {
            self.lock().clients.entry(peer.to_string()).or_default().cache_bytes += bytes;
        }
    }

    /// Zeroes every peer's cache account (the stage cache was cleared).
    pub fn reset_cache(&self) {
        for usage in self.lock().clients.values_mut() {
            usage.cache_bytes = 0;
        }
    }

    /// Stats-visible per-peer accounts, in peer order.
    pub fn snapshot(&self) -> Vec<Json> {
        self.lock()
            .clients
            .iter()
            .map(|(peer, u)| {
                Json::obj()
                    .with("peer", Json::str(peer.clone()))
                    .with("requests", Json::u64(u.requests))
                    .with("catalog_bytes", Json::u64(u.catalog_bytes))
                    .with("cache_bytes", Json::u64(u.cache_bytes))
            })
            .collect()
    }

    fn catalog_exceeded(&self, peer: &str, used: u64, wanted: u64) -> ProtoError {
        ProtoError::new(
            ErrorCode::QuotaExceeded,
            format!(
                "catalog quota exceeded for {peer}: {used} bytes held, {wanted} more requested, \
                 budget {} bytes; evict a graph to make room",
                self.catalog_budget
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_budget_charges_and_refunds() {
        let book = QuotaBook::new(100, 0);
        book.charge_catalog("a", "g1", 60).expect("fits");
        let err = book.charge_catalog("a", "g2", 50).expect_err("over");
        assert_eq!(err.code, ErrorCode::QuotaExceeded);
        // A different peer has its own budget.
        book.charge_catalog("b", "g3", 90).expect("separate account");
        // Evicting refunds the owner even when someone else evicts.
        book.release_graph("g1");
        book.charge_catalog("a", "g2", 50).expect("room after refund");
        // Failed charges did not leak into the account.
        book.release_graph("g2");
        book.charge_catalog("a", "g4", 100).expect("full budget available");
    }

    #[test]
    fn headroom_precheck_matches_budget() {
        let book = QuotaBook::new(100, 0);
        book.check_catalog_headroom("a", 100).expect("fits");
        assert!(book.check_catalog_headroom("a", 101).is_err());
        book.charge_catalog("a", "g", 40).expect("charge");
        assert!(book.check_catalog_headroom("a", 61).is_err());
        // Unlimited budget never rejects.
        QuotaBook::new(0, 0).check_catalog_headroom("a", u64::MAX).expect("unlimited");
    }

    #[test]
    fn cache_budget_gates_after_the_fact() {
        let book = QuotaBook::new(0, 100);
        book.check_cache("a").expect("empty account");
        book.charge_cache("a", 100);
        assert_eq!(book.check_cache("a").expect_err("full").code, ErrorCode::QuotaExceeded);
        book.check_cache("b").expect("other peers unaffected");
        book.reset_cache();
        book.check_cache("a").expect("cleared");
    }
}
