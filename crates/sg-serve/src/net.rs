//! Transport abstraction: one listener/stream pair covering TCP and unix
//! domain sockets, so the server loop and the blocking client are written
//! once.
//!
//! Addresses are plain strings: `host:port` for TCP, `unix:/path/to.sock`
//! for unix sockets (rejected off unix targets).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// Prefix selecting the unix-socket transport in listen/connect strings.
pub const UNIX_PREFIX: &str = "unix:";

/// A connected byte stream over either transport.
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr` (`host:port` or `unix:/path`).
    pub fn connect(addr: &str) -> io::Result<Stream> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            return Ok(Stream::Unix(UnixStream::connect(path)?));
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets are not available on this platform ({path})"),
            ));
        }
        let stream = TcpStream::connect(addr)?;
        // Request/response lines are tiny; Nagle + delayed ACK would add
        // ~40ms per turn on loopback.
        stream.set_nodelay(true)?;
        Ok(Stream::Tcp(stream))
    }

    /// An independently readable/writable handle to the same connection.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Bounds blocking reads so the server can poll its shutdown flag.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bounds blocking writes so a client that stops draining its receive
    /// buffer cannot pin a worker forever.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Half-closes the write side (FIN, not RST), so a final response line
    /// already in flight survives the close even if the peer writes
    /// afterwards.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Stable identity of the remote peer for quota accounting: the remote
    /// IP for TCP (port excluded — one user opens many connections), the
    /// literal `"unix"` for unix-domain peers (same-host trust domain).
    pub fn peer_id(&self) -> String {
        match self {
            Stream::Tcp(s) => {
                s.peer_addr().map_or_else(|_| "unknown".to_string(), |a| a.ip().to_string())
            }
            #[cfg(unix)]
            Stream::Unix(_) => "unix".to_string(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound accept socket over either transport.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (keeps its path for cleanup and self-wake).
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Binds `addr` (`host:port`, e.g. `127.0.0.1:0` for an ephemeral
    /// port, or `unix:/path`). A stale unix socket file is replaced.
    pub fn bind(addr: &str) -> io::Result<Listener> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                // A leftover socket file from a dead daemon would fail the
                // bind — but unconditionally unlinking would silently
                // strand a *live* daemon. Probe first: only a path nobody
                // answers on is stale and safe to remove.
                if std::path::Path::new(path).exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {path}"),
                        ));
                    }
                    let _ = std::fs::remove_file(path);
                }
                return Ok(Listener::Unix(UnixListener::bind(path)?, path.to_string()));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets are not available on this platform ({path})"),
            ));
        }
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }

    /// The connectable address of this listener (resolved ephemeral port
    /// for TCP, `unix:/path` for unix).
    pub fn local_addr(&self) -> io::Result<String> {
        match self {
            Listener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(format!("{UNIX_PREFIX}{path}")),
        }
    }

    /// Blocks for the next connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true); // small-frame protocol, see connect()
                Stream::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_roundtrip_on_ephemeral_port() {
        let listener = Listener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let mut buf = [0u8; 4];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("echo");
        });
        let mut client = Stream::connect(&addr).expect("connect");
        client.write_all(b"ping").expect("send");
        let mut back = [0u8; 4];
        client.read_exact(&mut back).expect("recv");
        assert_eq!(&back, b"ping");
        server.join().expect("server thread");
    }

    #[cfg(unix)]
    #[test]
    fn binding_over_a_live_unix_socket_is_refused() {
        let dir = std::env::temp_dir().join("sg-serve-net-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("live.sock");
        let addr = format!("unix:{}", path.display());
        let first = Listener::bind(&addr).expect("first bind");
        let err = match Listener::bind(&addr) {
            Err(err) => err,
            Ok(_) => panic!("second bind over a live socket must fail"),
        };
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        assert!(path.exists(), "the live daemon's socket file must survive");
        drop(first);
        // A *stale* file (nobody listening) is replaced silently.
        std::os::unix::net::UnixListener::bind(&path).expect("recreate file");
        // (listener dropped immediately: the file is now stale)
        let rebound = Listener::bind(&addr).expect("stale socket is reclaimed");
        drop(rebound);
    }

    #[cfg(unix)]
    #[test]
    fn unix_roundtrip_and_socket_file_cleanup() {
        let dir = std::env::temp_dir().join("sg-serve-net-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("echo.sock");
        let addr = format!("unix:{}", path.display());
        let listener = Listener::bind(&addr).expect("bind");
        assert_eq!(listener.local_addr().expect("addr"), addr);
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let mut buf = [0u8; 2];
            conn.read_exact(&mut buf).expect("read");
            conn.write_all(&buf).expect("echo");
            // listener drops here
        });
        let mut client = Stream::connect(&addr).expect("connect");
        client.write_all(b"ok").expect("send");
        let mut back = [0u8; 2];
        client.read_exact(&mut back).expect("recv");
        server.join().expect("server thread");
        assert!(!path.exists(), "socket file removed on listener drop");
    }
}
