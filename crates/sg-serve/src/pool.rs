//! The bounded hand-off queue between the acceptor and the session
//! workers.
//!
//! Admission control lives at this seam: the acceptor calls
//! [`ConnQueue::try_push`], which either enqueues the connection for the
//! next free worker or — when `capacity` connections are already waiting
//! — hands it straight back so the acceptor can answer a `busy` error
//! instead of letting work pile up unboundedly. Workers block in
//! [`ConnQueue::pop`] until a connection (or shutdown) arrives, so the
//! daemon's thread count is fixed at `--workers` + the acceptor no
//! matter how hard clients hammer it.

use crate::net::Stream;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner {
    /// Each connection is stamped at admission so the popping worker can
    /// report how long it sat queued (the `serve.queue_wait_ms`
    /// histogram — queue wait and service time are separate tails).
    queue: VecDeque<(Stream, Instant)>,
    closed: bool,
}

/// A bounded MPMC queue of accepted-but-unserved connections.
pub struct ConnQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    /// A queue admitting at most `capacity` waiting connections
    /// (`capacity` is clamped to ≥ 1 so admission is never vacuously
    /// refused).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { queue: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `conn` for the next free worker, or returns it when the
    /// queue is full (admission rejected) or already closed (shutdown).
    pub fn try_push(&self, conn: Stream) -> Result<(), Stream> {
        let mut inner = self.lock();
        if inner.closed || inner.queue.len() >= self.capacity {
            return Err(conn);
        }
        inner.queue.push_back((conn, Instant::now()));
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection, returning it with the time it
    /// spent waiting in the queue; `None` once the queue is closed and
    /// drained (worker shutdown signal).
    pub fn pop(&self) -> Option<(Stream, Duration)> {
        let mut inner = self.lock();
        loop {
            if let Some((conn, admitted)) = inner.queue.pop_front() {
                return Some((conn, admitted.elapsed()));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: queued-but-unserved connections are dropped
    /// (their clients see EOF, the standard shutdown signal) and every
    /// blocked worker wakes up to exit.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.queue.clear();
        drop(inner);
        self.ready.notify_all();
    }

    /// Connections currently waiting for a worker.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Listener;

    /// Builds n real connected streams (the queue holds `Stream`s, so
    /// tests need actual sockets).
    fn streams(n: usize) -> Vec<Stream> {
        let listener = Listener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        (0..n)
            .map(|_| {
                let _client = Stream::connect(&addr).expect("connect");
                listener.accept().expect("accept")
            })
            .collect()
    }

    #[test]
    fn admission_is_bounded_and_fifo_wakeups_work() {
        let queue = ConnQueue::new(2);
        let mut conns = streams(3);
        assert!(queue.try_push(conns.remove(0)).is_ok());
        assert!(queue.try_push(conns.remove(0)).is_ok());
        assert_eq!(queue.depth(), 2);
        // Third is refused and handed back intact.
        assert!(queue.try_push(conns.remove(0)).is_err());
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn close_wakes_blocked_workers_and_refuses_pushes() {
        let queue = std::sync::Arc::new(ConnQueue::new(4));
        let waiter = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        queue.close();
        assert!(waiter.join().expect("join").is_none(), "closed pop yields None");
        let mut conn = streams(1);
        assert!(queue.try_push(conn.remove(0)).is_err(), "closed queue admits nothing");
    }
}
