//! Standard-alphabet base64 for the upload op's chunk frames.
//!
//! The wire protocol is line-delimited JSON, so binary graph bytes must
//! ride inside string fields; base64 is the framing. Implemented here
//! because the build container has no crates registry. Encoding always
//! pads with `=`; decoding is strict — non-alphabet bytes, bad padding,
//! or trailing garbage are errors, never silently skipped (hostile
//! clients exercise this).

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as padded standard base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let word = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        for i in 0..4 {
            if i <= chunk.len() {
                out.push(ALPHABET[(word >> (18 - 6 * i)) as usize & 0x3f] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Decodes padded standard base64; rejects malformed input.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (group, chunk) in bytes.chunks(4).enumerate() {
        let last = group + 1 == bytes.len() / 4;
        let mut word = 0u32;
        let mut pads = 0usize;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                // Padding only in the last group's final positions.
                if !last || i < 2 || chunk[i..].iter().any(|&x| x != b'=') {
                    return Err("misplaced '=' padding".to_string());
                }
                pads += 1;
                0
            } else {
                if pads > 0 {
                    return Err("data after '=' padding".to_string());
                }
                decode_char(c).ok_or_else(|| format!("invalid base64 byte 0x{c:02x}"))?
            };
            word = (word << 6) | u32::from(v);
        }
        let produced = 3 - pads;
        // Reject non-canonical encodings (stray low bits under padding).
        if pads > 0 && word.trailing_zeros() < (6 * pads) as u32 && word != 0 {
            let mask = (1u32 << (6 * pads)) - 1;
            if word & mask != 0 {
                return Err("non-canonical base64 (padding bits set)".to_string());
            }
        }
        for i in 0..produced {
            out.push((word >> (16 - 8 * i)) as u8);
        }
    }
    Ok(out)
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let enc = encode(&data);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(decode(&enc).expect("decodes"), data, "len {len}");
        }
    }

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").expect("decodes"), b"foobar");
    }

    #[test]
    fn hostile_inputs_rejected() {
        for bad in ["Zg=", "Z===", "====", "Zg=a", "Zm9v!b==", "ab", "Zg==Zg=="] {
            assert!(decode(bad).is_err(), "accepted: {bad}");
        }
    }
}
