//! The wire protocol: versioned line-delimited JSON requests/responses.
//!
//! One request per line, one response per line, in order. Every request
//! is a JSON object with an `"op"` field; `"v"` (protocol version,
//! default [`PROTOCOL_VERSION`]) and `"id"` (echoed verbatim into the
//! response) are optional. Responses always carry `"v"` (echoing the
//! request's version), the echoed `"id"` (when given), and `"ok"`;
//! failures add an `"error"` object with a stable machine-readable
//! `code` and a human `message`, plus `retry_after_ms` for `busy`.
//!
//! Version negotiation: this build speaks [`PROTOCOL_VERSION`] and
//! accepts any version down to [`MIN_PROTOCOL_VERSION`]. v2 adds the
//! `upload`, `metrics`, `slowlog`, `shard_run`, and `federation` ops,
//! the `token` envelope field, and the `busy` / `auth-required` /
//! `quota-exceeded` / `frame-too-large` / `timeout` / `digest-mismatch`
//! / `fed-shard-failed` / `fed-digest-mismatch` error codes; v1
//! requests are still served unchanged (they simply cannot name the
//! v2-only ops).
//!
//! The full message schema is documented in `docs/PROTOCOL.md` at the
//! repository root; this module is the single point where request syntax
//! is validated, so the daemon and any embedded consumer agree on it.

use crate::json::Json;

/// Highest protocol version spoken by this build.
pub const PROTOCOL_VERSION: u64 = 2;

/// Oldest protocol version still accepted. Requests carrying `"v"`
/// outside `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` are rejected with
/// code `version`.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/ill-typed fields.
    BadRequest,
    /// Unsupported protocol version.
    Version,
    /// Unknown `"op"` (or an op newer than the request's version).
    UnknownOp,
    /// `"graph"` names nothing in the catalog.
    UnknownGraph,
    /// The pipeline spec failed to parse/validate.
    BadSpec,
    /// Filesystem or socket failure while serving the request.
    Io,
    /// Admission control rejected the connection; retry later.
    Busy,
    /// The daemon requires a `"token"` and none (or a wrong one) came.
    AuthRequired,
    /// The peer's catalog or cache byte budget is exhausted.
    QuotaExceeded,
    /// A request line exceeded the daemon's max frame size.
    FrameTooLarge,
    /// The connection blew its read deadline mid-frame (slow-loris).
    Timeout,
    /// Uploaded bytes hash to a different digest than declared.
    DigestMismatch,
    /// A federation shard failed on every configured worker (death,
    /// timeout, or a worker-side error) after the bounded retry budget.
    FedShardFailed,
    /// A worker's replica digests differently than the coordinator's
    /// graph — the federation would merge shards of different inputs.
    FedDigestMismatch,
}

impl ErrorCode {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Version => "version",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::Io => "io",
            ErrorCode::Busy => "busy",
            ErrorCode::AuthRequired => "auth-required",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::DigestMismatch => "digest-mismatch",
            ErrorCode::FedShardFailed => "fed-shard-failed",
            ErrorCode::FedDigestMismatch => "fed-digest-mismatch",
        }
    }
}

/// A protocol-level failure: code plus human-readable message.
#[derive(Clone, Debug)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
    /// For `busy`: suggested client backoff before reconnecting.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into(), retry_after_ms: None }
    }

    /// A `busy` rejection advising the client to retry after `ms`.
    pub fn busy(ms: u64) -> Self {
        Self {
            code: ErrorCode::Busy,
            message: "all workers busy; retry later".to_string(),
            retry_after_ms: Some(ms),
        }
    }
}

/// One phase of a chunked client-side graph upload (v2).
#[derive(Clone, Debug)]
pub enum UploadPhase {
    /// Open (or resume) an upload slot for `name`.
    Begin {
        /// Total byte length of the graph file being transferred.
        total_bytes: u64,
        /// Expected fnv1a graph digest (hex, as printed by `stats`).
        digest: String,
        /// Storage format of the uploaded bytes (`text`/`bin`/`sgr`),
        /// else inferred from the upload's catalog name.
        format: Option<String>,
    },
    /// Append `data` (base64) at `offset`; out-of-order offsets rejected.
    Chunk {
        /// Byte offset of this chunk within the file.
        offset: u64,
        /// Base64-encoded chunk payload.
        data: String,
    },
    /// All bytes sent: verify digest, load, insert into the catalog.
    Commit,
    /// Drop the partial upload.
    Abort,
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a graph file under a name (load-once).
    Load {
        /// Catalog name.
        name: String,
        /// Server-side path.
        path: String,
        /// Explicit storage format (`text`/`bin`/`sgr`), else inferred.
        format: Option<String>,
        /// Skip the `.sgr` checksum pass (trusted files).
        no_verify: bool,
    },
    /// Chunked client-side graph transfer into the catalog (v2).
    Upload {
        /// Catalog name the finished graph will be registered under.
        name: String,
        /// Which phase of the transfer this request advances.
        phase: UploadPhase,
    },
    /// Run a compression pipeline against a loaded graph.
    Compress {
        /// Catalog name of the input graph.
        graph: String,
        /// Pipeline spec in the CLI syntax.
        spec: String,
        /// Pipeline seed.
        seed: u64,
        /// Server-side path to write the compressed graph to.
        output: Option<String>,
        /// Storage format of `output`.
        output_format: Option<String>,
    },
    /// Compress and report accuracy metrics vs the loaded original.
    Analyze {
        /// Catalog name of the input graph.
        graph: String,
        /// Pipeline spec in the CLI syntax.
        spec: String,
        /// Pipeline seed.
        seed: u64,
    },
    /// Server-wide stats, or structural stats of one graph.
    Stats {
        /// Restrict to one loaded graph.
        graph: Option<String>,
    },
    /// Observability snapshot: every counter, gauge, and latency
    /// histogram the daemon and its libraries recorded (v2).
    Metrics,
    /// The slow-request log: the retained ring of requests whose
    /// service time met the daemon's `--slow-ms` threshold (v2).
    Slowlog,
    /// Compute one federation shard of a single-stage spec against the
    /// full local replica of `graph` (v2). Answered by *worker* daemons;
    /// coordinators fan a `compress`/`analyze` out into these.
    ShardRun {
        /// Catalog name of the replica to shard against.
        graph: String,
        /// Single-stage pipeline spec in the CLI syntax.
        spec: String,
        /// Stage seed (stage 0 of a pipeline run uses the seed verbatim).
        seed: u64,
        /// This request's shard index, `0..shards`.
        shard: usize,
        /// Total shard count of the federated run.
        shards: usize,
    },
    /// Federation topology and worker health of this daemon (v2).
    Federation,
    /// Drop a graph (and its cache entries) and/or clear the stage cache.
    Evict {
        /// Graph to evict.
        graph: Option<String>,
        /// Also/only clear the whole stage cache.
        cache: bool,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Parsed request envelope: the operation plus routing metadata.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The operation.
    pub request: Request,
    /// Client-chosen correlation id, echoed verbatim.
    pub id: Option<Json>,
    /// Protocol version the request was phrased in (echoed in responses).
    pub version: u64,
    /// Auth token, when the client sent one.
    pub token: Option<String>,
}

fn str_field(obj: &Json, key: &str) -> Result<Option<String>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => {
            Err(ProtoError::new(ErrorCode::BadRequest, format!("field '{key}' must be a string")))
        }
    }
}

fn require_str(obj: &Json, key: &str) -> Result<String, ProtoError> {
    str_field(obj, key)?
        .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, format!("missing field '{key}'")))
}

fn bool_field(obj: &Json, key: &str, default: bool) -> Result<bool, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => {
            Err(ProtoError::new(ErrorCode::BadRequest, format!("field '{key}' must be a boolean")))
        }
    }
}

fn u64_field(obj: &Json, key: &str, default: u64) -> Result<u64, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                format!("field '{key}' must be an unsigned integer"),
            )
        }),
    }
}

fn require_u64(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => {
            Err(ProtoError::new(ErrorCode::BadRequest, format!("missing field '{key}'")))
        }
        Some(v) => v.as_u64().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                format!("field '{key}' must be an unsigned integer"),
            )
        }),
    }
}

fn parse_upload(value: &Json) -> Result<Request, ProtoError> {
    let name = require_str(value, "name")?;
    let phase = match require_str(value, "phase")?.as_str() {
        "begin" => UploadPhase::Begin {
            total_bytes: require_u64(value, "total_bytes")?,
            digest: require_str(value, "digest")?,
            format: str_field(value, "format")?,
        },
        "chunk" => UploadPhase::Chunk {
            offset: require_u64(value, "offset")?,
            data: require_str(value, "data")?,
        },
        "commit" => UploadPhase::Commit,
        "abort" => UploadPhase::Abort,
        other => {
            return Err(ProtoError::new(
                ErrorCode::BadRequest,
                format!("unknown upload phase '{other}' (begin/chunk/commit/abort)"),
            ))
        }
    };
    Ok(Request::Upload { name, phase })
}

/// Parses one request line into its envelope.
pub fn parse_request(line: &str) -> Result<Envelope, ProtoError> {
    let value = Json::parse(line)
        .map_err(|e| ProtoError::new(ErrorCode::BadRequest, format!("invalid JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(ProtoError::new(ErrorCode::BadRequest, "request must be a JSON object"));
    }
    let id = value.get("id").cloned();
    let version = u64_field(&value, "v", PROTOCOL_VERSION)?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(ProtoError::new(
            ErrorCode::Version,
            format!(
                "unsupported protocol version {version} \
                 (this daemon speaks {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            ),
        ));
    }
    let token = str_field(&value, "token")?;
    let op = require_str(&value, "op")?;
    let request = match op.as_str() {
        "ping" => Request::Ping,
        "load" => Request::Load {
            name: require_str(&value, "name")?,
            path: require_str(&value, "path")?,
            format: str_field(&value, "format")?,
            no_verify: bool_field(&value, "no_verify", false)?,
        },
        "upload" if version >= 2 => parse_upload(&value)?,
        "upload" => {
            return Err(ProtoError::new(
                ErrorCode::UnknownOp,
                "op 'upload' requires protocol v2 (request declared v1)",
            ))
        }
        "compress" => Request::Compress {
            graph: require_str(&value, "graph")?,
            spec: require_str(&value, "spec")?,
            seed: u64_field(&value, "seed", 42)?,
            output: str_field(&value, "output")?,
            output_format: str_field(&value, "output_format")?,
        },
        "analyze" => Request::Analyze {
            graph: require_str(&value, "graph")?,
            spec: require_str(&value, "spec")?,
            seed: u64_field(&value, "seed", 42)?,
        },
        "stats" => Request::Stats { graph: str_field(&value, "graph")? },
        "metrics" if version >= 2 => Request::Metrics,
        "metrics" => {
            return Err(ProtoError::new(
                ErrorCode::UnknownOp,
                "op 'metrics' requires protocol v2 (request declared v1)",
            ))
        }
        "slowlog" if version >= 2 => Request::Slowlog,
        "slowlog" => {
            return Err(ProtoError::new(
                ErrorCode::UnknownOp,
                "op 'slowlog' requires protocol v2 (request declared v1)",
            ))
        }
        "shard_run" if version >= 2 => {
            let shard = require_u64(&value, "shard")? as usize;
            let shards = require_u64(&value, "shards")? as usize;
            if shards == 0 || shard >= shards {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    format!("shard {shard} out of range for {shards} shards"),
                ));
            }
            Request::ShardRun {
                graph: require_str(&value, "graph")?,
                spec: require_str(&value, "spec")?,
                seed: u64_field(&value, "seed", 42)?,
                shard,
                shards,
            }
        }
        "shard_run" => {
            return Err(ProtoError::new(
                ErrorCode::UnknownOp,
                "op 'shard_run' requires protocol v2 (request declared v1)",
            ))
        }
        "federation" if version >= 2 => Request::Federation,
        "federation" => {
            return Err(ProtoError::new(
                ErrorCode::UnknownOp,
                "op 'federation' requires protocol v2 (request declared v1)",
            ))
        }
        "evict" => {
            let graph = str_field(&value, "graph")?;
            let cache = bool_field(&value, "cache", false)?;
            if graph.is_none() && !cache {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    "evict needs 'graph' and/or 'cache': true",
                ));
            }
            Request::Evict { graph, cache }
        }
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtoError::new(ErrorCode::UnknownOp, format!("unknown op '{other}'")))
        }
    };
    Ok(Envelope { request, id, version, token })
}

/// Starts a success response: `{"v":…,"id":…,"ok":true}` ready for
/// op-specific fields. `version` echoes the request's declared version
/// so v1 clients keep seeing `"v":1`.
pub fn ok_response(version: u64, id: Option<&Json>) -> Json {
    let mut out = Json::obj().with("v", Json::u64(version));
    if let Some(id) = id {
        out = out.with("id", id.clone());
    }
    out.with("ok", Json::Bool(true))
}

/// Builds a failure response.
pub fn error_response(version: u64, id: Option<&Json>, err: &ProtoError) -> Json {
    let mut out = Json::obj().with("v", Json::u64(version));
    if let Some(id) = id {
        out = out.with("id", id.clone());
    }
    let mut error = Json::obj()
        .with("code", Json::str(err.code.name()))
        .with("message", Json::str(err.message.clone()));
    if let Some(ms) = err.retry_after_ms {
        error = error.with("retry_after_ms", Json::u64(ms));
    }
    out.with("ok", Json::Bool(false)).with("error", error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            ("{\"op\":\"ping\"}", "ping"),
            ("{\"op\":\"load\",\"name\":\"g\",\"path\":\"/x.sgr\"}", "load"),
            (
                "{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"begin\",\
                 \"total_bytes\":10,\"digest\":\"abc\"}",
                "upload",
            ),
            (
                "{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"chunk\",\"offset\":0,\"data\":\"\"}",
                "upload",
            ),
            ("{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"commit\"}", "upload"),
            ("{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"abort\"}", "upload"),
            ("{\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"uniform:p=0.5\"}", "compress"),
            ("{\"op\":\"analyze\",\"graph\":\"g\",\"spec\":\"lowdeg\",\"seed\":7}", "analyze"),
            ("{\"op\":\"stats\"}", "stats"),
            ("{\"op\":\"metrics\"}", "metrics"),
            ("{\"op\":\"slowlog\"}", "slowlog"),
            (
                "{\"op\":\"shard_run\",\"graph\":\"g\",\"spec\":\"tr:p=0.5\",\
                 \"shard\":1,\"shards\":4}",
                "shard_run",
            ),
            ("{\"op\":\"federation\"}", "federation"),
            ("{\"op\":\"evict\",\"graph\":\"g\"}", "evict"),
            ("{\"op\":\"evict\",\"cache\":true}", "evict"),
            ("{\"op\":\"shutdown\"}", "shutdown"),
        ];
        for (line, expect) in cases {
            let env = parse_request(line).unwrap_or_else(|e| panic!("{line}: {}", e.message));
            let got = match env.request {
                Request::Ping => "ping",
                Request::Load { .. } => "load",
                Request::Upload { .. } => "upload",
                Request::Compress { .. } => "compress",
                Request::Analyze { .. } => "analyze",
                Request::Stats { .. } => "stats",
                Request::Metrics => "metrics",
                Request::Slowlog => "slowlog",
                Request::ShardRun { .. } => "shard_run",
                Request::Federation => "federation",
                Request::Evict { .. } => "evict",
                Request::Shutdown => "shutdown",
            };
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn defaults_and_ids() {
        let env = parse_request(
            "{\"v\":1,\"id\":\"req-9\",\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"lowdeg\"}",
        )
        .expect("parses");
        assert_eq!(env.id, Some(Json::Str("req-9".into())));
        assert_eq!(env.version, 1);
        assert!(env.token.is_none());
        match env.request {
            Request::Compress { seed, output, .. } => {
                assert_eq!(seed, 42, "seed defaults to 42");
                assert!(output.is_none());
            }
            other => panic!("wrong op: {other:?}"),
        }
        // Numeric ids echo too; omitted "v" means the current version.
        let env = parse_request("{\"id\":7,\"op\":\"ping\"}").expect("parses");
        assert_eq!(env.id, Some(Json::Num("7".into())));
        assert_eq!(env.version, PROTOCOL_VERSION);
        // Tokens ride the envelope, not the op.
        let env = parse_request("{\"op\":\"ping\",\"token\":\"sesame\"}").expect("parses");
        assert_eq!(env.token.as_deref(), Some("sesame"));
    }

    #[test]
    fn version_negotiation() {
        // Both supported versions parse; the envelope records which.
        for v in [1, 2] {
            let env = parse_request(&format!("{{\"v\":{v},\"op\":\"ping\"}}")).expect("parses");
            assert_eq!(env.version, v);
        }
        // Outside the window: stable `version` code.
        for v in [0, 3, 99] {
            let err =
                parse_request(&format!("{{\"v\":{v},\"op\":\"ping\"}}")).expect_err("rejects");
            assert_eq!(err.code, ErrorCode::Version, "v={v}");
        }
        // v2-only ops are invisible to v1 requests.
        let err = parse_request("{\"v\":1,\"op\":\"upload\",\"name\":\"g\",\"phase\":\"commit\"}")
            .expect_err("rejects");
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let err = parse_request("{\"v\":1,\"op\":\"metrics\"}").expect_err("rejects");
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let err = parse_request("{\"v\":1,\"op\":\"slowlog\"}").expect_err("rejects");
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let err = parse_request(
            "{\"v\":1,\"op\":\"shard_run\",\"graph\":\"g\",\"spec\":\"tr\",\
             \"shard\":0,\"shards\":2}",
        )
        .expect_err("rejects");
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let err = parse_request("{\"v\":1,\"op\":\"federation\"}").expect_err("rejects");
        assert_eq!(err.code, ErrorCode::UnknownOp);
    }

    #[test]
    fn rejections_carry_stable_codes() {
        let cases = [
            ("not json", ErrorCode::BadRequest),
            ("[1,2]", ErrorCode::BadRequest),
            ("{\"op\":\"frobnicate\"}", ErrorCode::UnknownOp),
            ("{\"v\":99,\"op\":\"ping\"}", ErrorCode::Version),
            ("{\"op\":\"load\",\"name\":\"g\"}", ErrorCode::BadRequest),
            ("{\"op\":\"compress\",\"graph\":\"g\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"x\",\"seed\":\"x\"}",
                ErrorCode::BadRequest,
            ),
            ("{\"op\":\"evict\"}", ErrorCode::BadRequest),
            ("{\"op\":1}", ErrorCode::BadRequest),
            ("{\"op\":\"upload\",\"name\":\"g\"}", ErrorCode::BadRequest),
            ("{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"sideways\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"upload\",\"name\":\"g\",\"phase\":\"chunk\",\"data\":\"\"}",
                ErrorCode::BadRequest,
            ),
            ("{\"op\":\"ping\",\"token\":7}", ErrorCode::BadRequest),
            ("{\"op\":\"shard_run\",\"graph\":\"g\",\"spec\":\"tr\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"shard_run\",\"graph\":\"g\",\"spec\":\"tr\",\
                 \"shard\":3,\"shards\":2}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"shard_run\",\"graph\":\"g\",\"spec\":\"tr\",\
                 \"shard\":0,\"shards\":0}",
                ErrorCode::BadRequest,
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, code, "{line}: {}", err.message);
        }
    }

    #[test]
    fn responses_envelope_correctly() {
        let id = Json::Str("a".into());
        let ok = ok_response(2, Some(&id)).with("pong", Json::Bool(true));
        assert_eq!(ok.render(), "{\"v\":2,\"id\":\"a\",\"ok\":true,\"pong\":true}");
        // v1 requests get v1-stamped responses.
        let ok = ok_response(1, None);
        assert_eq!(ok.render(), "{\"v\":1,\"ok\":true}");
        let err = error_response(1, None, &ProtoError::new(ErrorCode::UnknownGraph, "no 'g'"));
        assert_eq!(
            err.render(),
            "{\"v\":1,\"ok\":false,\"error\":{\"code\":\"unknown-graph\",\"message\":\"no 'g'\"}}"
        );
        let busy = error_response(2, None, &ProtoError::busy(250));
        assert_eq!(
            busy.render(),
            "{\"v\":2,\"ok\":false,\"error\":{\"code\":\"busy\",\
             \"message\":\"all workers busy; retry later\",\"retry_after_ms\":250}}"
        );
    }
}
