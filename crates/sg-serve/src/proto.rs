//! The wire protocol: versioned line-delimited JSON requests/responses.
//!
//! One request per line, one response per line, in order. Every request
//! is a JSON object with an `"op"` field; `"v"` (protocol version,
//! default [`PROTOCOL_VERSION`]) and `"id"` (echoed verbatim into the
//! response) are optional. Responses always carry `"v"`, the echoed
//! `"id"` (when given), and `"ok"`; failures add an `"error"` object with
//! a stable machine-readable `code` and a human `message`.
//!
//! The full message schema is documented in `docs/PROTOCOL.md` at the
//! repository root; this module is the single point where request syntax
//! is validated, so the daemon and any embedded consumer agree on it.

use crate::json::Json;

/// Protocol version spoken by this build. Versioning is strict-equal: a
/// request carrying any other `"v"` is rejected with code `version` (the
/// protocol has no negotiation — clients match the daemon).
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, missing/ill-typed fields.
    BadRequest,
    /// Unsupported protocol version.
    Version,
    /// Unknown `"op"`.
    UnknownOp,
    /// `"graph"` names nothing in the catalog.
    UnknownGraph,
    /// The pipeline spec failed to parse/validate.
    BadSpec,
    /// Filesystem or socket failure while serving the request.
    Io,
}

impl ErrorCode {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Version => "version",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::Io => "io",
        }
    }
}

/// A protocol-level failure: code plus human-readable message.
#[derive(Clone, Debug)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
}

impl ProtoError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Register a graph file under a name (load-once).
    Load {
        /// Catalog name.
        name: String,
        /// Server-side path.
        path: String,
        /// Explicit storage format (`text`/`bin`/`sgr`), else inferred.
        format: Option<String>,
        /// Skip the `.sgr` checksum pass (trusted files).
        no_verify: bool,
    },
    /// Run a compression pipeline against a loaded graph.
    Compress {
        /// Catalog name of the input graph.
        graph: String,
        /// Pipeline spec in the CLI syntax.
        spec: String,
        /// Pipeline seed.
        seed: u64,
        /// Server-side path to write the compressed graph to.
        output: Option<String>,
        /// Storage format of `output`.
        output_format: Option<String>,
    },
    /// Compress and report accuracy metrics vs the loaded original.
    Analyze {
        /// Catalog name of the input graph.
        graph: String,
        /// Pipeline spec in the CLI syntax.
        spec: String,
        /// Pipeline seed.
        seed: u64,
    },
    /// Server-wide stats, or structural stats of one graph.
    Stats {
        /// Restrict to one loaded graph.
        graph: Option<String>,
    },
    /// Drop a graph (and its cache entries) and/or clear the stage cache.
    Evict {
        /// Graph to evict.
        graph: Option<String>,
        /// Also/only clear the whole stage cache.
        cache: bool,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Parsed request envelope: the operation plus the echoed request id.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The operation.
    pub request: Request,
    /// Client-chosen correlation id, echoed verbatim.
    pub id: Option<Json>,
}

fn str_field(obj: &Json, key: &str) -> Result<Option<String>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => {
            Err(ProtoError::new(ErrorCode::BadRequest, format!("field '{key}' must be a string")))
        }
    }
}

fn require_str(obj: &Json, key: &str) -> Result<String, ProtoError> {
    str_field(obj, key)?
        .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, format!("missing field '{key}'")))
}

fn bool_field(obj: &Json, key: &str, default: bool) -> Result<bool, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => {
            Err(ProtoError::new(ErrorCode::BadRequest, format!("field '{key}' must be a boolean")))
        }
    }
}

fn u64_field(obj: &Json, key: &str, default: u64) -> Result<u64, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadRequest,
                format!("field '{key}' must be an unsigned integer"),
            )
        }),
    }
}

/// Parses one request line into its envelope.
pub fn parse_request(line: &str) -> Result<Envelope, ProtoError> {
    let value = Json::parse(line)
        .map_err(|e| ProtoError::new(ErrorCode::BadRequest, format!("invalid JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(ProtoError::new(ErrorCode::BadRequest, "request must be a JSON object"));
    }
    let id = value.get("id").cloned();
    let version = u64_field(&value, "v", PROTOCOL_VERSION)?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::new(
            ErrorCode::Version,
            format!(
                "unsupported protocol version {version} (this daemon speaks {PROTOCOL_VERSION})"
            ),
        ));
    }
    let op = require_str(&value, "op")?;
    let request = match op.as_str() {
        "ping" => Request::Ping,
        "load" => Request::Load {
            name: require_str(&value, "name")?,
            path: require_str(&value, "path")?,
            format: str_field(&value, "format")?,
            no_verify: bool_field(&value, "no_verify", false)?,
        },
        "compress" => Request::Compress {
            graph: require_str(&value, "graph")?,
            spec: require_str(&value, "spec")?,
            seed: u64_field(&value, "seed", 42)?,
            output: str_field(&value, "output")?,
            output_format: str_field(&value, "output_format")?,
        },
        "analyze" => Request::Analyze {
            graph: require_str(&value, "graph")?,
            spec: require_str(&value, "spec")?,
            seed: u64_field(&value, "seed", 42)?,
        },
        "stats" => Request::Stats { graph: str_field(&value, "graph")? },
        "evict" => {
            let graph = str_field(&value, "graph")?;
            let cache = bool_field(&value, "cache", false)?;
            if graph.is_none() && !cache {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    "evict needs 'graph' and/or 'cache': true",
                ));
            }
            Request::Evict { graph, cache }
        }
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtoError::new(ErrorCode::UnknownOp, format!("unknown op '{other}'")))
        }
    };
    Ok(Envelope { request, id })
}

/// Starts a success response: `{"v":1,"id":…,"ok":true}` ready for
/// op-specific fields.
pub fn ok_response(id: Option<&Json>) -> Json {
    let mut out = Json::obj().with("v", Json::u64(PROTOCOL_VERSION));
    if let Some(id) = id {
        out = out.with("id", id.clone());
    }
    out.with("ok", Json::Bool(true))
}

/// Builds a failure response.
pub fn error_response(id: Option<&Json>, err: &ProtoError) -> Json {
    let mut out = Json::obj().with("v", Json::u64(PROTOCOL_VERSION));
    if let Some(id) = id {
        out = out.with("id", id.clone());
    }
    out.with("ok", Json::Bool(false)).with(
        "error",
        Json::obj()
            .with("code", Json::str(err.code.name()))
            .with("message", Json::str(err.message.clone())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            ("{\"op\":\"ping\"}", "ping"),
            ("{\"op\":\"load\",\"name\":\"g\",\"path\":\"/x.sgr\"}", "load"),
            ("{\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"uniform:p=0.5\"}", "compress"),
            ("{\"op\":\"analyze\",\"graph\":\"g\",\"spec\":\"lowdeg\",\"seed\":7}", "analyze"),
            ("{\"op\":\"stats\"}", "stats"),
            ("{\"op\":\"evict\",\"graph\":\"g\"}", "evict"),
            ("{\"op\":\"evict\",\"cache\":true}", "evict"),
            ("{\"op\":\"shutdown\"}", "shutdown"),
        ];
        for (line, expect) in cases {
            let env = parse_request(line).unwrap_or_else(|e| panic!("{line}: {}", e.message));
            let got = match env.request {
                Request::Ping => "ping",
                Request::Load { .. } => "load",
                Request::Compress { .. } => "compress",
                Request::Analyze { .. } => "analyze",
                Request::Stats { .. } => "stats",
                Request::Evict { .. } => "evict",
                Request::Shutdown => "shutdown",
            };
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn defaults_and_ids() {
        let env = parse_request(
            "{\"v\":1,\"id\":\"req-9\",\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"lowdeg\"}",
        )
        .expect("parses");
        assert_eq!(env.id, Some(Json::Str("req-9".into())));
        match env.request {
            Request::Compress { seed, output, .. } => {
                assert_eq!(seed, 42, "seed defaults to 42");
                assert!(output.is_none());
            }
            other => panic!("wrong op: {other:?}"),
        }
        // Numeric ids echo too.
        let env = parse_request("{\"id\":7,\"op\":\"ping\"}").expect("parses");
        assert_eq!(env.id, Some(Json::Num("7".into())));
    }

    #[test]
    fn rejections_carry_stable_codes() {
        let cases = [
            ("not json", ErrorCode::BadRequest),
            ("[1,2]", ErrorCode::BadRequest),
            ("{\"op\":\"frobnicate\"}", ErrorCode::UnknownOp),
            ("{\"v\":2,\"op\":\"ping\"}", ErrorCode::Version),
            ("{\"op\":\"load\",\"name\":\"g\"}", ErrorCode::BadRequest),
            ("{\"op\":\"compress\",\"graph\":\"g\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"compress\",\"graph\":\"g\",\"spec\":\"x\",\"seed\":\"x\"}",
                ErrorCode::BadRequest,
            ),
            ("{\"op\":\"evict\"}", ErrorCode::BadRequest),
            ("{\"op\":1}", ErrorCode::BadRequest),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, code, "{line}: {}", err.message);
        }
    }

    #[test]
    fn responses_envelope_correctly() {
        let id = Json::Str("a".into());
        let ok = ok_response(Some(&id)).with("pong", Json::Bool(true));
        assert_eq!(ok.render(), "{\"v\":1,\"id\":\"a\",\"ok\":true,\"pong\":true}");
        let err = error_response(None, &ProtoError::new(ErrorCode::UnknownGraph, "no 'g'"));
        assert_eq!(
            err.render(),
            "{\"v\":1,\"ok\":false,\"error\":{\"code\":\"unknown-graph\",\"message\":\"no 'g'\"}}"
        );
    }
}
