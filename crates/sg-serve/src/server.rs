//! The serve loop: a fixed acceptor, a bounded worker pool, and one
//! shared [`SgSession`] answering protocol requests.
//!
//! PR 5's daemon spawned one thread per connection; under a connection
//! storm that meant unbounded threads. This layer is now front-line
//! shaped: the acceptor hands connections to `workers` session threads
//! through a bounded [`ConnQueue`]; when the queue is full new clients
//! get a stable `busy` error (with `retry_after_ms`) on a half-closed
//! socket instead of a thread. Per-connection *frame* deadlines (time
//! from a request's first byte to its newline) kill slow-loris writers,
//! a max-frame-size cap kills oversized requests, and write timeouts
//! kill clients that stop draining responses — while a connection that
//! is merely *idle* between requests is never disconnected.
//!
//! All workers share the session (catalog + registry + stage cache), so
//! a graph loaded by one client serves every client, and chain prefixes
//! cached by one request accelerate the next — with bit-identical
//! results, because pipelines are pure functions of `(graph, spec,
//! seed)`. On top sit three protections for non-loopback deployments:
//! token auth (constant-time compare, refused-at-bind without a token),
//! per-peer byte quotas on catalog and cache footprint, and chunked
//! digest-verified graph upload with disconnect reaping.

use crate::fed::{self, FedConfig};
use crate::json::Json;
use crate::net::{Listener, Stream, UNIX_PREFIX};
use crate::pool::ConnQueue;
use crate::proto::{
    error_response, ok_response, parse_request, Envelope, ErrorCode, ProtoError, Request,
    UploadPhase, PROTOCOL_VERSION,
};
use crate::slowlog::{SlowLog, SlowRecord, DEFAULT_SLOWLOG_CAPACITY, DEFAULT_SLOW_MS};
use crate::upload::UploadRegistry;
use crate::{b64, quota::QuotaBook};
use sg_algos::{cc, pagerank, tc};
use sg_core::{
    GraphCatalog, PipelineSpec, SchemeParams, SchemeRegistry, SessionRun, SgSession, StageCache,
    StageOutcome, StageReport,
};
use sg_graph::CsrGraph;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket-level read timeout: the granularity at which a blocked worker
/// re-checks the shutdown flag and the frame deadline. Distinct from —
/// and much smaller than — the configurable frame deadline
/// (`ServeConfig::read_timeout_ms`).
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// How long a response write may block before the client is declared
/// dead (it stopped draining its receive buffer).
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Configuration of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address: `host:port` (`127.0.0.1:0` = ephemeral port) or
    /// `unix:/path/to.sock`.
    pub listen: String,
    /// Byte budget of the shared stage cache.
    pub cache_bytes: usize,
    /// Emit one JSON event line per request to stdout (the transcript CI
    /// archives).
    pub transcript: bool,
    /// Session worker threads; also the max concurrently served
    /// connections.
    pub workers: usize,
    /// Accepted-but-unserved connections admitted beyond the workers;
    /// when full, new connections are rejected with `busy`.
    pub queue_depth: usize,
    /// Frame deadline: max milliseconds from a request's first byte to
    /// its terminating newline (slow-loris cutoff). Idle connections
    /// (no partial frame buffered) are exempt.
    pub read_timeout_ms: u64,
    /// Max bytes of one request line; longer frames are rejected with
    /// `frame-too-large` and the connection is dropped.
    pub max_frame_bytes: usize,
    /// Shared secret required on every non-`ping` request when set.
    /// Mandatory for non-loopback TCP binds.
    pub token: Option<String>,
    /// Per-peer catalog byte budget (0 = unlimited).
    pub catalog_quota_bytes: u64,
    /// Per-peer cache byte budget (0 = unlimited).
    pub cache_quota_bytes: u64,
    /// How long a disconnected client's partial upload survives for
    /// resumption (0 = reaped with the connection).
    pub upload_grace_ms: u64,
    /// Backoff hint carried by `busy` rejections.
    pub retry_after_ms: u64,
    /// Service-time threshold (ms) above which a request lands in the
    /// slow-request log; `0` logs every request.
    pub slow_ms: u64,
    /// Slow-request records retained (newest kept when full).
    pub slowlog_capacity: usize,
    /// When set, this daemon is a federation *coordinator*: federable
    /// single-stage `compress`/`analyze` requests fan out to the
    /// configured worker daemons as `shard_run` sub-requests (see
    /// [`crate::fed`]). `None` — the default — makes a plain
    /// standalone/worker daemon.
    pub federation: Option<FedConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            cache_bytes: sg_core::cache::DEFAULT_CACHE_BYTES,
            transcript: true,
            workers: 4,
            queue_depth: 8,
            read_timeout_ms: 10_000,
            max_frame_bytes: 4 << 20,
            token: None,
            catalog_quota_bytes: 0,
            cache_quota_bytes: 0,
            upload_grace_ms: 60_000,
            retry_after_ms: 200,
            slow_ms: DEFAULT_SLOW_MS,
            slowlog_capacity: DEFAULT_SLOWLOG_CAPACITY,
            federation: None,
        }
    }
}

/// Content digest of a graph: FNV-1a over the vertex count, the canonical
/// edge list, and (when weighted) the raw weight bits. Two graphs digest
/// equally iff their serialized structure is byte-identical, so clients
/// can verify "the daemon computed exactly what a local run would" without
/// shipping the graph back.
pub fn graph_digest(g: &CsrGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(g.num_vertices() as u64);
    for &(u, v) in g.edge_slice() {
        eat((u64::from(u)) << 32 | u64::from(v));
    }
    if let Some(weights) = g.weight_slice() {
        for &w in weights {
            eat(u64::from(w.to_bits()));
        }
    }
    h
}

/// Compares secrets without an early exit, so response timing does not
/// leak how long a matching prefix was.
fn token_eq(expected: &str, presented: &str) -> bool {
    let (a, b) = (expected.as_bytes(), presented.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Whether `listen` requires token auth: any TCP bind that is not
/// provably loopback (unix sockets are same-host by construction).
fn non_loopback(listen: &str) -> bool {
    if listen.starts_with(UNIX_PREFIX) {
        return false;
    }
    let host = listen.rsplit_once(':').map_or(listen, |(h, _)| h);
    let host = host.trim_start_matches('[').trim_end_matches(']');
    if host == "localhost" {
        return false;
    }
    match host.parse::<std::net::IpAddr>() {
        Ok(ip) => !ip.is_loopback(),
        Err(_) => true, // unresolvable hostname: assume reachable, require auth
    }
}

/// Per-daemon observability: a dedicated [`sg_obs::Registry`] (so
/// concurrent daemons in one process — the integration tests spawn
/// several — don't blend request metrics) plus pre-resolved handles for
/// every hot-path counter. Replaces the hand-rolled `PoolCounters` of
/// PR 6; the `stats` response reads the same numbers from here, and the
/// v2 `metrics` op exposes the whole registry (merged with the
/// process-global one carrying session/cache/pool-shim metrics).
struct ServeMetrics {
    registry: sg_obs::Registry,
    requests: Arc<sg_obs::Counter>,
    errors: Arc<sg_obs::Counter>,
    admitted: Arc<sg_obs::Counter>,
    busy_rejected: Arc<sg_obs::Counter>,
    timeouts: Arc<sg_obs::Counter>,
    frames_rejected: Arc<sg_obs::Counter>,
    auth_failures: Arc<sg_obs::Counter>,
    /// Requests whose service time met the slowlog threshold.
    slow_requests: Arc<sg_obs::Counter>,
    active: Arc<sg_obs::Gauge>,
    peak_active: Arc<sg_obs::Gauge>,
    /// Admission-to-worker-pickup wait per connection.
    queue_wait: Arc<sg_obs::Histogram>,
    /// Request parse+dispatch+render time, all ops pooled (per-op
    /// variants are registered on demand as `serve.service_ms.<op>`).
    service: Arc<sg_obs::Histogram>,
}

impl ServeMetrics {
    fn new() -> ServeMetrics {
        let registry = sg_obs::Registry::new();
        ServeMetrics {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            admitted: registry.counter("serve.admitted"),
            busy_rejected: registry.counter("serve.busy_rejected"),
            timeouts: registry.counter("serve.timeouts"),
            frames_rejected: registry.counter("serve.frames_rejected"),
            auth_failures: registry.counter("serve.auth_failures"),
            slow_requests: registry.counter("serve.slow_requests"),
            active: registry.gauge("serve.active"),
            peak_active: registry.gauge("serve.peak_active"),
            queue_wait: registry.histogram("serve.queue_wait_ms"),
            service: registry.histogram("serve.service_ms"),
            registry,
        }
    }

    /// Records one served request in the pooled and per-op service-time
    /// histograms.
    fn observe_service(&self, op: &str, elapsed: Duration) {
        self.service.observe(elapsed);
        self.registry.histogram(&format!("serve.service_ms.{op}")).observe(elapsed);
    }
}

/// Shared daemon state.
struct ServeState {
    session: SgSession,
    uploads: UploadRegistry,
    quotas: QuotaBook,
    started: Instant,
    next_conn: AtomicU64,
    /// Source of server-generated trace ids (requests whose envelope
    /// carried no client `"id"`).
    next_trace: AtomicU64,
    metrics: ServeMetrics,
    slowlog: SlowLog,
    shutdown: AtomicBool,
    addr: String,
    transcript: bool,
    token: Option<String>,
    read_timeout: Duration,
    max_frame_bytes: usize,
    retry_after_ms: u64,
    workers: usize,
    fed: Option<FedConfig>,
}

impl ServeState {
    /// Wakes the accept loop after the shutdown flag flips (a blocked
    /// `accept` only returns on a connection).
    fn wake_acceptor(&self) {
        let _ = Stream::connect(&self.addr);
    }

    fn log_event(&self, op: &str, ok: bool, elapsed: Duration, detail: &str) {
        if !self.transcript {
            return;
        }
        let mut event = Json::obj()
            .with("event", Json::str("request"))
            .with("op", Json::str(op))
            .with("ok", Json::Bool(ok))
            .with("ms", Json::f64(elapsed.as_secs_f64() * 1e3));
        if !detail.is_empty() {
            event = event.with("detail", Json::str(detail));
        }
        println!("{}", event.render());
    }
}

/// Identity of one connection: the quota peer plus the upload-ownership
/// conn id.
struct ConnCtx {
    conn_id: u64,
    peer: String,
}

/// A bound (but not yet running) daemon. Binding and running are split so
/// callers can learn the resolved ephemeral address before blocking.
pub struct Server {
    listener: Listener,
    queue: ConnQueue,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the configured address and prepares the shared session.
    /// Non-loopback TCP binds are refused unless a token is configured.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        if non_loopback(&cfg.listen) && cfg.token.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("refusing non-loopback bind {} without a token (set --token)", cfg.listen),
            ));
        }
        if cfg.federation.as_ref().is_some_and(|f| f.workers.is_empty()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "coordinator mode needs at least one worker address (set --worker-addr)",
            ));
        }
        let listener = Listener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let session = SgSession::with_cache(
            Arc::new(GraphCatalog::new()),
            Arc::new(SchemeRegistry::with_defaults()),
            Arc::new(StageCache::with_capacity(cfg.cache_bytes)),
        );
        let uploads = UploadRegistry::new(Duration::from_millis(cfg.upload_grace_ms))?;
        Ok(Server {
            listener,
            queue: ConnQueue::new(cfg.queue_depth),
            state: Arc::new(ServeState {
                session,
                uploads,
                quotas: QuotaBook::new(cfg.catalog_quota_bytes, cfg.cache_quota_bytes),
                started: Instant::now(),
                next_conn: AtomicU64::new(1),
                next_trace: AtomicU64::new(1),
                metrics: ServeMetrics::new(),
                slowlog: SlowLog::new(cfg.slow_ms, cfg.slowlog_capacity),
                shutdown: AtomicBool::new(false),
                addr,
                transcript: cfg.transcript,
                token: cfg.token.clone(),
                read_timeout: Duration::from_millis(cfg.read_timeout_ms.max(1)),
                max_frame_bytes: cfg.max_frame_bytes.max(1024),
                retry_after_ms: cfg.retry_after_ms,
                workers: cfg.workers.max(1),
                fed: cfg.federation.clone(),
            }),
        })
    }

    /// The connectable address (the resolved port for `…:0` binds).
    pub fn local_addr(&self) -> &str {
        &self.state.addr
    }

    /// Runs the acceptor + worker pool until a `shutdown` request
    /// arrives. All threads are joined before this returns, so no
    /// request is abandoned mid-flight.
    pub fn run(self) -> std::io::Result<()> {
        let state = &self.state;
        let queue = &self.queue;
        std::thread::scope(|scope| {
            for _ in 0..state.workers {
                scope.spawn(move || worker_loop(state, queue));
            }
            let result = loop {
                let conn = match self.listener.accept() {
                    Ok(conn) => conn,
                    Err(e) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break Ok(());
                        }
                        break Err(e);
                    }
                };
                if state.shutdown.load(Ordering::SeqCst) {
                    break Ok(()); // the wake-up connection, or a late client
                }
                match queue.try_push(conn) {
                    Ok(()) => {}
                    Err(conn) => {
                        state.metrics.busy_rejected.inc();
                        // A rejection write can block on a hostile client;
                        // a short scoped thread keeps the acceptor hot and
                        // is itself bounded by the write timeout.
                        scope.spawn(move || reject_busy(state, conn));
                    }
                }
            };
            // Unblock every worker; queued-but-unserved connections are
            // dropped (their clients see EOF).
            queue.close();
            result
        })
    }
}

/// Writes the `busy` rejection and half-closes, so the response line
/// survives even if the peer was still writing its request.
fn reject_busy(state: &ServeState, stream: Stream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let response = error_response(PROTOCOL_VERSION, None, &ProtoError::busy(state.retry_after_ms));
    let _ = stream
        .write_all(response.render().as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    let _ = stream.shutdown_write();
    // Brief drain: absorb bytes the client already sent so the close does
    // not RST the in-flight response out of its receive buffer.
    let mut sink = [0u8; 4096];
    for _ in 0..4 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// One session worker: serve queued connections until shutdown.
fn worker_loop(state: &ServeState, queue: &ConnQueue) {
    while let Some((conn, waited)) = queue.pop() {
        if state.shutdown.load(Ordering::SeqCst) {
            continue; // drain mode: drop without serving
        }
        let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        state.metrics.admitted.inc();
        state.metrics.queue_wait.observe(waited);
        state.metrics.active.add(1);
        state.metrics.peak_active.max_of(state.metrics.active.get());
        handle_connection(state, conn_id, conn, waited);
        state.metrics.active.sub(1);
        // Partial uploads owned by this connection are orphaned (resumable
        // within the grace period) or reaped, and expired orphans from
        // other connections go with them.
        state.uploads.disconnect(conn_id);
        state.uploads.reap();
    }
}

/// What the framing loop produced.
enum Frame {
    /// One complete request line (newline stripped).
    Line(String),
    /// Clean end of stream (or peer vanished).
    Gone,
    /// The daemon is shutting down.
    Shutdown,
    /// The frame deadline expired with a partial request buffered.
    TimedOut,
    /// The buffered frame exceeded the size cap.
    TooLarge,
}

/// Accumulates bytes until a newline. The *socket* timeout is
/// [`DRAIN_POLL`] (shutdown-flag granularity); the *frame* deadline is
/// `state.read_timeout`, measured from the first buffered byte of the
/// current frame — an idle connection with an empty buffer has no
/// deadline, so slow-but-legal clients are never cut.
fn next_frame(state: &ServeState, stream: &mut Stream, buf: &mut Vec<u8>) -> Frame {
    let mut frame_started = (!buf.is_empty()).then(Instant::now);
    loop {
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if pos > state.max_frame_bytes {
                return Frame::TooLarge;
            }
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            return Frame::Line(text.trim_end_matches('\r').to_string());
        }
        if buf.len() > state.max_frame_bytes {
            return Frame::TooLarge;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return Frame::Shutdown;
        }
        if let Some(started) = frame_started {
            if started.elapsed() >= state.read_timeout {
                return Frame::TimedOut;
            }
        }
        let mut chunk = [0u8; 16 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Frame::Gone,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                frame_started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return Frame::Gone,
        }
    }
}

fn handle_connection(state: &ServeState, conn_id: u64, stream: Stream, queue_wait: Duration) {
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let ctx = ConnCtx { conn_id, peer: stream.peer_id() };
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = stream;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let line = match next_frame(state, &mut reader, &mut buf) {
            Frame::Line(line) => line,
            Frame::Gone | Frame::Shutdown => return,
            Frame::TimedOut => {
                state.metrics.timeouts.inc();
                let err = ProtoError::new(
                    ErrorCode::Timeout,
                    format!(
                        "request frame incomplete after {} ms (deadline is measured from the \
                         frame's first byte)",
                        state.read_timeout.as_millis()
                    ),
                );
                farewell(&mut writer, &error_response(PROTOCOL_VERSION, None, &err));
                return;
            }
            Frame::TooLarge => {
                state.metrics.frames_rejected.inc();
                let err = ProtoError::new(
                    ErrorCode::FrameTooLarge,
                    format!("request frame exceeds {} bytes", state.max_frame_bytes),
                );
                farewell(&mut writer, &error_response(PROTOCOL_VERSION, None, &err));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // A busy client sending back-to-back requests may never hit the
        // poll branch, so re-check the flag per request: once any client
        // asked for shutdown, no connection serves further work.
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        state.metrics.requests.inc();
        state.quotas.bump_requests(&ctx.peer);
        let started = Instant::now();
        let mut req_span = sg_obs::span!("serve.request");
        let (response, meta) = respond(state, &ctx, line.trim());
        let elapsed = started.elapsed();
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        if !ok {
            state.metrics.errors.inc();
        }
        state.metrics.observe_service(&meta.op, elapsed);
        if req_span.is_recording() {
            req_span.arg("op", meta.op.as_str());
            req_span.arg("trace", meta.trace_id.as_str());
            req_span.arg("ok", if ok { "true" } else { "false" });
            if let Some(graph) = &meta.graph {
                req_span.arg("graph", graph.as_str());
            }
            // Cache flags, when the op reports them: how much of the
            // pipeline was served from the stage cache.
            for key in ["stages_cached", "stages_executed"] {
                if let Some(v) = response.get(key).and_then(Json::as_u64) {
                    req_span.arg(key, v.to_string());
                }
            }
        }
        drop(req_span);
        let service_ms = elapsed.as_secs_f64() * 1e3;
        if state.slowlog.qualifies(service_ms) {
            state.metrics.slow_requests.inc();
            state.slowlog.record(SlowRecord {
                seq: 0, // assigned at insert
                op: meta.op.clone(),
                trace_id: meta.trace_id.clone(),
                peer: ctx.peer.clone(),
                graph: meta.graph.clone(),
                ok,
                queue_wait_ms: queue_wait.as_secs_f64() * 1e3,
                service_ms,
                stages_executed: response.get("stages_executed").and_then(Json::as_u64),
                stages_cached: response.get("stages_cached").and_then(Json::as_u64),
                uptime_ms: state.started.elapsed().as_millis() as u64,
            });
        }
        let (op, shutdown) = (meta.op, meta.shutdown);
        state.log_event(&op, ok, elapsed, "");
        let written = writer
            .write_all(response.render().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            state.wake_acceptor();
            return;
        }
        if written.is_err() {
            return;
        }
    }
}

/// Writes one final response and half-closes, for connections being
/// dropped for cause. The half-close (FIN, not RST) plus a brief drain
/// of whatever the client is still sending keeps the error line
/// deliverable: closing with unread bytes pending would RST the
/// response out of the peer's receive buffer.
fn farewell(writer: &mut Stream, response: &Json) {
    let _ = writer
        .write_all(response.render().as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
    let _ = writer.shutdown_write();
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match writer.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// What [`respond`] learned about a request besides its response: the
/// op name (transcript + per-op histograms), the graph it targeted (the
/// request span's `graph` arg), the trace id correlating its spans and
/// slowlog record, and whether it was a shutdown.
struct RespondMeta {
    op: String,
    graph: Option<String>,
    trace_id: String,
    shutdown: bool,
}

/// The graph a request targets, when it names one.
fn request_graph(request: &Request) -> Option<&str> {
    match request {
        Request::Load { name, .. } | Request::Upload { name, .. } => Some(name),
        Request::Compress { graph, .. }
        | Request::Analyze { graph, .. }
        | Request::ShardRun { graph, .. } => Some(graph),
        Request::Stats { graph } | Request::Evict { graph, .. } => graph.as_deref(),
        Request::Ping
        | Request::Metrics
        | Request::Slowlog
        | Request::Federation
        | Request::Shutdown => None,
    }
}

/// The request's trace id: the client-supplied envelope `"id"` (string
/// form) when present, else a fresh server-generated `srv-N`. Purely
/// observational — it tags spans and the slowlog, never the result.
fn trace_id_for(state: &ServeState, id: Option<&Json>) -> String {
    match id {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        Some(Json::Str(_)) | None => {
            format!("srv-{}", state.next_trace.fetch_add(1, Ordering::Relaxed))
        }
        Some(other) => other.render(),
    }
}

/// Parses + authenticates + dispatches one request line.
fn respond(state: &ServeState, ctx: &ConnCtx, line: &str) -> (Json, RespondMeta) {
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(err) => {
            let meta = RespondMeta {
                op: "invalid".to_string(),
                graph: None,
                trace_id: trace_id_for(state, None),
                shutdown: false,
            };
            return (error_response(PROTOCOL_VERSION, None, &err), meta);
        }
    };
    let Envelope { request, id, version, token } = envelope;
    let mut meta = RespondMeta {
        op: op_name(&request).to_string(),
        graph: request_graph(&request).map(str::to_string),
        trace_id: trace_id_for(state, id.as_ref()),
        shutdown: false,
    };
    // From here to the end of dispatch, every span this worker thread
    // opens — session.run, session.stage, anything deeper — carries the
    // request's trace id.
    let _trace_ctx = sg_obs::trace::set_trace_id(&meta.trace_id);
    // Everything except the liveness probe requires the shared secret
    // when one is configured.
    if let Some(expected) = &state.token {
        let presented_ok = token.as_deref().is_some_and(|t| token_eq(expected, t));
        if !presented_ok && !matches!(request, Request::Ping) {
            state.metrics.auth_failures.inc();
            let err = ProtoError::new(
                ErrorCode::AuthRequired,
                "this daemon requires a token (send \"token\" in the request envelope)",
            );
            return (error_response(version, id.as_ref(), &err), meta);
        }
    }
    meta.shutdown = matches!(request, Request::Shutdown);
    let response = match dispatch(state, ctx, request, version, id.as_ref()) {
        Ok(ok) => ok,
        Err(err) => error_response(version, id.as_ref(), &err),
    };
    (response, meta)
}

fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Load { .. } => "load",
        Request::Upload { .. } => "upload",
        Request::Compress { .. } => "compress",
        Request::Analyze { .. } => "analyze",
        Request::ShardRun { .. } => "shard_run",
        Request::Federation => "federation",
        Request::Stats { .. } => "stats",
        Request::Metrics => "metrics",
        Request::Slowlog => "slowlog",
        Request::Evict { .. } => "evict",
        Request::Shutdown => "shutdown",
    }
}

/// Describes a freshly registered graph (shared by `load` and committed
/// `upload` responses).
fn registered_response(
    version: u64,
    id: Option<&Json>,
    handle: &sg_core::GraphHandle,
    loaded: bool,
) -> Json {
    ok_response(version, id)
        .with("name", Json::str(handle.name()))
        .with("graph_id", Json::u64(handle.id().0))
        .with("source", Json::str(handle.source()))
        .with("vertices", Json::u64(handle.graph().num_vertices() as u64))
        .with("edges", Json::u64(handle.graph().num_edges() as u64))
        .with("loaded", Json::Bool(loaded))
}

/// Registers `graph` in the catalog under the peer's catalog quota;
/// rolls the registration back if the peer's budget is blown.
fn insert_with_quota(
    state: &ServeState,
    peer: &str,
    name: &str,
    graph: CsrGraph,
    source: &str,
) -> Result<sg_core::GraphHandle, ProtoError> {
    let bytes = sg_core::graph_approx_bytes(&graph) as u64;
    let handle = state
        .session
        .catalog()
        .insert(name, graph, source)
        .map_err(|e| ProtoError::new(ErrorCode::BadRequest, e))?;
    if let Err(err) = state.quotas.charge_catalog(peer, name, bytes) {
        state.session.catalog().remove(name);
        return Err(err);
    }
    Ok(handle)
}

fn dispatch(
    state: &ServeState,
    ctx: &ConnCtx,
    request: Request,
    version: u64,
    id: Option<&Json>,
) -> Result<Json, ProtoError> {
    match request {
        Request::Ping => Ok(ok_response(version, id).with("pong", Json::Bool(true))),
        Request::Load { name, path, format, no_verify } => {
            let fresh = state.session.catalog().get(&name).is_none();
            let (handle, loaded) = state
                .session
                .catalog()
                .open(&name, &path, format.as_deref(), no_verify)
                .map_err(|e| ProtoError::new(ErrorCode::Io, e))?;
            if loaded && fresh {
                let bytes = handle.approx_bytes() as u64;
                if let Err(err) = state.quotas.charge_catalog(&ctx.peer, &name, bytes) {
                    state.session.evict(&name);
                    return Err(err);
                }
            }
            Ok(registered_response(version, id, &handle, loaded))
        }
        Request::Upload { name, phase } => dispatch_upload(state, ctx, &name, phase, version, id),
        Request::Compress { graph, spec, seed, output, output_format } => {
            let (run, federation) = run_or_federate(state, ctx, &graph, &spec, seed)?;
            let mut response = run_response(ok_response(version, id), &run);
            if let Some(path) = output {
                sg_core::catalog::save_graph(&run.graph, &path, output_format.as_deref())
                    .map_err(|e| ProtoError::new(ErrorCode::Io, e))?;
                response = response.with("output", Json::str(path));
            }
            if let Some(block) = federation {
                response = response.with("federation", block);
            }
            Ok(response)
        }
        Request::Analyze { graph, spec, seed } => {
            let handle =
                state.session.catalog().get(&graph).ok_or_else(|| unknown_graph(&graph))?;
            let (run, federation) = run_or_federate(state, ctx, &graph, &spec, seed)?;
            let original = handle.graph();
            let compressed = run.graph.as_ref();
            let mut metrics = Json::obj()
                .with(
                    "components",
                    Json::Arr(vec![
                        Json::u64(cc::connected_components(original).num_components as u64),
                        Json::u64(cc::connected_components(compressed).num_components as u64),
                    ]),
                )
                .with(
                    "triangles",
                    Json::Arr(vec![
                        Json::u64(tc::count_triangles(original)),
                        Json::u64(tc::count_triangles(compressed)),
                    ]),
                );
            if compressed.num_vertices() == original.num_vertices() {
                let pr0 = pagerank::pagerank_default(original).scores;
                let pr1 = pagerank::pagerank_default(compressed).scores;
                metrics =
                    metrics.with("pagerank_kl", Json::f64(sg_metrics::kl_divergence(&pr0, &pr1)));
                let root = (0..original.num_vertices() as u32)
                    .max_by_key(|&v| original.degree(v))
                    .unwrap_or(0);
                metrics = metrics.with(
                    "bfs_critical_kept",
                    Json::f64(sg_metrics::critical_edge_preservation(original, compressed, root)),
                );
            } else {
                metrics =
                    metrics.with("pagerank_kl", Json::Null).with("bfs_critical_kept", Json::Null);
            }
            let mut response =
                run_response(ok_response(version, id), &run).with("metrics", metrics);
            if let Some(block) = federation {
                response = response.with("federation", block);
            }
            Ok(response)
        }
        Request::ShardRun { graph, spec, seed, shard, shards } => {
            dispatch_shard_run(state, &graph, &spec, seed, shard, shards, version, id)
        }
        Request::Federation => Ok(federation_status(state, version, id)),
        Request::Stats { graph: Some(name) } => {
            let handle = state.session.catalog().get(&name).ok_or_else(|| unknown_graph(&name))?;
            let g = handle.graph();
            let stats = sg_graph::properties::degree_stats(g);
            Ok(ok_response(version, id)
                .with("name", Json::str(handle.name()))
                .with("graph_id", Json::u64(handle.id().0))
                .with("source", Json::str(handle.source()))
                .with("vertices", Json::u64(g.num_vertices() as u64))
                .with("edges", Json::u64(g.num_edges() as u64))
                .with("weighted", Json::Bool(g.is_weighted()))
                .with("bytes", Json::u64(handle.approx_bytes() as u64))
                .with(
                    "degrees",
                    Json::obj()
                        .with("min", Json::u64(stats.min as u64))
                        .with("mean", Json::f64(stats.mean))
                        .with("max", Json::u64(stats.max as u64)),
                )
                .with("components", Json::u64(cc::connected_components(g).num_components as u64)))
        }
        Request::Stats { graph: None } => {
            let cache = state.session.cache().stats();
            let graphs: Vec<Json> = state
                .session
                .catalog()
                .list()
                .into_iter()
                .map(|h| {
                    Json::obj()
                        .with("name", Json::str(h.name()))
                        .with("graph_id", Json::u64(h.id().0))
                        .with("source", Json::str(h.source()))
                        .with("vertices", Json::u64(h.graph().num_vertices() as u64))
                        .with("edges", Json::u64(h.graph().num_edges() as u64))
                        .with("bytes", Json::u64(h.approx_bytes() as u64))
                })
                .collect();
            let m = &state.metrics;
            let server = Json::obj()
                .with("build", Json::str(env!("CARGO_PKG_VERSION")))
                .with("protocol_version", Json::u64(PROTOCOL_VERSION))
                .with("workers", Json::u64(state.workers as u64))
                .with("active", Json::u64(m.active.get().max(0) as u64))
                .with("peak_active", Json::u64(m.peak_active.get().max(0) as u64))
                .with("admitted", Json::u64(m.admitted.get()))
                .with("busy_rejected", Json::u64(m.busy_rejected.get()))
                .with("timeouts", Json::u64(m.timeouts.get()))
                .with("frames_rejected", Json::u64(m.frames_rejected.get()))
                .with("auth_failures", Json::u64(m.auth_failures.get()));
            let uploads: Vec<Json> = state
                .uploads
                .snapshot()
                .into_iter()
                .map(|u| {
                    Json::obj()
                        .with("name", Json::str(u.name))
                        .with("peer", Json::str(u.peer))
                        .with("received", Json::u64(u.received))
                        .with("total_bytes", Json::u64(u.total_bytes))
                        .with("orphaned", Json::Bool(u.orphaned))
                })
                .collect();
            Ok(ok_response(version, id)
                .with("graphs", Json::Arr(graphs))
                .with("catalog_bytes", Json::u64(state.session.catalog().total_bytes() as u64))
                .with(
                    "cache",
                    Json::obj()
                        .with("entries", Json::u64(cache.entries as u64))
                        .with("bytes", Json::u64(cache.bytes as u64))
                        .with("hits", Json::u64(cache.hits))
                        .with("misses", Json::u64(cache.misses))
                        .with("evictions", Json::u64(cache.evictions)),
                )
                .with("server", server)
                .with("clients", Json::Arr(state.quotas.snapshot()))
                .with("uploads", Json::Arr(uploads))
                .with("requests", Json::u64(state.metrics.requests.get()))
                .with("uptime_ms", Json::u64(state.started.elapsed().as_millis() as u64)))
        }
        Request::Metrics => {
            // One snapshot covering both registries: this daemon's own
            // (request/queue/pool-front metrics) merged with the
            // process-global one (session stages, StageCache, the rayon
            // shim's chunk gauges). In-process embedders running several
            // daemons share the global half; the serve.* half is always
            // exclusively this daemon's.
            let snapshot = state.metrics.registry.snapshot().merged(sg_obs::global_snapshot());
            let cache = state.session.cache().stats();
            Ok(ok_response(version, id)
                .with("metrics", snapshot_json(&snapshot))
                .with(
                    "cache",
                    Json::obj()
                        .with("entries", Json::u64(cache.entries as u64))
                        .with("bytes", Json::u64(cache.bytes as u64))
                        .with("hits", Json::u64(cache.hits))
                        .with("misses", Json::u64(cache.misses))
                        .with("evictions", Json::u64(cache.evictions)),
                )
                .with(
                    "server",
                    Json::obj()
                        .with("build", Json::str(env!("CARGO_PKG_VERSION")))
                        .with("protocol_version", Json::u64(PROTOCOL_VERSION))
                        .with("workers", Json::u64(state.workers as u64)),
                )
                .with("uptime_ms", Json::u64(state.started.elapsed().as_millis() as u64)))
        }
        Request::Slowlog => {
            let (records, total) = state.slowlog.snapshot();
            let entries: Vec<Json> = records.iter().map(SlowRecord::to_json).collect();
            Ok(ok_response(version, id)
                .with("slow_ms", Json::u64(state.slowlog.slow_ms()))
                .with("capacity", Json::u64(state.slowlog.capacity() as u64))
                .with("recorded", Json::u64(total))
                .with("returned", Json::u64(entries.len() as u64))
                .with("slowlog", Json::Arr(entries)))
        }
        Request::Evict { graph, cache } => {
            let mut response = ok_response(version, id);
            if let Some(name) = graph {
                let (handle, purged) =
                    state.session.evict(&name).ok_or_else(|| unknown_graph(&name))?;
                state.quotas.release_graph(&name);
                response = response
                    .with("evicted", Json::str(handle.name()))
                    .with("cache_entries_dropped", Json::u64(purged as u64));
            }
            if cache {
                let dropped = state.session.cache().clear();
                state.quotas.reset_cache();
                response = response.with("cache_cleared", Json::u64(dropped as u64));
            }
            Ok(response)
        }
        Request::Shutdown => Ok(ok_response(version, id).with("shutting_down", Json::Bool(true))),
    }
}

fn dispatch_upload(
    state: &ServeState,
    ctx: &ConnCtx,
    name: &str,
    phase: UploadPhase,
    version: u64,
    id: Option<&Json>,
) -> Result<Json, ProtoError> {
    match phase {
        UploadPhase::Begin { total_bytes, digest, format } => {
            if state.session.catalog().get(name).is_some() {
                return Err(ProtoError::new(
                    ErrorCode::BadRequest,
                    format!("graph '{name}' is already loaded (evict it to replace)"),
                ));
            }
            // Early headroom check on the declared *file* size; the
            // binding check happens at commit against the loaded graph's
            // real footprint.
            state.quotas.check_catalog_headroom(&ctx.peer, total_bytes)?;
            let offset = state.uploads.begin(
                ctx.conn_id,
                &ctx.peer,
                name,
                total_bytes,
                &digest,
                format.as_deref(),
            )?;
            Ok(ok_response(version, id)
                .with("name", Json::str(name))
                .with("offset", Json::u64(offset))
                .with("resumed", Json::Bool(offset > 0)))
        }
        UploadPhase::Chunk { offset, data } => {
            let bytes = b64::decode(&data)
                .map_err(|e| ProtoError::new(ErrorCode::BadRequest, format!("chunk data: {e}")))?;
            let received = state.uploads.chunk(ctx.conn_id, name, offset, &bytes)?;
            Ok(ok_response(version, id)
                .with("name", Json::str(name))
                .with("received", Json::u64(received)))
        }
        UploadPhase::Commit => {
            let finished = state.uploads.commit(ctx.conn_id, name)?;
            let spool = finished.path.to_string_lossy().into_owned();
            // The declared format applies to the uploaded bytes; with
            // none given, infer from the catalog name's extension (the
            // spool path carries no meaningful one).
            let format = match &finished.format {
                Some(f) => Some(f.clone()),
                None => match sg_core::GraphFormat::resolve(name, None) {
                    Ok(sg_core::GraphFormat::Bin) => Some("bin".to_string()),
                    Ok(sg_core::GraphFormat::Sgr) => Some("sgr".to_string()),
                    _ => Some("text".to_string()),
                },
            };
            let loaded = sg_core::catalog::load_graph(&spool, format.as_deref(), false);
            state.uploads.discard_spool(&finished);
            // The client proved the file loadable when it computed the
            // declared digest, so a spool that fails to load here means
            // the transfer corrupted it.
            let graph = loaded.map_err(|e| {
                ProtoError::new(
                    ErrorCode::DigestMismatch,
                    format!(
                        "uploaded bytes do not load ({e}) — transfer corrupted, upload dropped"
                    ),
                )
            })?;
            let actual = format!("{:016x}", graph_digest(&graph));
            if actual != finished.digest {
                return Err(ProtoError::new(
                    ErrorCode::DigestMismatch,
                    format!(
                        "uploaded graph digests to {actual}, client declared {} — transfer \
                         corrupted, upload dropped",
                        finished.digest
                    ),
                ));
            }
            let source = format!("upload:{}", finished.peer);
            let handle = insert_with_quota(state, &finished.peer, name, graph, &source)?;
            Ok(registered_response(version, id, &handle, true)
                .with("checksum", Json::str(actual))
                .with("uploaded_bytes", Json::u64(finished.total_bytes)))
        }
        UploadPhase::Abort => {
            state.uploads.abort(ctx.conn_id, name)?;
            Ok(ok_response(version, id)
                .with("name", Json::str(name))
                .with("aborted", Json::Bool(true)))
        }
    }
}

/// Renders a registry snapshot as the `metrics` response body: flat
/// name→value objects for counters and gauges, and per-histogram objects
/// with cumulative (Prometheus-style `le`) buckets. The final bucket's
/// bound is the string `"+Inf"`; every earlier `le` is milliseconds.
/// Also the format of the CLI's `--metrics-out` dump.
pub fn snapshot_json(snapshot: &sg_obs::Snapshot) -> Json {
    let mut counters = Json::obj();
    for (name, value) in &snapshot.counters {
        counters = counters.with(name, Json::u64(*value));
    }
    let mut gauges = Json::obj();
    for (name, value) in &snapshot.gauges {
        gauges = gauges.with(name, Json::f64(*value as f64));
    }
    let mut histograms = Json::obj();
    for hist in &snapshot.histograms {
        let buckets: Vec<Json> = hist
            .cumulative
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let le = match hist.bounds_ms.get(i) {
                    Some(bound) => Json::f64(*bound),
                    None => Json::str("+Inf"),
                };
                Json::obj().with("le", le).with("count", Json::u64(count))
            })
            .collect();
        histograms = histograms.with(
            &hist.name,
            Json::obj()
                .with("count", Json::u64(hist.count()))
                .with("sum_ms", Json::f64(hist.sum_ms))
                .with("buckets", Json::Arr(buckets)),
        );
    }
    Json::obj().with("counters", counters).with("gauges", gauges).with("histograms", histograms)
}

fn unknown_graph(name: &str) -> ProtoError {
    ProtoError::new(ErrorCode::UnknownGraph, format!("no graph loaded as '{name}'"))
}

fn run_pipeline(
    state: &ServeState,
    ctx: &ConnCtx,
    graph: &str,
    spec: &str,
    seed: u64,
) -> Result<SessionRun, ProtoError> {
    let spec = PipelineSpec::parse(spec).map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    // Cache quota: peers whose executed stages have already filled their
    // cache byte budget are refused further pipeline work until they (or
    // anyone) clear the cache with `evict cache:true`.
    state.quotas.check_cache(&ctx.peer)?;
    let run = state.session.run_named(graph, &spec, seed).map_err(|e| {
        if e.contains("no graph loaded") {
            ProtoError::new(ErrorCode::UnknownGraph, e)
        } else {
            ProtoError::new(ErrorCode::BadSpec, e)
        }
    })?;
    // Charge what this run newly materialized: executed (non-cached)
    // stage outputs. Approximate by design — cache evictions are not
    // refunded — and documented as such in PROTOCOL.md.
    let executed_bytes: u64 = run
        .stages
        .iter()
        .filter(|s| !s.cached)
        .filter_map(|s| s.graph.as_ref())
        .map(|g| sg_core::graph_approx_bytes(g) as u64)
        .sum();
    state.quotas.charge_cache(&ctx.peer, executed_bytes);
    Ok(run)
}

/// How a coordinator decided to serve one compress/analyze request.
enum FedOutcome {
    /// Served by the worker fleet; carries the synthesized run and the
    /// `federation` response block.
    Run(Box<SessionRun>, Json),
    /// Not federable; carries the reason for the `federation` block of
    /// the coordinator-local run.
    Local(String),
}

/// Runs a compress/analyze request locally or — on a coordinator, when
/// the plan is federable — across the worker fleet. The second element
/// is the response's `federation` block: `None` on a plain daemon,
/// `{"mode":"federated",…}` or `{"mode":"local","reason":…}` on a
/// coordinator.
fn run_or_federate(
    state: &ServeState,
    ctx: &ConnCtx,
    graph: &str,
    spec: &str,
    seed: u64,
) -> Result<(SessionRun, Option<Json>), ProtoError> {
    let Some(cfg) = &state.fed else {
        return Ok((run_pipeline(state, ctx, graph, spec, seed)?, None));
    };
    match federated_run(state, cfg, graph, spec, seed)? {
        FedOutcome::Run(run, block) => Ok((*run, Some(block))),
        FedOutcome::Local(reason) => {
            state.metrics.registry.counter("fed.local_fallbacks").inc();
            let run = run_pipeline(state, ctx, graph, spec, seed)?;
            Ok((run, Some(fed::local_block(&reason))))
        }
    }
}

/// The coordinator path: classify the spec, fan `shard_run` requests out
/// to the workers, verify replica digests, and merge the shard outcomes
/// into a [`SessionRun`] shaped exactly like a local one (so
/// [`run_response`] emits the same contract fields, `checksum`
/// included). Returns [`FedOutcome::Local`] for plans that need
/// cross-shard state (multi-stage chains, Edge-Once disciplines, global
/// rewrites) — those run on the coordinator itself.
fn federated_run(
    state: &ServeState,
    cfg: &FedConfig,
    graph: &str,
    spec: &str,
    seed: u64,
) -> Result<FedOutcome, ProtoError> {
    let parsed = PipelineSpec::parse(spec).map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    let resolved = parsed
        .resolve(state.session.registry(), &SchemeParams::from_pairs(&[]))
        .map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    if resolved.stages.len() != 1 {
        return Ok(FedOutcome::Local(format!(
            "only single-stage specs federate; this chain has {} stages",
            resolved.stages.len()
        )));
    }
    let handle = state.session.catalog().get(graph).ok_or_else(|| unknown_graph(graph))?;
    let stage = &resolved.stages[0];
    let scheme = state
        .session
        .registry()
        .create(&stage.name, &stage.params)
        .map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    if let Err(e) = sg_dist::federation_plan(handle.graph(), scheme.as_ref()) {
        return Ok(FedOutcome::Local(e.to_string()));
    }
    state.metrics.registry.counter("fed.requests").inc();
    let input = handle.graph();
    let local_checksum = format!("{:016x}", graph_digest(input));
    let trace_id = sg_obs::trace::current_trace_id().map(|id| id.to_string()).unwrap_or_default();
    let started = Instant::now();
    let _span = sg_obs::span!("fed.run", graph = graph, shards = cfg.workers.len());
    let reports = fed::fan_out(&fed::FanOut {
        cfg,
        registry: &state.metrics.registry,
        graph,
        source: handle.source(),
        local_checksum: &local_checksum,
        spec: &resolved.render(),
        seed,
        trace_id: &trace_id,
    })?;
    let (merged, mapping) = fed::merge_reports(input, &reports);
    let block = fed::federation_block(&reports);
    let merged = Arc::new(merged);
    // Synthesize the one-stage run a local execution would have produced
    // (pipelines are pure in `(graph, spec, seed)` and
    // `Pipeline::stage_seed(seed, 0) == seed`, so the merged graph IS the
    // local stage output — dist_equivalence pins that bit-identity).
    let run = SessionRun {
        graph: Arc::clone(&merged),
        vertex_mapping: mapping.map(Arc::new),
        original_vertices: input.num_vertices(),
        original_edges: input.num_edges(),
        stages: vec![StageOutcome {
            report: StageReport {
                name: scheme.name().to_string(),
                label: scheme.label(),
                input_vertices: input.num_vertices(),
                input_edges: input.num_edges(),
                output_vertices: merged.num_vertices(),
                output_edges: merged.num_edges(),
                elapsed: started.elapsed(),
            },
            cached: false,
            graph: Some(merged),
        }],
    };
    Ok(FedOutcome::Run(Box::new(run), block))
}

/// The worker side of federation: compute one shard of a single-stage
/// spec against the local replica and return the deletion/removal id
/// list plus the replica's digest (the coordinator refuses to merge
/// shards whose digests disagree with its own copy).
#[allow(clippy::too_many_arguments)]
fn dispatch_shard_run(
    state: &ServeState,
    graph: &str,
    spec: &str,
    seed: u64,
    shard: usize,
    shards: usize,
    version: u64,
    id: Option<&Json>,
) -> Result<Json, ProtoError> {
    let handle = state.session.catalog().get(graph).ok_or_else(|| unknown_graph(graph))?;
    let parsed = PipelineSpec::parse(spec).map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    let resolved = parsed
        .resolve(state.session.registry(), &SchemeParams::from_pairs(&[]))
        .map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    if resolved.stages.len() != 1 {
        return Err(ProtoError::new(
            ErrorCode::BadSpec,
            format!("shard_run takes a single-stage spec, got {} stages", resolved.stages.len()),
        ));
    }
    let stage = &resolved.stages[0];
    let scheme = state
        .session
        .registry()
        .create(&stage.name, &stage.params)
        .map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    let g = handle.graph();
    let started = Instant::now();
    let outcome =
        sg_dist::shard_compress(g, scheme.as_ref(), shard, shards, seed).map_err(|e| match e {
            sg_dist::DistError::InvalidShard { .. } | sg_dist::DistError::InvalidRanks { .. } => {
                ProtoError::new(ErrorCode::BadRequest, e.to_string())
            }
            other => ProtoError::new(ErrorCode::BadSpec, other.to_string()),
        })?;
    let (kind, ids): (&str, Vec<Json>) = match outcome {
        sg_dist::ShardOutcome::Edges(edges) => {
            ("edges", edges.into_iter().map(|e| Json::u64(e as u64)).collect())
        }
        sg_dist::ShardOutcome::Vertices(vertices) => {
            ("vertices", vertices.into_iter().map(|v| Json::u64(u64::from(v))).collect())
        }
    };
    Ok(ok_response(version, id)
        .with("graph", Json::str(graph))
        .with("kind", Json::str(kind))
        .with("count", Json::u64(ids.len() as u64))
        .with("ids", Json::Arr(ids))
        .with("shard", Json::u64(shard as u64))
        .with("shards", Json::u64(shards as u64))
        .with("checksum", Json::str(format!("{:016x}", graph_digest(g))))
        .with("ms", Json::f64(started.elapsed().as_secs_f64() * 1e3)))
}

/// The `federation` status op: topology + live worker reachability on a
/// coordinator, `{"mode":"standalone"}` elsewhere.
fn federation_status(state: &ServeState, version: u64, id: Option<&Json>) -> Json {
    let Some(cfg) = &state.fed else {
        return ok_response(version, id)
            .with("federation", Json::obj().with("mode", Json::str("standalone")));
    };
    let probe_timeout = Duration::from_millis(cfg.timeout_ms.clamp(1, 2_000));
    let workers: Vec<Json> = cfg
        .workers
        .iter()
        .map(|addr| {
            Json::obj().with("addr", Json::str(addr.clone())).with(
                "reachable",
                Json::Bool(fed::probe_worker(addr, probe_timeout, cfg.token.as_deref())),
            )
        })
        .collect();
    ok_response(version, id).with(
        "federation",
        Json::obj()
            .with("mode", Json::str("coordinator"))
            .with("shards", Json::u64(cfg.workers.len() as u64))
            .with("retries", Json::u64(cfg.retries as u64))
            .with("timeout_ms", Json::u64(cfg.timeout_ms))
            .with("workers", Json::Arr(workers)),
    )
}

/// Appends the shared compress/analyze result fields: output shape,
/// compression ratio, content digest, per-stage reports with cache flags,
/// and `BenchRecord`-style timings.
fn run_response(envelope: Json, run: &SessionRun) -> Json {
    let stages: Vec<Json> = run
        .stages
        .iter()
        .map(|s| {
            Json::obj()
                .with("name", Json::str(s.report.name.clone()))
                .with("label", Json::str(s.report.label.clone()))
                .with("input_edges", Json::u64(s.report.input_edges as u64))
                .with("output_edges", Json::u64(s.report.output_edges as u64))
                .with("ms", Json::f64(s.report.elapsed.as_secs_f64() * 1e3))
                .with("cached", Json::Bool(s.cached))
        })
        .collect();
    envelope
        .with("vertices", Json::u64(run.graph.num_vertices() as u64))
        .with("edges", Json::u64(run.graph.num_edges() as u64))
        .with("original_vertices", Json::u64(run.original_vertices as u64))
        .with("original_edges", Json::u64(run.original_edges as u64))
        .with("ratio", Json::f64(run.compression_ratio()))
        .with("checksum", Json::str(format!("{:016x}", graph_digest(&run.graph))))
        .with("total_ms", Json::f64(run.elapsed().as_secs_f64() * 1e3))
        .with("stages_executed", Json::u64(run.stages_executed() as u64))
        .with("stages_cached", Json::u64(run.stages_cached() as u64))
        .with("stages", Json::Arr(stages))
        // Non-contractual (PROTOCOL.md): execution diagnostics for humans
        // and dashboards. Tests and clients must not assert on this block;
        // its shape may change in any release without a version bump.
        .with(
            "diagnostics",
            Json::obj()
                .with("stages_total", Json::u64(run.stages.len() as u64))
                .with("stages_executed", Json::u64(run.stages_executed() as u64)),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_detection() {
        for addr in ["127.0.0.1:0", "localhost:9000", "[::1]:80", "unix:/tmp/x.sock"] {
            assert!(!non_loopback(addr), "{addr} is loopback");
        }
        for addr in ["0.0.0.0:9000", "192.168.1.4:9000", "[::]:80", "example.com:9000"] {
            assert!(non_loopback(addr), "{addr} is not loopback");
        }
    }

    #[test]
    fn token_compare_is_exact() {
        assert!(token_eq("sesame", "sesame"));
        assert!(!token_eq("sesame", "sesamE"));
        assert!(!token_eq("sesame", "sesam"));
        assert!(!token_eq("sesame", ""));
        assert!(!token_eq("", "sesame"));
        assert!(token_eq("", ""));
    }

    #[test]
    fn non_loopback_bind_requires_token() {
        let cfg = ServeConfig { listen: "0.0.0.0:0".to_string(), ..ServeConfig::default() };
        let err = match Server::bind(&cfg) {
            Err(err) => err,
            Ok(_) => panic!("tokenless non-loopback bind must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let cfg = ServeConfig { token: Some("secret".to_string()), ..cfg };
        let server = Server::bind(&cfg).expect("token unlocks the bind");
        drop(server);
    }
}
