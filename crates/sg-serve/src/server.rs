//! The serve loop: accept connections, answer protocol requests through
//! one shared [`SgSession`].
//!
//! Each connection gets its own scoped handler thread; all handlers share
//! the session (catalog + registry + stage cache), so a graph loaded by
//! one client serves every client, and chain prefixes cached by one
//! request accelerate the next — with bit-identical results, because
//! pipelines are pure functions of `(graph, spec, seed)`.

use crate::json::Json;
use crate::net::{Listener, Stream};
use crate::proto::{
    error_response, ok_response, parse_request, Envelope, ErrorCode, ProtoError, Request,
};
use sg_algos::{cc, pagerank, tc};
use sg_core::{GraphCatalog, PipelineSpec, SchemeRegistry, SessionRun, SgSession, StageCache};
use sg_graph::CsrGraph;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address: `host:port` (`127.0.0.1:0` = ephemeral port) or
    /// `unix:/path/to.sock`.
    pub listen: String,
    /// Byte budget of the shared stage cache.
    pub cache_bytes: usize,
    /// Emit one JSON event line per request to stdout (the transcript CI
    /// archives).
    pub transcript: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            cache_bytes: sg_core::cache::DEFAULT_CACHE_BYTES,
            transcript: true,
        }
    }
}

/// Content digest of a graph: FNV-1a over the vertex count, the canonical
/// edge list, and (when weighted) the raw weight bits. Two graphs digest
/// equally iff their serialized structure is byte-identical, so clients
/// can verify "the daemon computed exactly what a local run would" without
/// shipping the graph back.
pub fn graph_digest(g: &CsrGraph) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(g.num_vertices() as u64);
    for &(u, v) in g.edge_slice() {
        eat((u64::from(u)) << 32 | u64::from(v));
    }
    if let Some(weights) = g.weight_slice() {
        for &w in weights {
            eat(u64::from(w.to_bits()));
        }
    }
    h
}

/// Shared daemon state.
struct ServeState {
    session: SgSession,
    started: Instant,
    requests: AtomicU64,
    shutdown: AtomicBool,
    addr: String,
    transcript: bool,
}

impl ServeState {
    /// Wakes the accept loop after the shutdown flag flips (a blocked
    /// `accept` only returns on a connection).
    fn wake_acceptor(&self) {
        let _ = Stream::connect(&self.addr);
    }

    fn log_event(&self, op: &str, ok: bool, elapsed: Duration, detail: &str) {
        if !self.transcript {
            return;
        }
        let mut event = Json::obj()
            .with("event", Json::str("request"))
            .with("op", Json::str(op))
            .with("ok", Json::Bool(ok))
            .with("ms", Json::f64(elapsed.as_secs_f64() * 1e3));
        if !detail.is_empty() {
            event = event.with("detail", Json::str(detail));
        }
        println!("{}", event.render());
    }
}

/// A bound (but not yet running) daemon. Binding and running are split so
/// callers can learn the resolved ephemeral address before blocking.
pub struct Server {
    listener: Listener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the configured address and prepares the shared session.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let session = SgSession::with_cache(
            Arc::new(GraphCatalog::new()),
            Arc::new(SchemeRegistry::with_defaults()),
            Arc::new(StageCache::with_capacity(cfg.cache_bytes)),
        );
        Ok(Server {
            listener,
            state: Arc::new(ServeState {
                session,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                addr,
                transcript: cfg.transcript,
            }),
        })
    }

    /// The connectable address (the resolved port for `…:0` binds).
    pub fn local_addr(&self) -> &str {
        &self.state.addr
    }

    /// Runs the accept loop until a `shutdown` request arrives. Connection
    /// handlers run on scoped threads and are joined before this returns,
    /// so no request is abandoned mid-flight.
    pub fn run(self) -> std::io::Result<()> {
        let state = &self.state;
        std::thread::scope(|scope| {
            loop {
                let conn = match self.listener.accept() {
                    Ok(conn) => conn,
                    Err(e) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        return Err(e);
                    }
                };
                if state.shutdown.load(Ordering::SeqCst) {
                    break; // the wake-up connection, or a late client
                }
                scope.spawn(move || handle_connection(state, conn));
            }
            Ok(())
        })
    }
}

fn handle_connection(state: &ServeState, stream: Stream) {
    // Bounded reads let the handler notice a server shutdown even while a
    // client holds the connection open without sending.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Accumulate one line, tolerating read timeouts (partial content
        // stays in `line` across retries).
        let eof = loop {
            match reader.read_line(&mut line) {
                Ok(0) => break true,
                Ok(_) if line.ends_with('\n') => break false,
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if eof && line.trim().is_empty() {
            return;
        }
        if line.trim().is_empty() {
            continue;
        }
        // A busy client sending back-to-back requests never hits the
        // read-timeout branch, so re-check the flag per request: once any
        // client asked for shutdown, no connection serves further work.
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (response, op, shutdown) = respond(state, line.trim());
        state.log_event(
            &op,
            response.get("ok").and_then(Json::as_bool).unwrap_or(false),
            started.elapsed(),
            "",
        );
        let written = writer
            .write_all(response.render().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            state.wake_acceptor();
            return;
        }
        if written.is_err() || eof {
            return;
        }
    }
}

/// Parses + dispatches one request line; returns the response, the op
/// name (for the transcript), and whether this was a shutdown.
fn respond(state: &ServeState, line: &str) -> (Json, String, bool) {
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(err) => return (error_response(None, &err), "invalid".to_string(), false),
    };
    let Envelope { request, id } = envelope;
    let op = op_name(&request).to_string();
    let shutdown = matches!(request, Request::Shutdown);
    let response = match dispatch(state, request, id.as_ref()) {
        Ok(ok) => ok,
        Err(err) => error_response(id.as_ref(), &err),
    };
    (response, op, shutdown)
}

fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Load { .. } => "load",
        Request::Compress { .. } => "compress",
        Request::Analyze { .. } => "analyze",
        Request::Stats { .. } => "stats",
        Request::Evict { .. } => "evict",
        Request::Shutdown => "shutdown",
    }
}

fn dispatch(state: &ServeState, request: Request, id: Option<&Json>) -> Result<Json, ProtoError> {
    match request {
        Request::Ping => Ok(ok_response(id).with("pong", Json::Bool(true))),
        Request::Load { name, path, format, no_verify } => {
            let (handle, loaded) = state
                .session
                .catalog()
                .open(&name, &path, format.as_deref(), no_verify)
                .map_err(|e| ProtoError::new(ErrorCode::Io, e))?;
            Ok(ok_response(id)
                .with("name", Json::str(handle.name()))
                .with("graph_id", Json::u64(handle.id().0))
                .with("source", Json::str(handle.source()))
                .with("vertices", Json::u64(handle.graph().num_vertices() as u64))
                .with("edges", Json::u64(handle.graph().num_edges() as u64))
                .with("loaded", Json::Bool(loaded)))
        }
        Request::Compress { graph, spec, seed, output, output_format } => {
            let run = run_pipeline(state, &graph, &spec, seed)?;
            let mut response = run_response(ok_response(id), &run);
            if let Some(path) = output {
                sg_core::catalog::save_graph(&run.graph, &path, output_format.as_deref())
                    .map_err(|e| ProtoError::new(ErrorCode::Io, e))?;
                response = response.with("output", Json::str(path));
            }
            Ok(response)
        }
        Request::Analyze { graph, spec, seed } => {
            let handle =
                state.session.catalog().get(&graph).ok_or_else(|| unknown_graph(&graph))?;
            let run = run_pipeline(state, &graph, &spec, seed)?;
            let original = handle.graph();
            let compressed = run.graph.as_ref();
            let mut metrics = Json::obj()
                .with(
                    "components",
                    Json::Arr(vec![
                        Json::u64(cc::connected_components(original).num_components as u64),
                        Json::u64(cc::connected_components(compressed).num_components as u64),
                    ]),
                )
                .with(
                    "triangles",
                    Json::Arr(vec![
                        Json::u64(tc::count_triangles(original)),
                        Json::u64(tc::count_triangles(compressed)),
                    ]),
                );
            if compressed.num_vertices() == original.num_vertices() {
                let pr0 = pagerank::pagerank_default(original).scores;
                let pr1 = pagerank::pagerank_default(compressed).scores;
                metrics =
                    metrics.with("pagerank_kl", Json::f64(sg_metrics::kl_divergence(&pr0, &pr1)));
                let root = (0..original.num_vertices() as u32)
                    .max_by_key(|&v| original.degree(v))
                    .unwrap_or(0);
                metrics = metrics.with(
                    "bfs_critical_kept",
                    Json::f64(sg_metrics::critical_edge_preservation(original, compressed, root)),
                );
            } else {
                metrics =
                    metrics.with("pagerank_kl", Json::Null).with("bfs_critical_kept", Json::Null);
            }
            Ok(run_response(ok_response(id), &run).with("metrics", metrics))
        }
        Request::Stats { graph: Some(name) } => {
            let handle = state.session.catalog().get(&name).ok_or_else(|| unknown_graph(&name))?;
            let g = handle.graph();
            let stats = sg_graph::properties::degree_stats(g);
            Ok(ok_response(id)
                .with("name", Json::str(handle.name()))
                .with("graph_id", Json::u64(handle.id().0))
                .with("source", Json::str(handle.source()))
                .with("vertices", Json::u64(g.num_vertices() as u64))
                .with("edges", Json::u64(g.num_edges() as u64))
                .with("weighted", Json::Bool(g.is_weighted()))
                .with(
                    "degrees",
                    Json::obj()
                        .with("min", Json::u64(stats.min as u64))
                        .with("mean", Json::f64(stats.mean))
                        .with("max", Json::u64(stats.max as u64)),
                )
                .with("components", Json::u64(cc::connected_components(g).num_components as u64)))
        }
        Request::Stats { graph: None } => {
            let cache = state.session.cache().stats();
            let graphs: Vec<Json> = state
                .session
                .catalog()
                .list()
                .into_iter()
                .map(|h| {
                    Json::obj()
                        .with("name", Json::str(h.name()))
                        .with("graph_id", Json::u64(h.id().0))
                        .with("source", Json::str(h.source()))
                        .with("vertices", Json::u64(h.graph().num_vertices() as u64))
                        .with("edges", Json::u64(h.graph().num_edges() as u64))
                })
                .collect();
            Ok(ok_response(id)
                .with("graphs", Json::Arr(graphs))
                .with(
                    "cache",
                    Json::obj()
                        .with("entries", Json::u64(cache.entries as u64))
                        .with("bytes", Json::u64(cache.bytes as u64))
                        .with("hits", Json::u64(cache.hits))
                        .with("misses", Json::u64(cache.misses))
                        .with("evictions", Json::u64(cache.evictions)),
                )
                .with("requests", Json::u64(state.requests.load(Ordering::Relaxed)))
                .with("uptime_ms", Json::u64(state.started.elapsed().as_millis() as u64)))
        }
        Request::Evict { graph, cache } => {
            let mut response = ok_response(id);
            if let Some(name) = graph {
                let (handle, purged) =
                    state.session.evict(&name).ok_or_else(|| unknown_graph(&name))?;
                response = response
                    .with("evicted", Json::str(handle.name()))
                    .with("cache_entries_dropped", Json::u64(purged as u64));
            }
            if cache {
                let dropped = state.session.cache().clear();
                response = response.with("cache_cleared", Json::u64(dropped as u64));
            }
            Ok(response)
        }
        Request::Shutdown => Ok(ok_response(id).with("shutting_down", Json::Bool(true))),
    }
}

fn unknown_graph(name: &str) -> ProtoError {
    ProtoError::new(ErrorCode::UnknownGraph, format!("no graph loaded as '{name}'"))
}

fn run_pipeline(
    state: &ServeState,
    graph: &str,
    spec: &str,
    seed: u64,
) -> Result<SessionRun, ProtoError> {
    let spec = PipelineSpec::parse(spec).map_err(|e| ProtoError::new(ErrorCode::BadSpec, e))?;
    state.session.run_named(graph, &spec, seed).map_err(|e| {
        if e.contains("no graph loaded") {
            ProtoError::new(ErrorCode::UnknownGraph, e)
        } else {
            ProtoError::new(ErrorCode::BadSpec, e)
        }
    })
}

/// Appends the shared compress/analyze result fields: output shape,
/// compression ratio, content digest, per-stage reports with cache flags,
/// and `BenchRecord`-style timings.
fn run_response(envelope: Json, run: &SessionRun) -> Json {
    let stages: Vec<Json> = run
        .stages
        .iter()
        .map(|s| {
            Json::obj()
                .with("name", Json::str(s.report.name.clone()))
                .with("label", Json::str(s.report.label.clone()))
                .with("input_edges", Json::u64(s.report.input_edges as u64))
                .with("output_edges", Json::u64(s.report.output_edges as u64))
                .with("ms", Json::f64(s.report.elapsed.as_secs_f64() * 1e3))
                .with("cached", Json::Bool(s.cached))
        })
        .collect();
    envelope
        .with("vertices", Json::u64(run.graph.num_vertices() as u64))
        .with("edges", Json::u64(run.graph.num_edges() as u64))
        .with("original_vertices", Json::u64(run.original_vertices as u64))
        .with("original_edges", Json::u64(run.original_edges as u64))
        .with("ratio", Json::f64(run.compression_ratio()))
        .with("checksum", Json::str(format!("{:016x}", graph_digest(&run.graph))))
        .with("total_ms", Json::f64(run.elapsed().as_secs_f64() * 1e3))
        .with("stages_executed", Json::u64(run.stages_executed() as u64))
        .with("stages_cached", Json::u64(run.stages_cached() as u64))
        .with("stages", Json::Arr(stages))
}
