//! # sg-serve — compression-as-a-service for Slim Graph
//!
//! The serving story the ROADMAP asks for: a daemon that loads a graph
//! **once** and answers `compress`/`analyze` pipeline requests over a
//! socket, with cached stage outputs. It is a thin network shell around
//! the `sg-core` session API — [`sg_core::GraphCatalog`] holds the loaded
//! graphs, [`sg_core::SgSession`] executes pipeline specs, and the shared
//! [`sg_core::StageCache`] lets requests that agree on a chain prefix
//! recompute only the divergent suffix (bit-identically to a cold run:
//! pipelines are pure functions of `(graph, spec, seed)`).
//!
//! ## Front-line shape
//!
//! The connection layer is a fixed acceptor feeding a **bounded worker
//! pool** (`--workers`) through a bounded queue: overload yields a
//! stable `busy` error with `retry_after_ms` instead of unbounded
//! threads, per-frame read deadlines and a max-frame cap kill
//! slow-loris and oversized clients, token auth (constant-time compare)
//! gates non-loopback binds, and per-peer byte quotas bound each
//! client's catalog/cache footprint.
//!
//! ## Protocol (v2, v1 still served)
//!
//! Line-delimited JSON over TCP or a unix socket — one request per line,
//! one response per line, in order. The canonical reference (schema,
//! versioning, error codes) is `docs/PROTOCOL.md`; in brief:
//!
//! | op | effect |
//! |----|--------|
//! | `ping` | liveness probe |
//! | `load` | register a server-side graph file under a name (load-once) |
//! | `upload` | v2: chunked, digest-verified client-side graph transfer into the catalog |
//! | `compress` | run a pipeline spec; report shape/digest/per-stage timings, optionally write the result server-side |
//! | `analyze` | `compress` + accuracy metrics vs the loaded original |
//! | `stats` | server-wide stats (graphs, cache, pool, clients, uploads) or one graph's structure |
//! | `metrics` | v2: full sg-obs snapshot — counters, gauges, cumulative latency histograms (see `docs/OBSERVABILITY.md`) |
//! | `slowlog` | v2: the slow-request ring — op, trace id, queue wait, service ms per request over `--slow-ms` |
//! | `shard_run` | v2: one federation shard of a single-stage spec against the local replica (see [`fed`]) |
//! | `federation` | v2: federation topology + live worker reachability (`standalone` on plain daemons) |
//! | `evict` | drop a graph and its cache entries, and/or clear the cache |
//! | `shutdown` | stop accepting and drain in-flight connections |
//!
//! Responses embed per-request `BenchRecord`-style timing (`total_ms`,
//! per-stage `ms`) and cache accounting (`stages_cached`, per-stage
//! `cached`), plus a `checksum` — an FNV-1a content digest
//! ([`graph_digest`]) a client can compare against a local run to verify
//! byte-equality without shipping the graph back.
//!
//! ## Example (in-process)
//!
//! ```no_run
//! use sg_serve::{Client, Json, ServeConfig, Server};
//!
//! let server = Server::bind(&ServeConfig::default()).unwrap();
//! let addr = server.local_addr().to_string();
//! let daemon = std::thread::spawn(move || server.run());
//! let mut client = Client::connect(&addr).unwrap();
//! let response = client
//!     .request(&Client::request_for("load")
//!         .with("name", Json::str("g"))
//!         .with("path", Json::str("/data/graph.sgr")))
//!     .unwrap();
//! assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
//! client.request(&Client::request_for("shutdown")).unwrap();
//! daemon.join().unwrap().unwrap();
//! ```
//!
//! ## Federation
//!
//! A daemon started with a [`FedConfig`] (`slimgraph serve --coordinator
//! --worker-addr a,b`) becomes a *coordinator*: federable single-stage
//! `compress`/`analyze` requests are split into one `shard_run`
//! sub-request per worker daemon, replica digests are verified, and the
//! merged result is bit-identical to a local run (same `checksum`).
//! Workers are stock daemons — no special configuration. See [`fed`] and
//! `docs/FEDERATION.md`.
//!
//! The CLI front ends are `slimgraph serve` (daemon) and `slimgraph
//! client` (one-shot requests and scripted sessions).

pub mod b64;
pub mod client;
pub mod fed;
pub mod json;
pub mod net;
pub mod pool;
pub mod proto;
pub mod quota;
pub mod server;
pub mod slowlog;
pub mod upload;

pub use client::Client;
pub use fed::FedConfig;
pub use json::Json;
pub use proto::{ErrorCode, ProtoError, Request, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use server::{graph_digest, snapshot_json, ServeConfig, Server};
pub use slowlog::{SlowLog, SlowRecord};
