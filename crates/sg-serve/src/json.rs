//! A minimal, dependency-free JSON value type with a full parser and a
//! canonical renderer.
//!
//! The build container has no crates registry, so the wire protocol
//! cannot use `serde`; this module implements exactly the JSON subset the
//! protocol needs — which is all of JSON, minus any opinion about
//! numbers: numeric tokens are kept as their **raw text** ([`Json::Num`]),
//! so `u64` seeds and graph ids round-trip exactly (no `f64` precision
//! loss) and rendering re-emits what was parsed.
//!
//! Objects preserve insertion order and are rendered without extra
//! whitespace, which keeps responses one-line (the protocol is
//! line-delimited).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw (validated) token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; duplicate keys keep the last value
    /// on lookup, as in most JSON implementations).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (builder style); panics on non-objects
    /// (a programming error in response construction).
    pub fn with(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A float value; non-finite floats become `null` (JSON has no NaN).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// Object field lookup (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is an integral number in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Renders as compact (single-line) JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parser nesting cap — hostile inputs must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(format!("invalid number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(first).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-12",
            "3.5",
            "1e9",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(v.render(), text, "canonical form round-trips");
            assert_eq!(Json::parse(&v.render()).expect("reparses"), v);
        }
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = Json::parse(&format!("{{\"seed\":{big}}}")).expect("parses");
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(big));
        assert_eq!(Json::u64(big).render(), big.to_string());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse("\"a\\\"b\\\\c\\n\\u0041\\u00e9\\ud83d\\ude00\"").expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nAé😀"));
        let rendered = Json::str("tab\there\u{1}").render();
        assert_eq!(rendered, "\"tab\\there\\u0001\"");
        assert_eq!(Json::parse(&rendered).expect("reparses").as_str(), Some("tab\there\u{1}"));
    }

    #[test]
    fn builder_and_accessors() {
        let v = Json::obj()
            .with("ok", Json::Bool(true))
            .with("n", Json::u64(7))
            .with("x", Json::f64(0.5))
            .with("nan", Json::f64(f64::NAN))
            .with("items", Json::Arr(vec![Json::str("a")]));
        assert_eq!(v.render(), "{\"ok\":true,\"n\":7,\"x\":0.5,\"nan\":null,\"items\":[\"a\"]}");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("items").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn hostile_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "1 2",
            "--1",
            "1.",
            "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } \n").expect("parses");
        assert_eq!(v.render(), "{\"a\":[1,2]}");
    }
}
