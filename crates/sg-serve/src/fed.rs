//! Multi-daemon federation: the coordinator side of `shard_run`.
//!
//! A coordinator daemon holds a full copy of the graph and a list of
//! *worker* daemons (stock `sg-serve` instances — workers need no special
//! configuration). A federable single-stage `compress`/`analyze` request
//! is split into `workers.len()` shards; each shard becomes one v2
//! `shard_run` request answered by a worker against its own full replica,
//! and the returned deletion/removal id lists are merged locally with
//! [`sg_dist::apply_edge_deletions`] / [`sg_dist::apply_vertex_removals`].
//!
//! Correctness rests on two pillars:
//!
//! * only schemes whose [`sg_dist::federation_plan`] admits independent
//!   shards are federated (edge kernels, Plain Triangle Reduction, vertex
//!   kernels) — the union of shard outcomes is then bit-identical to the
//!   shared-memory `scheme.apply`, the contract `tests/dist_equivalence.rs`
//!   pins. Everything else (Edge-Once disciplines, global rewrites,
//!   multi-stage chains) silently falls back to coordinator-local
//!   execution, reported in the response's `federation.mode`.
//! * every worker response carries the [`crate::server::graph_digest`] of
//!   the replica it computed against; a digest differing from the
//!   coordinator's copy aborts the request with `fed-digest-mismatch`
//!   rather than merging shards of different inputs.
//!
//! Failure handling: each shard gets `1 + retries` attempts, walking the
//! worker ring (`workers[(shard + attempt) % W]`), so a dead worker's
//! shards migrate to live ones. A worker that does not know the graph is
//! lazily sent a `load` with the coordinator's source path first. When a
//! shard exhausts its attempts the whole request fails with
//! `fed-shard-failed` — never a silently partial merge.

use crate::client::Client;
use crate::json::Json;
use crate::proto::{ErrorCode, ProtoError};
use sg_graph::{CsrGraph, EdgeId, VertexId};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Federation settings of a coordinator daemon. A daemon with no
/// [`FedConfig`] is a plain worker/standalone instance.
#[derive(Clone, Debug)]
pub struct FedConfig {
    /// Worker daemon addresses (`host:port` or `unix:/path`). The shard
    /// count of every federated request equals the worker count.
    pub workers: Vec<String>,
    /// Extra attempts per shard beyond the first, each on the next
    /// worker in the ring.
    pub retries: usize,
    /// Per-attempt connect/read/write patience in milliseconds — the
    /// worker-death cutoff.
    pub timeout_ms: u64,
    /// Token presented to `--token`-protected workers.
    pub token: Option<String>,
}

impl Default for FedConfig {
    fn default() -> Self {
        Self { workers: Vec::new(), retries: 1, timeout_ms: 5_000, token: None }
    }
}

/// Id payload of one shard's response.
pub(crate) enum ShardIds {
    Edges(Vec<EdgeId>),
    Vertices(Vec<VertexId>),
}

/// One successfully served shard, as reported in the response's
/// `federation.workers` array.
pub(crate) struct ShardReport {
    pub addr: String,
    pub shard: usize,
    pub attempts: u64,
    pub checksum: String,
    pub ms: f64,
    pub ids: ShardIds,
}

/// Everything one fan-out needs, borrowed from the dispatching request.
pub(crate) struct FanOut<'a> {
    pub cfg: &'a FedConfig,
    /// The daemon's metrics registry (`fed.*` counters land here).
    pub registry: &'a sg_obs::Registry,
    /// Catalog name of the graph, shared by coordinator and workers.
    pub graph: &'a str,
    /// The coordinator's provenance for the graph (its load path) —
    /// forwarded to workers that don't have the replica yet.
    pub source: &'a str,
    /// Hex digest of the coordinator's copy; every shard must match.
    pub local_checksum: &'a str,
    /// Resolved single-stage spec text.
    pub spec: &'a str,
    pub seed: u64,
    /// Request trace id, re-installed inside each fan-out thread so the
    /// per-shard spans correlate with the request's.
    pub trace_id: &'a str,
}

enum ShardError {
    /// Worth another attempt on the next worker in the ring.
    Transient(String),
    /// The worker computed against different bytes; retrying other
    /// workers could silently mask a split-brain catalog, so this is
    /// fatal for the whole request.
    DigestMismatch(String),
}

/// Fans one federated request out to the workers, one thread per shard,
/// and collects per-shard reports in shard order. Errors map to the
/// stable codes `fed-shard-failed` / `fed-digest-mismatch`.
pub(crate) fn fan_out(job: &FanOut<'_>) -> Result<Vec<ShardReport>, ProtoError> {
    let shards = job.cfg.workers.len();
    job.registry.counter("fed.shards").add(shards as u64);
    let slots: Vec<Mutex<Option<Result<ShardReport, ShardError>>>> =
        (0..shards).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (shard, slot) in slots.iter().enumerate() {
            scope.spawn(move || {
                let _trace = sg_obs::trace::set_trace_id(job.trace_id);
                let result = run_shard(job, shard, shards);
                *slot.lock().expect("fan-out slot poisoned") = Some(result);
            });
        }
    });
    let mut reports = Vec::with_capacity(shards);
    for (shard, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().expect("fan-out slot poisoned") {
            Some(Ok(report)) => reports.push(report),
            Some(Err(ShardError::DigestMismatch(message))) => {
                job.registry.counter("fed.digest_mismatches").inc();
                return Err(ProtoError::new(ErrorCode::FedDigestMismatch, message));
            }
            Some(Err(ShardError::Transient(message))) => {
                job.registry.counter("fed.failures").inc();
                return Err(ProtoError::new(
                    ErrorCode::FedShardFailed,
                    format!(
                        "shard {shard}/{shards} failed on every worker \
                         (last error: {message})"
                    ),
                ));
            }
            None => unreachable!("every shard thread fills its slot"),
        }
    }
    Ok(reports)
}

/// Runs one shard with the bounded retry walk over the worker ring.
fn run_shard(job: &FanOut<'_>, shard: usize, shards: usize) -> Result<ShardReport, ShardError> {
    let mut span = sg_obs::span!("fed.shard", shard = shard);
    let mut last = String::new();
    for attempt in 0..=job.cfg.retries {
        let addr = &job.cfg.workers[(shard + attempt) % job.cfg.workers.len()];
        if attempt > 0 {
            job.registry.counter("fed.retries").inc();
        }
        match attempt_shard(job, addr, shard, shards) {
            Ok(mut report) => {
                report.attempts = attempt as u64 + 1;
                job.registry.histogram("fed.shard_ms").observe_ms(report.ms);
                if span.is_recording() {
                    span.arg("addr", report.addr.as_str());
                    span.arg("attempts", report.attempts.to_string());
                }
                return Ok(report);
            }
            Err(ShardError::Transient(message)) => last = message,
            Err(fatal) => return Err(fatal),
        }
    }
    Err(ShardError::Transient(last))
}

/// One attempt: connect, `shard_run`, lazily `load` the replica when the
/// worker doesn't know the graph, verify the replica digest, parse ids.
fn attempt_shard(
    job: &FanOut<'_>,
    addr: &str,
    shard: usize,
    shards: usize,
) -> Result<ShardReport, ShardError> {
    let started = Instant::now();
    let timeout = Duration::from_millis(job.cfg.timeout_ms.max(1));
    let transient =
        |stage: &str, detail: String| ShardError::Transient(format!("{addr}: {stage}: {detail}"));
    let mut client = Client::connect_with_patience(addr, timeout)
        .map_err(|e| transient("connect", e.to_string()))?;
    client.set_timeout(Some(timeout)).map_err(|e| transient("timeout setup", e.to_string()))?;
    client.set_token(job.cfg.token.clone());
    let request = Client::request_for("shard_run")
        .with("id", Json::str(format!("{}/s{shard}", job.trace_id)))
        .with("graph", Json::str(job.graph))
        .with("spec", Json::str(job.spec))
        .with("seed", Json::u64(job.seed))
        .with("shard", Json::u64(shard as u64))
        .with("shards", Json::u64(shards as u64));
    let mut response = client.request(&request).map_err(|e| transient("shard_run", e))?;
    if error_code(&response) == Some("unknown-graph") {
        // Lazy replica distribution: hand the worker the coordinator's
        // source path, then retry once on this connection.
        let load = Client::request_for("load")
            .with("name", Json::str(job.graph))
            .with("path", Json::str(job.source));
        let loaded = client.request(&load).map_err(|e| transient("load", e))?;
        if !is_ok(&loaded) {
            return Err(transient("load", error_message(&loaded)));
        }
        response = client.request(&request).map_err(|e| transient("shard_run", e))?;
    }
    if !is_ok(&response) {
        return Err(transient("shard_run", error_message(&response)));
    }
    let checksum = response.get("checksum").and_then(Json::as_str).unwrap_or("").to_string();
    if checksum != job.local_checksum {
        return Err(ShardError::DigestMismatch(format!(
            "worker {addr} replica of '{}' digests to {checksum}, \
             coordinator's copy is {} — refusing to merge shards of different graphs",
            job.graph, job.local_checksum
        )));
    }
    let raw = response
        .get("ids")
        .and_then(Json::as_arr)
        .ok_or_else(|| transient("shard_run", "response carries no 'ids' array".to_string()))?;
    let mut ids: Vec<u64> = Vec::with_capacity(raw.len());
    for v in raw {
        ids.push(
            v.as_u64()
                .ok_or_else(|| transient("shard_run", format!("non-numeric id {}", v.render())))?,
        );
    }
    let ids = match response.get("kind").and_then(Json::as_str) {
        Some("edges") => ShardIds::Edges(ids.into_iter().map(|e| e as EdgeId).collect()),
        Some("vertices") => ShardIds::Vertices(ids.into_iter().map(|v| v as VertexId).collect()),
        other => {
            return Err(transient("shard_run", format!("unknown shard kind {other:?}")));
        }
    };
    Ok(ShardReport {
        addr: addr.to_string(),
        shard,
        attempts: 0, // filled by the retry loop
        checksum,
        ms: started.elapsed().as_secs_f64() * 1e3,
        ids,
    })
}

/// Merges shard id lists into the final graph: union, sort, dedup, then
/// one [`sg_dist::apply_edge_deletions`] / [`sg_dist::apply_vertex_removals`]
/// against the coordinator's copy — exactly the reconstruction the
/// `federation_shards_union_to_the_local_result` test proves bit-identical
/// to `scheme.apply`.
pub(crate) fn merge_reports(
    g: &CsrGraph,
    reports: &[ShardReport],
) -> (CsrGraph, Option<Vec<Option<VertexId>>>) {
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut vertices: Vec<VertexId> = Vec::new();
    let mut vertex_kind = false;
    for report in reports {
        match &report.ids {
            ShardIds::Edges(d) => edges.extend_from_slice(d),
            ShardIds::Vertices(v) => {
                vertex_kind = true;
                vertices.extend_from_slice(v);
            }
        }
    }
    if vertex_kind {
        vertices.sort_unstable();
        vertices.dedup();
        let (merged, mapping) = sg_dist::apply_vertex_removals(g, &vertices);
        (merged, Some(mapping))
    } else {
        edges.sort_unstable();
        edges.dedup();
        (sg_dist::apply_edge_deletions(g, &edges), None)
    }
}

/// The `federation` response block of a federated run.
pub(crate) fn federation_block(reports: &[ShardReport]) -> Json {
    let workers: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::obj()
                .with("addr", Json::str(r.addr.clone()))
                .with("shard", Json::u64(r.shard as u64))
                .with("attempts", Json::u64(r.attempts))
                .with("checksum", Json::str(r.checksum.clone()))
                .with("ms", Json::f64(r.ms))
        })
        .collect();
    Json::obj()
        .with("mode", Json::str("federated"))
        .with("shards", Json::u64(reports.len() as u64))
        .with("workers", Json::Arr(workers))
}

/// The `federation` response block of a coordinator-local fallback run.
pub(crate) fn local_block(reason: &str) -> Json {
    Json::obj().with("mode", Json::str("local")).with("reason", Json::str(reason))
}

/// Liveness probe used by the `federation` status op: connect + `ping`
/// within `timeout`.
pub(crate) fn probe_worker(addr: &str, timeout: Duration, token: Option<&str>) -> bool {
    let Ok(mut client) = Client::connect_with_patience(addr, timeout) else {
        return false;
    };
    if client.set_timeout(Some(timeout)).is_err() {
        return false;
    }
    client.set_token(token.map(str::to_string));
    client.request(&Client::request_for("ping")).is_ok_and(|r| is_ok(&r))
}

fn is_ok(response: &Json) -> bool {
    response.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(response: &Json) -> Option<&str> {
    response.get("error").and_then(|e| e.get("code")).and_then(Json::as_str)
}

fn error_message(response: &Json) -> String {
    match response.get("error") {
        Some(err) => {
            let code = err.get("code").and_then(Json::as_str).unwrap_or("unknown");
            let message = err.get("message").and_then(Json::as_str).unwrap_or("");
            format!("[{code}] {message}")
        }
        None => "worker replied without an error object".to_string(),
    }
}
