//! A small blocking protocol client, shared by `slimgraph client`, the
//! integration tests, and the CI smoke script.

use crate::b64;
use crate::json::Json;
use crate::net::Stream;
use crate::proto::PROTOCOL_VERSION;
use crate::server::graph_digest;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Default chunk payload size for [`Client::upload`]: 256 KiB of raw
/// bytes per frame (~341 KiB base64), comfortably under the daemon's
/// default 4 MiB frame cap.
pub const DEFAULT_UPLOAD_CHUNK: usize = 256 << 10;

/// One protocol connection. Requests are answered in order; every call
/// writes one line and blocks for one response line.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    token: Option<String>,
}

impl Client {
    /// Connects to `addr` (`host:port` or `unix:/path`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = Stream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, token: None })
    }

    /// [`Client::connect`] retrying for up to `patience` (for scripts that
    /// race a freshly spawned daemon's bind).
    pub fn connect_with_patience(addr: &str, patience: Duration) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Attaches the auth token sent (by [`Client::request`]) with every
    /// subsequent request against a `--token`-protected daemon.
    pub fn set_token(&mut self, token: Option<String>) {
        self.token = token;
    }

    /// Bounds every subsequent read and write on this connection.
    /// `None` restores fully blocking I/O. The federation coordinator
    /// sets this so a hung worker turns into a retryable I/O error
    /// instead of stalling the whole request.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.trim().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending request: {e}"))?;
        let mut response = String::new();
        let n =
            self.reader.read_line(&mut response).map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response.trim().to_string())
    }

    /// Sends a request value and parses the response. The configured
    /// token (if any) is injected unless the request already carries one.
    pub fn request(&mut self, request: &Json) -> Result<Json, String> {
        let line = match &self.token {
            Some(token) if request.get("token").is_none() => {
                request.clone().with("token", Json::str(token.clone())).render()
            }
            _ => request.render(),
        };
        let line = self.request_line(&line)?;
        Json::parse(&line).map_err(|e| format!("invalid response JSON: {e} in {line}"))
    }

    /// Builds a request envelope for `op` (protocol version included).
    pub fn request_for(op: &str) -> Json {
        Json::obj().with("v", Json::u64(PROTOCOL_VERSION)).with("op", Json::str(op))
    }

    /// Uploads the graph file at `path` into the daemon's catalog as
    /// `name` via the chunked v2 `upload` op: the graph is loaded
    /// locally to compute the expected [`graph_digest`], the raw file
    /// bytes are streamed in `chunk_bytes`-sized base64 frames (resuming
    /// from the server's reported offset when a previous attempt was cut
    /// off), and the commit response — returned here — proves the
    /// daemon's copy digests identically. `format` names the file's
    /// storage format (`text`/`bin`/`sgr`), else it is inferred from
    /// `path`.
    pub fn upload(
        &mut self,
        name: &str,
        path: &str,
        format: Option<&str>,
        chunk_bytes: usize,
    ) -> Result<Json, String> {
        let graph = sg_core::catalog::load_graph(path, format, false)?;
        let digest = format!("{:016x}", graph_digest(&graph));
        drop(graph);
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        // The declared format must survive the server-side reload of the
        // spool (whose temp path has no useful extension), so resolve it
        // from the path now rather than letting the server guess.
        let format = match sg_core::GraphFormat::resolve(path, format)? {
            sg_core::GraphFormat::Text => "text",
            sg_core::GraphFormat::Bin => "bin",
            sg_core::GraphFormat::Sgr => "sgr",
        };
        let begin = self.request(
            &Client::request_for("upload")
                .with("name", Json::str(name))
                .with("phase", Json::str("begin"))
                .with("total_bytes", Json::u64(bytes.len() as u64))
                .with("digest", Json::str(digest))
                .with("format", Json::str(format)),
        )?;
        if begin.get("ok") != Some(&Json::Bool(true)) {
            return Ok(begin); // surface the server's error envelope
        }
        let mut offset = begin.get("offset").and_then(Json::as_u64).unwrap_or(0) as usize;
        let chunk_bytes = chunk_bytes.max(1);
        while offset < bytes.len() {
            let end = (offset + chunk_bytes).min(bytes.len());
            let response = self.request(
                &Client::request_for("upload")
                    .with("name", Json::str(name))
                    .with("phase", Json::str("chunk"))
                    .with("offset", Json::u64(offset as u64))
                    .with("data", Json::str(b64::encode(&bytes[offset..end]))),
            )?;
            if response.get("ok") != Some(&Json::Bool(true)) {
                return Ok(response);
            }
            offset = response.get("received").and_then(Json::as_u64).unwrap_or(end as u64) as usize;
        }
        self.request(
            &Client::request_for("upload")
                .with("name", Json::str(name))
                .with("phase", Json::str("commit")),
        )
    }
}
