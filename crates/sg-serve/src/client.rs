//! A small blocking protocol client, shared by `slimgraph client`, the
//! integration tests, and the CI smoke script.

use crate::json::Json;
use crate::net::Stream;
use crate::proto::PROTOCOL_VERSION;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// One protocol connection. Requests are answered in order; every call
/// writes one line and blocks for one response line.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to `addr` (`host:port` or `unix:/path`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = Stream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// [`Client::connect`] retrying for up to `patience` (for scripts that
    /// race a freshly spawned daemon's bind).
    pub fn connect_with_patience(addr: &str, patience: Duration) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.trim().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending request: {e}"))?;
        let mut response = String::new();
        let n =
            self.reader.read_line(&mut response).map_err(|e| format!("reading response: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response.trim().to_string())
    }

    /// Sends a request value and parses the response.
    pub fn request(&mut self, request: &Json) -> Result<Json, String> {
        let line = self.request_line(&request.render())?;
        Json::parse(&line).map_err(|e| format!("invalid response JSON: {e} in {line}"))
    }

    /// Builds a request envelope for `op` (protocol version included).
    pub fn request_for(op: &str) -> Json {
        Json::obj().with("v", Json::u64(PROTOCOL_VERSION)).with("op", Json::str(op))
    }
}
