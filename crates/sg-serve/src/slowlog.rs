//! The in-daemon slow-request log: a bounded ring of structured records
//! for requests whose service time met the `--slow-ms` threshold.
//!
//! Chrome traces answer "what did the process do"; the slowlog answers
//! "which *requests* were slow, and what did each one cost" — op, trace
//! id, queue wait, service time, and how much of the pipeline ran vs
//! came from the stage cache — without tracing enabled and without
//! shipping a trace file. The ring keeps the **newest** `capacity`
//! records (old outliers age out; recent ones are what an operator
//! debugging a live daemon wants) and a total counter preserves how
//! many qualified overall.
//!
//! A threshold of `0` records every request — the standard way to
//! "inject" slow requests in tests and to produce a complete request
//! log artifact from a bench run. The log is observation-only: nothing
//! reads it but the v2 `slowlog` op.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default service-time threshold (milliseconds).
pub const DEFAULT_SLOW_MS: u64 = 500;

/// Default ring capacity (records kept).
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 128;

/// One slow request, as captured at response time.
#[derive(Debug, Clone)]
pub struct SlowRecord {
    /// Monotone per-daemon sequence number (1-based, assigned at
    /// insert); gaps relative to `recorded` reveal aged-out records.
    pub seq: u64,
    /// The request op (`compress`, `analyze`, …; `invalid` for parse
    /// failures).
    pub op: String,
    /// The request's trace id — the same id its `serve.request` /
    /// `session.run` / `session.stage` spans carry.
    pub trace_id: String,
    /// Quota/identity peer of the connection.
    pub peer: String,
    /// The graph the request targeted, when it named one.
    pub graph: Option<String>,
    pub ok: bool,
    /// How long the *connection* waited for a worker at admission (the
    /// same value the `serve.queue_wait_ms` histogram observed); later
    /// requests on a kept-alive connection inherit it.
    pub queue_wait_ms: f64,
    /// Parse + dispatch + render time of this request.
    pub service_ms: f64,
    /// Pipeline stages actually executed (ops that report them).
    pub stages_executed: Option<u64>,
    /// Pipeline stages served from the stage cache.
    pub stages_cached: Option<u64>,
    /// Daemon uptime when the record was captured (orders records
    /// across the ring without wall-clock timestamps).
    pub uptime_ms: u64,
}

impl SlowRecord {
    /// The record as one `slowlog` response entry.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .with("seq", Json::u64(self.seq))
            .with("op", Json::str(self.op.clone()))
            .with("trace", Json::str(self.trace_id.clone()))
            .with("peer", Json::str(self.peer.clone()))
            .with("ok", Json::Bool(self.ok))
            .with("queue_wait_ms", Json::f64(self.queue_wait_ms))
            .with("service_ms", Json::f64(self.service_ms))
            .with("uptime_ms", Json::u64(self.uptime_ms));
        if let Some(graph) = &self.graph {
            obj = obj.with("graph", Json::str(graph.clone()));
        }
        if let Some(n) = self.stages_executed {
            obj = obj.with("stages_executed", Json::u64(n));
        }
        if let Some(n) = self.stages_cached {
            obj = obj.with("stages_cached", Json::u64(n));
        }
        obj
    }
}

struct Inner {
    ring: VecDeque<SlowRecord>,
    /// Total qualifying requests ever recorded (monotone; `>= ring.len()`).
    total: u64,
}

/// The bounded ring itself. One per daemon, shared by all workers; the
/// lock is taken only for qualifying requests and `slowlog` reads, so
/// the fast path (a request under the threshold) costs one float
/// compare.
pub struct SlowLog {
    slow_ms: u64,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SlowLog {
    /// A log capturing requests with `service_ms >= slow_ms`, keeping
    /// the newest `capacity` records (clamped to ≥ 1).
    pub fn new(slow_ms: u64, capacity: usize) -> SlowLog {
        SlowLog {
            slow_ms,
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { ring: VecDeque::new(), total: 0 }),
        }
    }

    /// The configured threshold (ms).
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// The ring bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a request of this service time belongs in the log
    /// (threshold 0 admits everything).
    pub fn qualifies(&self, service_ms: f64) -> bool {
        service_ms >= self.slow_ms as f64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts a record (its `seq` is assigned here), evicting the
    /// oldest when the ring is full.
    pub fn record(&self, mut record: SlowRecord) {
        let mut inner = self.lock();
        inner.total += 1;
        record.seq = inner.total;
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(record);
    }

    /// The retained records (oldest first) and the monotone total of
    /// everything ever recorded.
    pub fn snapshot(&self) -> (Vec<SlowRecord>, u64) {
        let inner = self.lock();
        (inner.ring.iter().cloned().collect(), inner.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: &str, service_ms: f64) -> SlowRecord {
        SlowRecord {
            seq: 0,
            op: op.to_string(),
            trace_id: format!("t-{op}"),
            peer: "unit".to_string(),
            graph: None,
            ok: true,
            queue_wait_ms: 0.25,
            service_ms,
            stages_executed: Some(2),
            stages_cached: Some(1),
            uptime_ms: 10,
        }
    }

    #[test]
    fn threshold_zero_admits_everything() {
        let log = SlowLog::new(0, 4);
        assert!(log.qualifies(0.0));
        let log = SlowLog::new(100, 4);
        assert!(!log.qualifies(99.9));
        assert!(log.qualifies(100.0));
    }

    #[test]
    fn ring_keeps_newest_and_counts_total() {
        let log = SlowLog::new(0, 3);
        for i in 0..7 {
            log.record(rec(&format!("op{i}"), i as f64));
        }
        let (records, total) = log.snapshot();
        assert_eq!(total, 7);
        assert_eq!(records.len(), 3, "bounded at capacity");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7], "newest retained, oldest aged out");
    }

    #[test]
    fn record_renders_optional_fields() {
        let json = rec("compress", 12.5).to_json();
        assert_eq!(json.get("op").and_then(Json::as_str), Some("compress"));
        assert_eq!(json.get("trace").and_then(Json::as_str), Some("t-compress"));
        assert_eq!(json.get("stages_executed").and_then(Json::as_u64), Some(2));
        let mut bare = rec("ping", 1.0);
        bare.stages_executed = None;
        bare.stages_cached = None;
        let json = bare.to_json();
        assert!(json.get("stages_executed").is_none());
        assert!(json.get("graph").is_none());
    }
}
