//! Server-side state of chunked client graph uploads.
//!
//! An upload is a named slot spooling bytes to a temp file: `begin`
//! opens (or resumes) it, `chunk` appends at an explicit offset,
//! `commit` hands the finished spool to the serve layer for
//! digest-verified catalog registration, `abort` drops it. Slots are
//! **owned by one connection** at a time; when that connection dies the
//! slot is orphaned with a timestamp and reaped after the configured
//! grace period. A grace of zero means partial uploads die with their
//! connection; a non-zero grace lets a client reconnect, re-`begin`
//! with the same `(total_bytes, digest)`, learn the current offset from
//! the response, and resume where the wire cut out.

use crate::proto::{ErrorCode, ProtoError};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Distinguishes spool dirs of multiple servers in one process (tests
/// spin up several daemons concurrently).
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

struct Slot {
    total_bytes: u64,
    digest: String,
    format: Option<String>,
    peer: String,
    received: u64,
    /// Connection currently driving the upload; `None` once orphaned.
    owner: Option<u64>,
    orphaned_at: Option<Instant>,
    file: File,
    path: PathBuf,
}

/// A committed upload, ready for load + digest verification.
pub struct FinishedUpload {
    /// Spool file holding the complete uploaded bytes (deleted by
    /// [`UploadRegistry::discard_spool`] once loaded).
    pub path: PathBuf,
    /// Declared fnv1a graph digest (16 hex digits) to verify against.
    pub digest: String,
    /// Declared storage format of the spooled bytes.
    pub format: Option<String>,
    /// Peer that paid for the upload (quota accounting).
    pub peer: String,
    /// Total bytes transferred.
    pub total_bytes: u64,
}

/// Stats-visible view of one pending upload.
pub struct UploadInfo {
    /// Catalog name the upload targets.
    pub name: String,
    /// Uploading peer.
    pub peer: String,
    /// Bytes received so far.
    pub received: u64,
    /// Declared total.
    pub total_bytes: u64,
    /// Whether the owning connection has disconnected.
    pub orphaned: bool,
}

/// All pending uploads of one daemon, plus their spool directory.
pub struct UploadRegistry {
    dir: PathBuf,
    grace: Duration,
    slots: Mutex<BTreeMap<String, Slot>>,
}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError::new(ErrorCode::BadRequest, message)
}

impl UploadRegistry {
    /// A registry spooling under a fresh per-daemon temp directory.
    /// `grace` is how long a disconnected client's partial upload
    /// survives for resumption.
    pub fn new(grace: Duration) -> std::io::Result<UploadRegistry> {
        let dir = std::env::temp_dir().join(format!(
            "sg-serve-uploads-{}-{}",
            std::process::id(),
            NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(UploadRegistry { dir, grace, slots: Mutex::new(BTreeMap::new()) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a fresh slot, or resumes an orphaned/owned one declaring
    /// identical `(total_bytes, digest)`. Returns the offset the client
    /// should continue from (0 for a fresh slot).
    pub fn begin(
        &self,
        conn: u64,
        peer: &str,
        name: &str,
        total_bytes: u64,
        digest: &str,
        format: Option<&str>,
    ) -> Result<u64, ProtoError> {
        self.reap();
        if name.is_empty() {
            return Err(bad("upload name must be non-empty"));
        }
        let mut slots = self.lock();
        if let Some(slot) = slots.get_mut(name) {
            if slot.owner.is_some() && slot.owner != Some(conn) {
                return Err(bad(format!("upload '{name}' is in progress on another connection")));
            }
            if slot.total_bytes == total_bytes && slot.digest == digest {
                // Resume: adopt the slot and report where to continue.
                slot.owner = Some(conn);
                slot.orphaned_at = None;
                slot.peer = peer.to_string();
                return Ok(slot.received);
            }
            // Same name, different content: restart from scratch.
            let slot = slots.remove(name).expect("slot just found");
            let _ = std::fs::remove_file(&slot.path);
        }
        let path = self.dir.join(format!("{}.spool", fnv1a_name(name)));
        let file =
            OpenOptions::new().create(true).write(true).truncate(true).open(&path).map_err(
                |e| ProtoError::new(ErrorCode::Io, format!("opening upload spool: {e}")),
            )?;
        slots.insert(
            name.to_string(),
            Slot {
                total_bytes,
                digest: digest.to_string(),
                format: format.map(str::to_string),
                peer: peer.to_string(),
                received: 0,
                owner: Some(conn),
                orphaned_at: None,
                file,
                path,
            },
        );
        Ok(0)
    }

    /// Appends `data` at `offset`, which must equal the bytes received so
    /// far (chunks already received — a resume overlap — are ignored).
    /// Returns the new received count.
    pub fn chunk(
        &self,
        conn: u64,
        name: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<u64, ProtoError> {
        let mut slots = self.lock();
        let slot = slots
            .get_mut(name)
            .ok_or_else(|| bad(format!("no upload '{name}' in progress (begin first)")))?;
        if slot.owner != Some(conn) {
            return Err(bad(format!(
                "upload '{name}' is not owned by this connection (resume with begin)"
            )));
        }
        if offset + data.len() as u64 <= slot.received {
            return Ok(slot.received); // duplicate after resume — already have it
        }
        if offset != slot.received {
            return Err(bad(format!(
                "chunk offset {offset} does not match received {} (chunks are in-order)",
                slot.received
            )));
        }
        if slot.received + data.len() as u64 > slot.total_bytes {
            return Err(bad(format!(
                "chunk overruns declared total_bytes {} (received {}, chunk {})",
                slot.total_bytes,
                slot.received,
                data.len()
            )));
        }
        slot.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| slot.file.write_all(data))
            .map_err(|e| ProtoError::new(ErrorCode::Io, format!("spooling chunk: {e}")))?;
        slot.received += data.len() as u64;
        Ok(slot.received)
    }

    /// Closes a complete slot and hands back the spool for verification.
    /// The slot is removed either way; the caller deletes the spool with
    /// [`UploadRegistry::discard_spool`] when done.
    pub fn commit(&self, conn: u64, name: &str) -> Result<FinishedUpload, ProtoError> {
        let mut slots = self.lock();
        let slot = slots
            .get(name)
            .ok_or_else(|| bad(format!("no upload '{name}' in progress (begin first)")))?;
        if slot.owner != Some(conn) {
            return Err(bad(format!(
                "upload '{name}' is not owned by this connection (resume with begin)"
            )));
        }
        if slot.received != slot.total_bytes {
            return Err(bad(format!(
                "upload '{name}' is incomplete: {} of {} bytes",
                slot.received, slot.total_bytes
            )));
        }
        let mut slot = slots.remove(name).expect("slot just found");
        let _ = slot.file.flush();
        Ok(FinishedUpload {
            path: slot.path,
            digest: slot.digest,
            format: slot.format,
            peer: slot.peer,
            total_bytes: slot.total_bytes,
        })
    }

    /// Drops a pending upload and its spool file.
    pub fn abort(&self, conn: u64, name: &str) -> Result<(), ProtoError> {
        let mut slots = self.lock();
        match slots.get(name) {
            None => Err(bad(format!("no upload '{name}' in progress"))),
            Some(slot) if slot.owner != Some(conn) => {
                Err(bad(format!("upload '{name}' is not owned by this connection")))
            }
            Some(_) => {
                let slot = slots.remove(name).expect("slot just found");
                let _ = std::fs::remove_file(&slot.path);
                Ok(())
            }
        }
    }

    /// Deletes a committed upload's spool file.
    pub fn discard_spool(&self, finished: &FinishedUpload) {
        let _ = std::fs::remove_file(&finished.path);
    }

    /// Marks every slot owned by `conn` as orphaned (or reaps it
    /// immediately when the grace period is zero). Called when a
    /// connection ends for any reason.
    pub fn disconnect(&self, conn: u64) {
        let mut slots = self.lock();
        if self.grace.is_zero() {
            let victims: Vec<String> = slots
                .iter()
                .filter(|(_, s)| s.owner == Some(conn))
                .map(|(n, _)| n.clone())
                .collect();
            for name in victims {
                let slot = slots.remove(&name).expect("victim just listed");
                let _ = std::fs::remove_file(&slot.path);
            }
            return;
        }
        for slot in slots.values_mut().filter(|s| s.owner == Some(conn)) {
            slot.owner = None;
            slot.orphaned_at = Some(Instant::now());
        }
    }

    /// Drops orphaned slots whose grace period has expired; returns how
    /// many were reaped.
    pub fn reap(&self) -> usize {
        let mut slots = self.lock();
        let victims: Vec<String> = slots
            .iter()
            .filter(|(_, s)| s.orphaned_at.is_some_and(|t| t.elapsed() >= self.grace))
            .map(|(n, _)| n.clone())
            .collect();
        for name in &victims {
            let slot = slots.remove(name).expect("victim just listed");
            let _ = std::fs::remove_file(&slot.path);
        }
        victims.len()
    }

    /// Stats-visible snapshot of pending uploads (reaps expired orphans
    /// first, so stats never show dead slots).
    pub fn snapshot(&self) -> Vec<UploadInfo> {
        self.reap();
        self.lock()
            .iter()
            .map(|(name, s)| UploadInfo {
                name: name.clone(),
                peer: s.peer.clone(),
                received: s.received,
                total_bytes: s.total_bytes,
                orphaned: s.owner.is_none(),
            })
            .collect()
    }
}

impl Drop for UploadRegistry {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Collision-safe spool file stem: names are client-chosen strings that
/// may contain path separators; the fnv1a hex form never does.
fn fnv1a_name(name: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(grace_ms: u64) -> UploadRegistry {
        UploadRegistry::new(Duration::from_millis(grace_ms)).expect("registry")
    }

    #[test]
    fn begin_chunk_commit_roundtrip() {
        let reg = registry(60_000);
        assert_eq!(reg.begin(1, "peer", "g", 6, "abc", None).expect("begin"), 0);
        assert_eq!(reg.chunk(1, "g", 0, b"hel").expect("chunk"), 3);
        assert_eq!(reg.chunk(1, "g", 3, b"lo!").expect("chunk"), 6);
        let done = reg.commit(1, "g").expect("commit");
        assert_eq!(std::fs::read(&done.path).expect("spool"), b"hello!");
        reg.discard_spool(&done);
        assert!(!done.path.exists());
    }

    #[test]
    fn out_of_order_overrun_and_incomplete_are_rejected() {
        let reg = registry(60_000);
        reg.begin(1, "peer", "g", 4, "abc", None).expect("begin");
        assert!(reg.chunk(1, "g", 2, b"xy").is_err(), "gap rejected");
        assert!(reg.chunk(1, "g", 0, b"toolong").is_err(), "overrun rejected");
        reg.chunk(1, "g", 0, b"ab").expect("chunk");
        assert!(reg.commit(1, "g").is_err(), "incomplete commit rejected");
        // Another connection cannot touch the live slot.
        assert!(reg.chunk(2, "g", 2, b"cd").is_err());
        assert!(reg.begin(2, "peer", "g", 4, "abc", None).is_err());
    }

    #[test]
    fn disconnect_with_zero_grace_reaps_immediately() {
        let reg = registry(0);
        reg.begin(7, "peer", "g", 4, "abc", None).expect("begin");
        reg.chunk(7, "g", 0, b"ab").expect("chunk");
        reg.disconnect(7);
        assert!(reg.snapshot().is_empty(), "slot reaped with its connection");
        assert!(reg.begin(8, "peer", "g", 4, "abc", None).is_ok(), "name is free again");
        // Resume-begin on the *new* slot starts over (old bytes are gone).
        assert_eq!(reg.snapshot()[0].received, 0);
    }

    #[test]
    fn orphaned_slot_resumes_within_grace() {
        let reg = registry(60_000);
        reg.begin(7, "peer", "g", 4, "abc", None).expect("begin");
        reg.chunk(7, "g", 0, b"ab").expect("chunk");
        reg.disconnect(7);
        assert!(reg.snapshot()[0].orphaned);
        // A fresh connection with matching (total, digest) adopts at the
        // recorded offset; duplicate chunks are tolerated.
        assert_eq!(reg.begin(8, "peer", "g", 4, "abc", None).expect("resume"), 2);
        assert_eq!(reg.chunk(8, "g", 0, b"ab").expect("dup"), 2);
        assert_eq!(reg.chunk(8, "g", 2, b"cd").expect("tail"), 4);
        let done = reg.commit(8, "g").expect("commit");
        assert_eq!(std::fs::read(&done.path).expect("spool"), b"abcd");
        reg.discard_spool(&done);
    }

    #[test]
    fn expired_orphans_are_reaped() {
        let reg = registry(20);
        reg.begin(7, "peer", "g", 4, "abc", None).expect("begin");
        reg.disconnect(7);
        std::thread::sleep(Duration::from_millis(40));
        assert!(reg.snapshot().is_empty(), "grace expired");
    }
}
