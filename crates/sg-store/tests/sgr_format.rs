//! `.sgr` container conformance: round-trips across every graph shape,
//! zero-copy guarantees of the mmap loader, and rejection of corrupt,
//! truncated, misaligned, and hostile files.

use sg_store::format::{self, SectionId};
use sg_store::{
    load_sgr, load_sgr_bytes, load_sgr_bytes_with, load_sgr_with, save_sgr, to_sgr_bytes,
    MmapGraph, Verify,
};

use sg_graph::{generators, CsrGraph, EdgeList};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sg-store-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Structural equality: flags, counts, canonical edges, weight bits, and
/// the adjacency views the algorithms consume.
fn assert_same_graph(a: &CsrGraph, b: &CsrGraph) {
    assert_eq!(a.is_directed(), b.is_directed());
    assert_eq!(a.is_weighted(), b.is_weighted());
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.edge_slice(), b.edge_slice());
    let bits =
        |g: &CsrGraph| g.weight_slice().map(|w| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    assert_eq!(bits(a), bits(b), "weights must round-trip bit-identically");
    for v in 0..a.num_vertices() as u32 {
        assert_eq!(a.neighbors(v), b.neighbors(v));
        assert_eq!(a.neighbor_edge_ids(v), b.neighbor_edge_ids(v));
        assert_eq!(a.in_neighbors(v), b.in_neighbors(v));
    }
}

#[test]
fn roundtrip_unweighted_undirected() {
    let g = generators::erdos_renyi(500, 2000, 1);
    let h = load_sgr_bytes(&to_sgr_bytes(&g)).expect("load");
    assert_same_graph(&g, &h);
}

#[test]
fn roundtrip_weighted_undirected() {
    let g = generators::with_random_weights(&generators::barabasi_albert(300, 4, 2), 0.5, 9.5, 3);
    let h = load_sgr_bytes(&to_sgr_bytes(&g)).expect("load");
    assert_same_graph(&g, &h);
}

#[test]
fn roundtrip_directed_graphs() {
    let el = EdgeList::from_pairs(6, vec![(0, 1), (1, 2), (2, 0), (3, 1), (4, 5), (5, 4)]);
    let g = CsrGraph::from_edge_list_directed(el);
    let h = load_sgr_bytes(&to_sgr_bytes(&g)).expect("load");
    assert_same_graph(&g, &h);

    let wel = EdgeList::from_weighted(4, vec![(0u32, 1u32, 1.5f32), (1, 0, 2.5), (2, 3, 0.25)]);
    let gw = CsrGraph::from_edge_list_directed(wel);
    let hw = load_sgr_bytes(&to_sgr_bytes(&gw)).expect("load");
    assert_same_graph(&gw, &hw);
}

#[test]
fn roundtrip_empty_and_isolated() {
    let empty = CsrGraph::from_pairs(0, &[]);
    assert_same_graph(&empty, &load_sgr_bytes(&to_sgr_bytes(&empty)).expect("load empty"));
    let isolated = CsrGraph::from_pairs(10, &[(0, 1)]);
    assert_same_graph(&isolated, &load_sgr_bytes(&to_sgr_bytes(&isolated)).expect("load isolated"));
}

#[test]
fn file_roundtrip_reports_size() {
    let g = generators::erdos_renyi(100, 400, 4);
    let path = tmp("size.sgr");
    let written = save_sgr(&g, &path).expect("save");
    let on_disk = std::fs::metadata(&path).expect("stat").len();
    assert_eq!(written, on_disk);
    assert_eq!(on_disk % 8, 0, ".sgr files stay 8-byte aligned end to end");
    assert_same_graph(&g, &load_sgr(&path).expect("load"));
}

#[test]
fn mmap_loader_is_zero_copy_and_matches_heap() {
    let g = generators::with_random_weights(&generators::erdos_renyi(400, 1600, 5), 1.0, 2.0, 6);
    let path = tmp("zero-copy.sgr");
    save_sgr(&g, &path).expect("save");

    let heap = load_sgr(&path).expect("heap load");
    let mapped = MmapGraph::open(&path).expect("mmap load");
    assert_same_graph(&heap, &mapped);
    assert_same_graph(&g, &mapped);

    // The acceptance criterion: no CSR section was copied out of the file.
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    {
        assert!(mapped.is_zero_copy(), "all sections must borrow from the mapping");
        assert!(!heap.is_fully_mapped(), "heap loader owns its sections");
    }

    // The mapping survives `into_graph`, clones, and the original's drop.
    let owned_view = mapped.into_graph();
    let cloned = owned_view.clone();
    drop(owned_view);
    assert_eq!(cloned.edge_slice(), g.edge_slice());
    assert_eq!(cloned.degree(0), g.degree(0));
}

#[test]
fn mmap_loader_handles_directed_graphs() {
    let el = EdgeList::from_pairs(50, (0..49u32).map(|i| (i, i + 1)));
    let g = CsrGraph::from_edge_list_directed(el);
    let path = tmp("directed.sgr");
    save_sgr(&g, &path).expect("save");
    let mapped = MmapGraph::open(&path).expect("mmap load");
    assert_same_graph(&g, &mapped);
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    assert!(mapped.is_zero_copy());
}

// --- rejection tests ------------------------------------------------------

fn valid_image() -> Vec<u8> {
    to_sgr_bytes(&generators::erdos_renyi(64, 256, 9))
}

#[test]
fn rejects_bad_magic_version_flags() {
    let img = valid_image();

    let mut bad_magic = img.clone();
    bad_magic[0] ^= 0xFF;
    assert!(load_sgr_bytes(&bad_magic).is_err(), "magic");

    let mut bad_version = img.clone();
    bad_version[8] = 99;
    assert!(load_sgr_bytes(&bad_version).is_err(), "version");

    let mut bad_flags = img.clone();
    bad_flags[12] |= 0x80; // unknown flag bit
    assert!(load_sgr_bytes(&bad_flags).is_err(), "flags");
}

#[test]
fn rejects_truncation_everywhere() {
    let img = valid_image();
    assert!(load_sgr_bytes(&[]).is_err());
    assert!(load_sgr_bytes(&img[..20]).is_err(), "inside header");
    assert!(load_sgr_bytes(&img[..60]).is_err(), "inside table");
    assert!(load_sgr_bytes(&img[..img.len() - 8]).is_err(), "inside last section");
}

#[test]
fn rejects_checksum_mismatch() {
    let mut img = valid_image();
    // Flip one payload byte (first byte of the first section, which follows
    // the header + 4-entry table) without touching the stored checksum.
    let payload_start = format::HEADER_LEN + 4 * format::SECTION_ENTRY_LEN;
    img[payload_start] ^= 0x01;
    let err = load_sgr_bytes(&img).expect_err("corrupt payload");
    assert!(err.to_string().contains("checksum"), "got: {err}");
}

#[test]
fn rejects_misaligned_and_mislengthed_sections() {
    let img = valid_image();

    // Entry 0 (Offsets): shift its offset by 4 — alignment violation.
    let mut misaligned = img.clone();
    let off_field = format::HEADER_LEN + 8;
    let old = u64::from_le_bytes(misaligned[off_field..off_field + 8].try_into().unwrap());
    misaligned[off_field..off_field + 8].copy_from_slice(&(old + 4).to_le_bytes());
    let err = load_sgr_bytes(&misaligned).expect_err("misaligned section");
    assert!(err.to_string().contains("align"), "got: {err}");

    // Entry 0: wrong length for (n, m).
    let mut mislen = img.clone();
    let len_field = format::HEADER_LEN + 16;
    mislen[len_field..len_field + 8].copy_from_slice(&8u64.to_le_bytes());
    assert!(load_sgr_bytes(&mislen).is_err(), "wrong section length");

    // Entry 0: id not in canonical order.
    let mut bad_id = img;
    bad_id[format::HEADER_LEN] = SectionId::Targets as u8;
    assert!(load_sgr_bytes(&bad_id).is_err(), "section order");
}

#[test]
fn rejects_hostile_counts() {
    // Huge m whose section-size computation would wrap on a hostile header.
    let mut img = valid_image();
    img[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(load_sgr_bytes(&img).is_err(), "hostile m");

    let mut img_n = valid_image();
    img_n[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(load_sgr_bytes(&img_n).is_err(), "hostile n");
}

#[test]
fn trusted_mode_skips_only_the_checksum_pass() {
    let g = generators::erdos_renyi(64, 256, 21);
    let mut img = to_sgr_bytes(&g);
    // Sanity: on an intact image, trusted and verified loads agree.
    let trusted = load_sgr_bytes_with(&img, Verify::Trusted).expect("trusted load");
    assert_same_graph(&g, &trusted);

    // Corrupt the stored *digest* only — the payload is still a perfectly
    // consistent CSR. Verified loads reject it; trusted loads (the
    // `--no-verify` path) accept it and decode the same graph.
    img[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = load_sgr_bytes(&img).expect_err("checksum mode still verifies");
    assert!(err.to_string().contains("checksum"), "got: {err}");
    let trusted = load_sgr_bytes_with(&img, Verify::Trusted).expect("trusted ignores digest");
    assert_same_graph(&g, &trusted);

    // Same behavior through the file and mmap loaders.
    let path = tmp("trusted.sgr");
    std::fs::write(&path, &img).expect("write");
    assert!(load_sgr(&path).is_err());
    assert!(MmapGraph::open(&path).is_err());
    assert_same_graph(&g, &load_sgr_with(&path, Verify::Trusted).expect("trusted file load"));
    let mapped = MmapGraph::open_with(&path, Verify::Trusted).expect("trusted mmap load");
    assert_same_graph(&g, mapped.graph());
}

#[test]
fn trusted_mode_still_rejects_structural_corruption() {
    // `--no-verify` is not "no validation": a payload that decodes into an
    // inconsistent CSR must still be rejected by from_parts, and header /
    // table damage by the toc parser.
    let g = generators::erdos_renyi(32, 100, 22);
    let mut img = to_sgr_bytes(&g);
    let toc = format::parse_toc(&img).expect("valid");
    let targets = toc.sections.iter().find(|s| s.id == SectionId::Targets).expect("present");
    let at = targets.off;
    img[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = load_sgr_bytes_with(&img, Verify::Trusted).expect_err("invalid CSR rejected");
    assert!(err.to_string().contains("invalid .sgr contents"), "got: {err}");
    let path = tmp("trusted-corrupt.sgr");
    std::fs::write(&path, &img).expect("write");
    assert!(MmapGraph::open_with(&path, Verify::Trusted).is_err());

    let mut bad_magic = to_sgr_bytes(&g);
    bad_magic[0] ^= 0xFF;
    assert!(load_sgr_bytes_with(&bad_magic, Verify::Trusted).is_err(), "magic still checked");
    assert!(load_sgr_bytes_with(&bad_magic[..20], Verify::Trusted).is_err(), "truncation");
}

#[test]
fn rejects_semantically_corrupt_payload_with_valid_checksum() {
    // An attacker (or bit rot plus a recomputed digest) can present a file
    // whose checksum verifies but whose arrays are inconsistent; the
    // CsrGraph::from_parts validation layer must reject it.
    let g = generators::erdos_renyi(32, 100, 11);
    let mut img = to_sgr_bytes(&g);
    let toc = format::parse_toc(&img).expect("valid");
    // Point the first target at a vertex far out of range.
    let targets = toc.sections.iter().find(|s| s.id == SectionId::Targets).expect("present");
    let at = targets.off;
    img[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    // Recompute and store a *valid* checksum for the corrupted payload.
    let mut h = format::checksum_seed();
    for s in &toc.sections {
        h = format::checksum_update(h, &img[s.off..s.off + s.len]);
    }
    img[32..40].copy_from_slice(&h.to_le_bytes());
    let err = load_sgr_bytes(&img).expect_err("inconsistent CSR must be rejected");
    assert!(err.to_string().contains("invalid .sgr contents"), "got: {err}");
    // The mmap loader rejects it identically.
    let path = tmp("semantic.sgr");
    std::fs::write(&path, &img).expect("write");
    assert!(MmapGraph::open(&path).is_err());
}

#[test]
fn heap_and_mmap_agree_on_every_shape() {
    let shapes: Vec<CsrGraph> = vec![
        generators::erdos_renyi(128, 512, 1),
        generators::with_random_weights(&generators::erdos_renyi(128, 512, 2), 1.0, 4.0, 3),
        CsrGraph::from_edge_list_directed(EdgeList::from_pairs(32, (0..31u32).map(|i| (i, i + 1)))),
        CsrGraph::from_pairs(0, &[]),
        CsrGraph::from_pairs(5, &[(0, 4)]),
    ];
    for (i, g) in shapes.iter().enumerate() {
        let path = tmp(&format!("shape-{i}.sgr"));
        save_sgr(g, &path).expect("save");
        let heap = load_sgr(&path).expect("heap");
        let mapped = MmapGraph::open(&path).expect("mmap");
        assert_same_graph(&heap, &mapped);
        assert_same_graph(g, &mapped);
    }
}
