//! The `.sgr` container format: header, section table, checksum, and the
//! little-endian encode/decode helpers shared by the writer and both
//! loaders.
//!
//! Layout (all integers little-endian, every section 8-byte aligned):
//!
//! ```text
//! offset  size  field
//!      0     8  magic   "SLIMSGR1"
//!      8     4  version (currently 1)
//!     12     4  flags   bit 0 = directed, bit 1 = weighted
//!     16     8  n       vertex count
//!     24     8  m       canonical edge count
//!     32     8  checksum (word-wise FNV-1a over section payloads, in order)
//!     40     4  section count
//!     44     4  reserved (0)
//!     48   24k  section table: k × { id u32, reserved u32, off u64, len u64 }
//!      …        sections, each starting 8-byte aligned, zero padding between
//! ```
//!
//! Sections appear in canonical id order and their byte lengths are fully
//! determined by `(n, m, flags)`, so a parser can validate the table without
//! trusting it. The checksum covers section payload bytes only (padding and
//! header excluded); header fields are instead structurally validated.

use std::borrow::Cow;
use std::io;

/// `"SLIMSGR1"` read as a little-endian `u64`.
pub const SGR_MAGIC: u64 = u64::from_le_bytes(*b"SLIMSGR1");
/// Container version 1: raw CSR sections.
pub const SGR_VERSION: u32 = 1;
/// Container version 2: encoded adjacency (delta+varint / bitmap rows).
/// Version-1 readers reject v2 files cleanly at the header version check.
pub const SGR_VERSION_V2: u32 = 2;
/// Directed-graph flag bit.
pub const FLAG_DIRECTED: u32 = 1;
/// Weighted-graph flag bit.
pub const FLAG_WEIGHTED: u32 = 1 << 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 48;
/// Length of one section-table entry in bytes.
pub const SECTION_ENTRY_LEN: usize = 24;

/// Seed of the checksum (the FNV-1a 64 offset basis).
const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Section identifiers, in canonical file order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Out-adjacency offsets, `u64 × (n + 1)`.
    Offsets = 1,
    /// Out-adjacency targets, `u32 × slots` (`slots = 2m` undirected, `m` directed).
    Targets = 2,
    /// Canonical edge id per out slot, `u32 × slots`.
    SlotEdges = 3,
    /// Canonical edges, `(u32, u32) × m`.
    Edges = 4,
    /// Canonical edge weights, `f32 × m` (weighted graphs only).
    Weights = 5,
    /// In-adjacency offsets, `u64 × (n + 1)` (directed only).
    InOffsets = 6,
    /// In-adjacency sources, `u32 × m` (directed only).
    InTargets = 7,
    /// Canonical edge id per in slot, `u32 × m` (directed only).
    InSlotEdges = 8,
    /// Out-row degrees, `u32 × n` (v2 only).
    Degrees = 9,
    /// Out-row byte offsets into the blob, `u64 × (n + 1)` (v2 only).
    RowIndex = 10,
    /// Concatenated encoded out-rows, variable length (v2 only).
    AdjBlob = 11,
    /// In-row degrees, `u32 × n` (v2 + directed only).
    InDegrees = 12,
    /// In-row byte offsets, `u64 × (n + 1)` (v2 + directed only).
    InRowIndex = 13,
    /// Concatenated encoded in-rows, variable length (v2 + directed only).
    InAdjBlob = 14,
}

/// The v1 section set implied by a flag combination, in canonical order.
pub fn expected_sections(directed: bool, weighted: bool) -> Vec<SectionId> {
    let mut ids =
        vec![SectionId::Offsets, SectionId::Targets, SectionId::SlotEdges, SectionId::Edges];
    if weighted {
        ids.push(SectionId::Weights);
    }
    if directed {
        ids.extend([SectionId::InOffsets, SectionId::InTargets, SectionId::InSlotEdges]);
    }
    ids
}

/// The v2 section set implied by a flag combination, in canonical
/// (ascending-id) order. v2 stores no raw targets/slot-edge/edge sections:
/// canonical edges and their ids are reconstructed from the encoded rows by
/// forward enumeration, which *is* the canonical lexicographic order.
pub fn expected_sections_v2(directed: bool, weighted: bool) -> Vec<SectionId> {
    let mut ids = Vec::new();
    if weighted {
        ids.push(SectionId::Weights);
    }
    ids.extend([SectionId::Degrees, SectionId::RowIndex, SectionId::AdjBlob]);
    if directed {
        ids.extend([SectionId::InDegrees, SectionId::InRowIndex, SectionId::InAdjBlob]);
    }
    ids
}

/// On-disk byte length of `id` for a graph with the given shape.
/// Outer `None` signals arithmetic overflow (hostile header on a small
/// platform); inner `None` marks variable-length sections (the v2 blobs),
/// whose bounds are checked against the file and whose content the encoded
/// loader validates row by row.
pub fn expected_len(id: SectionId, n: usize, m: usize, directed: bool) -> Option<Option<usize>> {
    match id {
        SectionId::Offsets | SectionId::InOffsets | SectionId::RowIndex | SectionId::InRowIndex => {
            n.checked_add(1)?.checked_mul(8).map(Some)
        }
        SectionId::Targets | SectionId::SlotEdges => {
            let slots = if directed { m } else { m.checked_mul(2)? };
            slots.checked_mul(4).map(Some)
        }
        SectionId::Edges => m.checked_mul(8).map(Some),
        SectionId::Weights | SectionId::InTargets | SectionId::InSlotEdges => {
            m.checked_mul(4).map(Some)
        }
        SectionId::Degrees | SectionId::InDegrees => n.checked_mul(4).map(Some),
        SectionId::AdjBlob | SectionId::InAdjBlob => Some(None),
    }
}

/// Updates the container checksum with one section payload. The digest is a
/// word-wise FNV-1a variant: full little-endian `u64` words are folded in at
/// once (8× fewer multiplies than byte-wise FNV at identical dispersion for
/// this use), trailing bytes byte-wise.
pub fn checksum_update(mut h: u64, bytes: &[u8]) -> u64 {
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Checksum seed (exposed so tests can recompute digests independently).
pub fn checksum_seed() -> u64 {
    FNV_SEED
}

/// One parsed section-table entry.
#[derive(Clone, Copy, Debug)]
pub struct RawSection {
    /// Section id (already matched against the canonical order).
    pub id: SectionId,
    /// Payload byte offset from the start of the file (8-aligned).
    pub off: usize,
    /// Payload byte length.
    pub len: usize,
}

/// Parsed and validated header + section table of an `.sgr` buffer.
#[derive(Clone, Debug)]
pub struct SgrToc {
    /// Directed flag.
    pub directed: bool,
    /// Weighted flag.
    pub weighted: bool,
    /// Vertex count.
    pub n: usize,
    /// Canonical edge count.
    pub m: usize,
    /// Stored checksum (verify with [`verify_checksum`]).
    pub checksum: u64,
    /// Sections in canonical order.
    pub sections: Vec<RawSection>,
}

impl SgrToc {
    /// Payload bytes of section `id`. Panics if absent — callers only ask
    /// for sections the flag validation guarantees.
    pub fn section<'d>(&self, data: &'d [u8], id: SectionId) -> &'d [u8] {
        let s = self
            .sections
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("validated toc lacks section {id:?}"));
        &data[s.off..s.off + s.len]
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn rd_u32(d: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(d[at..at + 4].try_into().expect("caller checked bounds"))
}

fn rd_u64(d: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(d[at..at + 8].try_into().expect("caller checked bounds"))
}

/// Reads the magic and version of an `.sgr` buffer without parsing the
/// rest — the dispatch point for loaders that accept both versions.
pub fn peek_version(data: &[u8]) -> io::Result<u32> {
    if data.len() < 12 {
        return Err(bad("truncated header"));
    }
    if rd_u64(data, 0) != SGR_MAGIC {
        return Err(bad("bad magic (not an .sgr file)"));
    }
    Ok(rd_u32(data, 8))
}

/// Parses and validates the header and section table of a **v1** (raw CSR)
/// `.sgr` buffer; rejects any other version, including v2.
///
/// Every field is checked against what `(n, m, flags)` imply — section ids,
/// order, byte lengths, alignment, and file bounds — with checked arithmetic
/// throughout, so a hostile header can neither wrap a bounds computation nor
/// provoke an oversized allocation.
pub fn parse_toc(data: &[u8]) -> io::Result<SgrToc> {
    parse_toc_version(data, SGR_VERSION)
}

/// [`parse_toc`] for **v2** (encoded adjacency) buffers.
pub fn parse_toc_v2(data: &[u8]) -> io::Result<SgrToc> {
    parse_toc_version(data, SGR_VERSION_V2)
}

fn parse_toc_version(data: &[u8], want_version: u32) -> io::Result<SgrToc> {
    if data.len() < HEADER_LEN {
        return Err(bad("truncated header"));
    }
    if rd_u64(data, 0) != SGR_MAGIC {
        return Err(bad("bad magic (not an .sgr file)"));
    }
    let version = rd_u32(data, 8);
    if version != want_version {
        return Err(bad(format!("unsupported .sgr version {version}")));
    }
    let flags = rd_u32(data, 12);
    if flags & !(FLAG_DIRECTED | FLAG_WEIGHTED) != 0 {
        return Err(bad(format!("unknown flag bits {flags:#x}")));
    }
    let directed = flags & FLAG_DIRECTED != 0;
    let weighted = flags & FLAG_WEIGHTED != 0;
    let n = usize::try_from(rd_u64(data, 16)).map_err(|_| bad("vertex count overflow"))?;
    let m = usize::try_from(rd_u64(data, 24)).map_err(|_| bad("edge count overflow"))?;
    // Compared in u64: `u32::MAX as usize + 1` would itself overflow on
    // 32-bit targets.
    if n as u64 > u32::MAX as u64 + 1 {
        return Err(bad("vertex count exceeds VertexId capacity"));
    }
    if m > u32::MAX as usize {
        return Err(bad("edge count exceeds EdgeId capacity"));
    }
    let checksum = rd_u64(data, 32);
    let count = rd_u32(data, 40) as usize;

    let expect = if want_version == SGR_VERSION_V2 {
        expected_sections_v2(directed, weighted)
    } else {
        expected_sections(directed, weighted)
    };
    if count != expect.len() {
        return Err(bad(format!(
            "expected {} sections for these flags, found {count}",
            expect.len()
        )));
    }
    let table_end = HEADER_LEN
        .checked_add(count.checked_mul(SECTION_ENTRY_LEN).ok_or_else(|| bad("table overflow"))?)
        .ok_or_else(|| bad("table overflow"))?;
    if data.len() < table_end {
        return Err(bad("truncated section table"));
    }

    let mut sections = Vec::with_capacity(count);
    let mut min_off = table_end;
    for (i, &id) in expect.iter().enumerate() {
        let at = HEADER_LEN + i * SECTION_ENTRY_LEN;
        if rd_u32(data, at) != id as u32 {
            return Err(bad(format!("section {i} is not {id:?} (canonical order required)")));
        }
        let off =
            usize::try_from(rd_u64(data, at + 8)).map_err(|_| bad("section offset overflow"))?;
        let len =
            usize::try_from(rd_u64(data, at + 16)).map_err(|_| bad("section length overflow"))?;
        if off % 8 != 0 {
            return Err(bad(format!("section {id:?} offset {off} not 8-byte aligned")));
        }
        if off < min_off {
            return Err(bad(format!("section {id:?} overlaps the preceding section or table")));
        }
        let end = off.checked_add(len).ok_or_else(|| bad("section bounds overflow"))?;
        if end > data.len() {
            return Err(bad(format!("section {id:?} extends past end of file")));
        }
        let want = expected_len(id, n, m, directed)
            .ok_or_else(|| bad("section size overflow for this platform"))?;
        if let Some(want) = want {
            if len != want {
                return Err(bad(format!("section {id:?} length {len}, expected {want}")));
            }
        }
        min_off = end;
        sections.push(RawSection { id, off, len });
    }
    Ok(SgrToc { directed, weighted, n, m, checksum, sections })
}

/// Verifies the stored checksum against the section payloads.
pub fn verify_checksum(data: &[u8], toc: &SgrToc) -> io::Result<()> {
    let mut h = FNV_SEED;
    for s in &toc.sections {
        h = checksum_update(h, &data[s.off..s.off + s.len]);
    }
    if h != toc.checksum {
        return Err(bad(format!(
            "checksum mismatch: stored {:#018x}, computed {h:#018x}",
            toc.checksum
        )));
    }
    Ok(())
}

// --- little-endian slice encoding -----------------------------------------

// The edge section is written and mmap-read through the same
// reinterpretation of `[(u32, u32)]`, which makes the two ends consistent on
// any tuple layout; the *owned* decoder and any foreign reader additionally
// need the nominal field order, so writing through the cast is gated on this
// probe (and on a little-endian target). Size and alignment are compile-time
// facts:
const _: () = assert!(
    std::mem::size_of::<(u32, u32)>() == 8 && std::mem::align_of::<(u32, u32)>() == 4,
    "(u32, u32) layout assumption violated"
);

/// True when `(u32, u32)` is laid out as the nominal little-endian
/// `u0 v0` byte sequence the format specifies — the gate for writing and
/// mmap-borrowing the edge section without per-element conversion.
pub fn pair_layout_is_nominal() -> bool {
    let probe: (u32, u32) = (1, 2);
    // SAFETY: reading the bytes of an initialized (u32, u32) — both fields
    // plain integers, size asserted to 8 above, no padding possible.
    let bytes =
        unsafe { std::slice::from_raw_parts((&probe as *const (u32, u32)).cast::<u8>(), 8) };
    bytes == [1, 0, 0, 0, 2, 0, 0, 0]
}

/// Reinterprets a plain-old-data slice as raw bytes.
///
/// # Safety
///
/// `T` must have no padding bytes and no validity requirements beyond its
/// bit pattern (holds for the section scalar types used here).
unsafe fn raw_bytes<T: Copy>(s: &[T]) -> &[u8] {
    std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s))
}

/// Encodes `u32`s as little-endian bytes, borrowing on LE targets.
pub fn bytes_of_u32s(s: &[u32]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: u32 is padding-free plain-old data.
        Cow::Borrowed(unsafe { raw_bytes(s) })
    } else {
        Cow::Owned(s.iter().flat_map(|v| v.to_le_bytes()).collect())
    }
}

/// Encodes `f32`s as little-endian bytes, borrowing on LE targets.
pub fn bytes_of_f32s(s: &[f32]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: f32 is padding-free plain-old data.
        Cow::Borrowed(unsafe { raw_bytes(s) })
    } else {
        Cow::Owned(s.iter().flat_map(|v| v.to_le_bytes()).collect())
    }
}

/// Encodes `usize` offsets as little-endian `u64` bytes, borrowing on
/// 64-bit LE targets.
pub fn bytes_of_usizes(s: &[usize]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8 {
        // SAFETY: usize is padding-free plain-old data; width checked above.
        Cow::Borrowed(unsafe { raw_bytes(s) })
    } else {
        Cow::Owned(s.iter().flat_map(|&v| (v as u64).to_le_bytes()).collect())
    }
}

/// Encodes canonical edge pairs as the nominal `u v` little-endian
/// sequence, borrowing when the in-memory layout already matches.
pub fn bytes_of_pairs(s: &[(u32, u32)]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") && pair_layout_is_nominal() {
        // SAFETY: size/align asserted above, layout probed to match, no
        // padding (size == 2 × field size).
        Cow::Borrowed(unsafe { raw_bytes(s) })
    } else {
        Cow::Owned(
            s.iter()
                .flat_map(|&(u, v)| {
                    let mut b = [0u8; 8];
                    b[..4].copy_from_slice(&u.to_le_bytes());
                    b[4..].copy_from_slice(&v.to_le_bytes());
                    b
                })
                .collect(),
        )
    }
}

// --- little-endian slice decoding (owned loader + non-borrowable cases) ---

/// Decodes a `u32` section.
pub fn decode_u32s(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes"))).collect()
}

/// Decodes an `f32` section.
pub fn decode_f32s(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes"))).collect()
}

/// Decodes a `u64` offsets section into `usize`, rejecting values that do
/// not fit the platform (32-bit hosts confronting a >4 GiB graph).
pub fn decode_usizes(b: &[u8]) -> io::Result<Vec<usize>> {
    b.chunks_exact(8)
        .map(|c| {
            let v = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
            usize::try_from(v).map_err(|_| bad("offset value exceeds platform usize"))
        })
        .collect()
}

/// Decodes the canonical edge section.
pub fn decode_pairs(b: &[u8]) -> Vec<(u32, u32)> {
    b.chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_is_the_ascii_tag() {
        assert_eq!(&SGR_MAGIC.to_le_bytes(), b"SLIMSGR1");
    }

    #[test]
    fn checksum_words_and_tail_bytes_differ_from_plain_fnv() {
        // Word folding must still distinguish permutations and tails.
        let a = checksum_update(checksum_seed(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = checksum_update(checksum_seed(), &[1, 2, 3, 4, 5, 6, 7, 9, 8]);
        let c = checksum_update(checksum_seed(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let u = vec![0u32, 1, u32::MAX, 42];
        assert_eq!(decode_u32s(&bytes_of_u32s(&u)), u);
        let f = vec![0.0f32, -1.5, f32::MAX];
        assert_eq!(decode_f32s(&bytes_of_f32s(&f)), f);
        let o = vec![0usize, 7, 1 << 33];
        assert_eq!(decode_usizes(&bytes_of_usizes(&o)).expect("fits"), o);
        let p = vec![(0u32, 1u32), (7, 9)];
        assert_eq!(decode_pairs(&bytes_of_pairs(&p)), p);
    }

    #[test]
    fn expected_lens_use_checked_arithmetic() {
        // A hostile m near usize::MAX must yield None, not a wrapped size.
        assert_eq!(expected_len(SectionId::Edges, 10, usize::MAX / 2, false), None);
        assert_eq!(expected_len(SectionId::Targets, 10, usize::MAX / 3, false), None);
        assert_eq!(expected_len(SectionId::Offsets, 4, 2, false), Some(Some(40)));
        assert_eq!(expected_len(SectionId::Targets, 4, 2, false), Some(Some(16)));
        assert_eq!(expected_len(SectionId::Targets, 4, 2, true), Some(Some(8)));
        // v2 sections: fixed lengths from n, variable-length blobs.
        assert_eq!(expected_len(SectionId::Degrees, 4, 2, false), Some(Some(16)));
        assert_eq!(expected_len(SectionId::RowIndex, 4, 2, false), Some(Some(40)));
        assert_eq!(expected_len(SectionId::AdjBlob, 4, 2, false), Some(None));
    }

    #[test]
    fn v2_section_order_is_ascending_ids() {
        for &(directed, weighted) in &[(false, false), (false, true), (true, false), (true, true)] {
            let ids = expected_sections_v2(directed, weighted);
            assert!(ids.windows(2).all(|w| (w[0] as u32) < (w[1] as u32)));
        }
    }
}
