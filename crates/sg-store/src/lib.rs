//! # sg-store — zero-copy binary CSR container for Slim Graph
//!
//! Slim Graph's evaluation runs at billions-of-edges scale; rebuilding a CSR
//! from an edge list on every load caps inputs far below that. This crate
//! defines `.sgr`, an aligned, versioned, checksummed on-disk container
//! holding the *final* CSR arrays of a [`CsrGraph`] — offsets, targets,
//! slot→edge ids, canonical edges, optional weights, and the in-adjacency of
//! directed graphs — so loading is a validation pass, not a rebuild.
//!
//! Two loaders are provided:
//!
//! * [`load_sgr`] — the owned heap loader: decodes every section into
//!   ordinary `Vec`s. Works everywhere, costs one copy.
//! * [`MmapGraph`] — the zero-copy loader: maps the file read-only (direct
//!   libc FFI on unix, see [`mmap`]) and hands the CSR arrays to
//!   [`CsrGraph`] as *borrowed* [`sg_graph::Section`]s pointing straight
//!   into the mapping. No section is copied; the mapping is shared by every
//!   clone of the graph (and, via `sg-dist`, by every simulated rank) and
//!   unmapped when the last reference drops. Algorithms, schemes, and
//!   pipelines observe bit-identical data either way.
//!
//! File layout (details in [`format`]):
//!
//! ```text
//! ┌────────────────────────────────────────────┐
//! │ header: magic "SLIMSGR1" · version · flags │ 48 B
//! │         n · m · checksum · section count   │
//! ├────────────────────────────────────────────┤
//! │ section table: { id, offset, length } × k  │ 24 B each
//! ├────────────────────────────────────────────┤
//! │ offsets    u64 × (n+1)   ─ 8-byte aligned  │
//! │ targets    u32 × slots                     │
//! │ slot_edge  u32 × slots                     │
//! │ edges      2×u32 × m                       │
//! │ weights    f32 × m          (if weighted)  │
//! │ in_offsets/in_targets/in_slot_edge         │
//! │                             (if directed)  │
//! └────────────────────────────────────────────┘
//! ```
//!
//! Integrity: a word-wise FNV-1a checksum over all section payloads is
//! verified by both loaders (a read-only streaming pass — no copy;
//! skippable for trusted files via [`Verify::Trusted`], e.g.
//! `slimgraph --no-verify`), and
//! [`CsrGraph::from_parts`] then validates every structural invariant
//! (offset monotonicity, sorted rows, canonical edge order, slot↔edge
//! consistency), so a corrupt or hostile file is rejected at load time
//! rather than crashing an algorithm later.
//!
//! Borrowing is gated on the facts that make it sound — little-endian
//! target, pointer-width match for the `u64` offset sections, 8-byte file
//! alignment (mmap bases are page-aligned) — and every section falls back
//! to an owned decode when a gate fails, so the loaders are correct on any
//! platform and merely fastest on 64-bit little-endian unix.

pub mod format;
pub mod mmap;

use format::{RawSection, SectionId, SgrToc};
use mmap::Mmap;
use sg_graph::{
    CsrGraph, CsrParts, EncodedAdjacencyParts, EncodedCsr, GraphView, NeighborCursor, Section,
};
use std::any::Any;
use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// --- writer ---------------------------------------------------------------

fn collect_sections(g: &CsrGraph) -> Vec<(SectionId, Cow<'_, [u8]>)> {
    let mut out = vec![
        (SectionId::Offsets, format::bytes_of_usizes(g.csr_offsets())),
        (SectionId::Targets, format::bytes_of_u32s(g.csr_targets())),
        (SectionId::SlotEdges, format::bytes_of_u32s(g.csr_slot_edges())),
        (SectionId::Edges, format::bytes_of_pairs(g.edge_slice())),
    ];
    if let Some(w) = g.weight_slice() {
        out.push((SectionId::Weights, format::bytes_of_f32s(w)));
    }
    if let (Some(o), Some(t), Some(s)) =
        (g.in_csr_offsets(), g.in_csr_targets(), g.in_csr_slot_edges())
    {
        out.push((SectionId::InOffsets, format::bytes_of_usizes(o)));
        out.push((SectionId::InTargets, format::bytes_of_u32s(t)));
        out.push((SectionId::InSlotEdges, format::bytes_of_u32s(s)));
    }
    out
}

fn collect_sections_v2(enc: &EncodedCsr) -> Vec<(SectionId, Cow<'_, [u8]>)> {
    let mut out = Vec::new();
    if let Some(w) = enc.weight_slice() {
        out.push((SectionId::Weights, format::bytes_of_f32s(w)));
    }
    let adj = enc.out_adjacency();
    out.push((SectionId::Degrees, format::bytes_of_u32s(adj.degrees())));
    out.push((SectionId::RowIndex, format::bytes_of_usizes(adj.row_starts())));
    out.push((SectionId::AdjBlob, Cow::Borrowed(adj.blob())));
    if let Some(adj) = enc.in_adjacency() {
        out.push((SectionId::InDegrees, format::bytes_of_u32s(adj.degrees())));
        out.push((SectionId::InRowIndex, format::bytes_of_usizes(adj.row_starts())));
        out.push((SectionId::InAdjBlob, Cow::Borrowed(adj.blob())));
    }
    out
}

/// Writes one `.sgr` container (either version — the section list decides).
fn write_container<W: Write>(
    w: &mut W,
    version: u32,
    directed: bool,
    weighted: bool,
    n: usize,
    m: usize,
    sections: &[(SectionId, Cow<'_, [u8]>)],
) -> io::Result<u64> {
    let table_end = format::HEADER_LEN + sections.len() * format::SECTION_ENTRY_LEN;

    // Lay out sections (8-aligned) and fold the checksum in one pass.
    let mut entries = Vec::with_capacity(sections.len());
    let mut checksum = format::checksum_seed();
    let mut off = table_end;
    for (id, bytes) in sections {
        debug_assert_eq!(off % 8, 0);
        entries.push((*id as u32, off as u64, bytes.len() as u64));
        checksum = format::checksum_update(checksum, bytes);
        off += bytes.len() + padding(bytes.len());
    }
    let total = off as u64;

    let mut flags = 0u32;
    if directed {
        flags |= format::FLAG_DIRECTED;
    }
    if weighted {
        flags |= format::FLAG_WEIGHTED;
    }
    w.write_all(&format::SGR_MAGIC.to_le_bytes())?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&(m as u64).to_le_bytes())?;
    w.write_all(&checksum.to_le_bytes())?;
    w.write_all(&(sections.len() as u32).to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    for (id, off, len) in &entries {
        w.write_all(&id.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&off.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
    }
    for (_, bytes) in sections {
        w.write_all(bytes)?;
        w.write_all(&[0u8; 8][..padding(bytes.len())])?;
    }
    Ok(total)
}

/// Serializes `g` into the v1 (raw CSR) `.sgr` format; returns bytes written.
pub fn write_sgr<W: Write>(g: &CsrGraph, w: &mut W) -> io::Result<u64> {
    let sections = collect_sections(g);
    write_container(
        w,
        format::SGR_VERSION,
        g.is_directed(),
        g.is_weighted(),
        g.num_vertices(),
        g.num_edges(),
        &sections,
    )
}

/// Serializes an encoded graph into the v2 `.sgr` format; returns bytes
/// written.
pub fn write_sgr_encoded<W: Write>(enc: &EncodedCsr, w: &mut W) -> io::Result<u64> {
    let sections = collect_sections_v2(enc);
    write_container(
        w,
        format::SGR_VERSION_V2,
        enc.is_directed(),
        enc.is_weighted(),
        enc.num_vertices(),
        enc.num_edges(),
        &sections,
    )
}

/// Adjacency encoding selector for the `.sgr` writers (CLI `--encoding`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Encoding {
    /// v1 container: raw CSR sections.
    #[default]
    Raw,
    /// v2 container: delta+varint rows, bitmap rows for dense vertices.
    Delta,
    /// Whichever version yields the smaller file for this graph.
    Auto,
}

impl Encoding {
    /// Parses a CLI value (`raw` / `delta` / `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Self::Raw),
            "delta" => Some(Self::Delta),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }
}

/// Serializes `g` with the requested [`Encoding`]; returns bytes written.
/// `Auto` encodes once, compares total payload bytes, and writes the
/// smaller container.
pub fn write_sgr_with<W: Write>(g: &CsrGraph, w: &mut W, encoding: Encoding) -> io::Result<u64> {
    match encoding {
        Encoding::Raw => write_sgr(g, w),
        Encoding::Delta => write_sgr_encoded(&EncodedCsr::from_graph(g), w),
        Encoding::Auto => {
            let enc = EncodedCsr::from_graph(g);
            let raw_payload: usize = collect_sections(g).iter().map(|(_, b)| b.len()).sum();
            let v2_payload: usize = collect_sections_v2(&enc).iter().map(|(_, b)| b.len()).sum();
            if v2_payload < raw_payload {
                write_sgr_encoded(&enc, w)
            } else {
                write_sgr(g, w)
            }
        }
    }
}

fn padding(len: usize) -> usize {
    (8 - len % 8) % 8
}

/// Saves `g` as a v1 `.sgr` file; returns bytes written.
pub fn save_sgr(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<u64> {
    save_sgr_with(g, path, Encoding::Raw)
}

/// Saves `g` with the requested [`Encoding`]; returns bytes written.
pub fn save_sgr_with(g: &CsrGraph, path: impl AsRef<Path>, encoding: Encoding) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let n = write_sgr_with(g, &mut w, encoding)?;
    w.flush()?;
    Ok(n)
}

/// Serializes `g` into an in-memory v1 `.sgr` image (tests, network
/// shipping).
pub fn to_sgr_bytes(g: &CsrGraph) -> Vec<u8> {
    to_sgr_bytes_with(g, Encoding::Raw)
}

/// [`to_sgr_bytes`] with an explicit [`Encoding`].
pub fn to_sgr_bytes_with(g: &CsrGraph, encoding: Encoding) -> Vec<u8> {
    let mut buf = Vec::new();
    write_sgr_with(g, &mut buf, encoding).expect("Vec<u8> writes are infallible");
    buf
}

// --- loaders --------------------------------------------------------------

/// How a section travels from file bytes into a [`Section`]: borrowed
/// straight out of the anchored mapping when the type-level gates allow,
/// decoded into an owned `Vec` otherwise.
fn make_section<T, D>(
    data: &[u8],
    raw: RawSection,
    anchor: Option<&Arc<Mmap>>,
    borrowable: bool,
    decode: D,
) -> io::Result<Section<T>>
where
    T: Copy + Send + Sync + 'static,
    D: FnOnce(&[u8]) -> io::Result<Vec<T>>,
{
    let bytes = &data[raw.off..raw.off + raw.len];
    if let Some(map) = anchor {
        let size = std::mem::size_of::<T>();
        if borrowable
            && raw.len.is_multiple_of(size)
            && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>())
        {
            let count = raw.len / size;
            let keep = Arc::clone(map);
            let anchor: Arc<dyn Any + Send + Sync> = keep;
            // SAFETY: `bytes` lies inside the mapping owned by `anchor`
            // (read-only for its whole lifetime), the pointer is aligned and
            // spans exactly `count` elements (checked above), and `T` is
            // plain-old data whose on-disk width equals `size_of::<T>()`
            // (the `borrowable` gate).
            return Ok(unsafe {
                Section::from_raw_parts(anchor, bytes.as_ptr().cast::<T>(), count)
            });
        }
    }
    Ok(decode(bytes)?.into())
}

/// Assembles a [`CsrGraph`] from a parsed, checksum-verified `.sgr` buffer.
/// With `anchor` set, sections borrow from the mapping wherever sound.
fn assemble(data: &[u8], toc: &SgrToc, anchor: Option<&Arc<Mmap>>) -> io::Result<CsrGraph> {
    let le = cfg!(target_endian = "little");
    let usize_ok = le && std::mem::size_of::<usize>() == 8;
    let pairs_ok = le && format::pair_layout_is_nominal();
    let raw = |id: SectionId| -> RawSection {
        *toc.sections.iter().find(|s| s.id == id).expect("validated toc has the section")
    };
    let u32_sec = |id| make_section(data, raw(id), anchor, le, |b| Ok(format::decode_u32s(b)));
    let usize_sec = |id| make_section(data, raw(id), anchor, usize_ok, format::decode_usizes);

    let parts = CsrParts {
        directed: toc.directed,
        num_vertices: toc.n,
        offsets: usize_sec(SectionId::Offsets)?,
        targets: u32_sec(SectionId::Targets)?,
        slot_edge: u32_sec(SectionId::SlotEdges)?,
        edges: make_section(data, raw(SectionId::Edges), anchor, pairs_ok, |b| {
            Ok(format::decode_pairs(b))
        })?,
        weights: if toc.weighted {
            Some(make_section(data, raw(SectionId::Weights), anchor, le, |b| {
                Ok(format::decode_f32s(b))
            })?)
        } else {
            None
        },
        in_offsets: toc.directed.then(|| usize_sec(SectionId::InOffsets)).transpose()?,
        in_targets: toc.directed.then(|| u32_sec(SectionId::InTargets)).transpose()?,
        in_slot_edge: toc.directed.then(|| u32_sec(SectionId::InSlotEdges)).transpose()?,
    };
    CsrGraph::from_parts(parts).map_err(|e| bad(format!("invalid .sgr contents: {e}")))
}

/// Assembles an [`EncodedCsr`] from a parsed, checksum-verified v2 buffer.
/// With `anchor` set, sections borrow from the mapping wherever sound; the
/// blob sections (`u8`, alignment 1) always borrow when anchored.
fn assemble_encoded(
    data: &[u8],
    toc: &SgrToc,
    anchor: Option<&Arc<Mmap>>,
) -> io::Result<EncodedCsr> {
    let le = cfg!(target_endian = "little");
    let usize_ok = le && std::mem::size_of::<usize>() == 8;
    let raw = |id: SectionId| -> RawSection {
        *toc.sections.iter().find(|s| s.id == id).expect("validated toc has the section")
    };
    let adjacency = |degrees: SectionId,
                     row_index: SectionId,
                     blob: SectionId|
     -> io::Result<EncodedAdjacencyParts> {
        Ok(EncodedAdjacencyParts {
            row_starts: make_section(
                data,
                raw(row_index),
                anchor,
                usize_ok,
                format::decode_usizes,
            )?,
            degrees: make_section(data, raw(degrees), anchor, le, |b| Ok(format::decode_u32s(b)))?,
            blob: make_section(data, raw(blob), anchor, true, |b| Ok(b.to_vec()))?,
        })
    };
    let out = adjacency(SectionId::Degrees, SectionId::RowIndex, SectionId::AdjBlob)?;
    let in_ = toc
        .directed
        .then(|| adjacency(SectionId::InDegrees, SectionId::InRowIndex, SectionId::InAdjBlob))
        .transpose()?;
    let weights = toc
        .weighted
        .then(|| {
            make_section(data, raw(SectionId::Weights), anchor, le, |b| Ok(format::decode_f32s(b)))
        })
        .transpose()?;
    EncodedCsr::from_parts(toc.directed, toc.n, toc.m, out, in_, weights)
        .map_err(|e| bad(format!("invalid .sgr v2 contents: {e}")))
}

/// How much integrity checking a load performs.
///
/// Both modes parse and structurally validate the header/section table and
/// run [`CsrGraph::from_parts`]'s full invariant validation (offset
/// monotonicity, sorted rows, canonical edge order, slot↔edge
/// consistency) — a corrupt or hostile file is rejected either way.
/// [`Verify::Trusted`] only skips the word-wise checksum pass over the
/// section payloads, the one remaining O(file) scan, for files the caller
/// just wrote or otherwise trusts end-to-end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Verify {
    /// Verify the container checksum before assembling (the default).
    #[default]
    Checksum,
    /// Skip the checksum pass; structural validation still runs.
    Trusted,
}

/// Owned heap loader: decodes an in-memory `.sgr` image into a [`CsrGraph`]
/// backed by ordinary `Vec`s.
pub fn load_sgr_bytes(data: &[u8]) -> io::Result<CsrGraph> {
    load_sgr_bytes_with(data, Verify::Checksum)
}

/// [`load_sgr_bytes`] with an explicit [`Verify`] mode. Accepts both
/// container versions: a v2 image is decoded to the bit-identical raw
/// graph ([`EncodedCsr::to_csr`]); use [`load_sgr_encoded_bytes`] to keep
/// the encoded form.
pub fn load_sgr_bytes_with(data: &[u8], verify: Verify) -> io::Result<CsrGraph> {
    if format::peek_version(data)? == format::SGR_VERSION_V2 {
        return Ok(load_sgr_encoded_bytes_with(data, verify)?.to_csr());
    }
    let toc = format::parse_toc(data)?;
    if verify == Verify::Checksum {
        format::verify_checksum(data, &toc)?;
    }
    assemble(data, &toc, None)
}

/// Owned loader for v2 images: decodes into an [`EncodedCsr`] whose rows
/// kernels traverse without materializing raw CSR.
pub fn load_sgr_encoded_bytes(data: &[u8]) -> io::Result<EncodedCsr> {
    load_sgr_encoded_bytes_with(data, Verify::Checksum)
}

/// [`load_sgr_encoded_bytes`] with an explicit [`Verify`] mode.
pub fn load_sgr_encoded_bytes_with(data: &[u8], verify: Verify) -> io::Result<EncodedCsr> {
    let toc = format::parse_toc_v2(data)?;
    if verify == Verify::Checksum {
        format::verify_checksum(data, &toc)?;
    }
    assemble_encoded(data, &toc, None)
}

/// Owned loader for v2 files: reads `path` fully and decodes the encoded
/// graph.
pub fn load_sgr_encoded(path: impl AsRef<Path>) -> io::Result<EncodedCsr> {
    load_sgr_encoded_with(path, Verify::Checksum)
}

/// [`load_sgr_encoded`] with an explicit [`Verify`] mode.
pub fn load_sgr_encoded_with(path: impl AsRef<Path>, verify: Verify) -> io::Result<EncodedCsr> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    load_sgr_encoded_bytes_with(&data, verify)
}

/// Owned heap loader: reads `path` fully and decodes it.
pub fn load_sgr(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    load_sgr_with(path, Verify::Checksum)
}

/// [`load_sgr`] with an explicit [`Verify`] mode.
pub fn load_sgr_with(path: impl AsRef<Path>, verify: Verify) -> io::Result<CsrGraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    load_sgr_bytes_with(&data, verify)
}

/// A [`CsrGraph`] served zero-copy out of a read-only file mapping.
///
/// The CSR sections borrow directly from the mapping (no full-file copy);
/// the mapping itself is reference-counted, so the graph — and any clone of
/// it, including [`MmapGraph::into_graph`]'s result — keeps it alive, and
/// multiple consumers (e.g. `sg-dist` rank threads) share one mapping.
///
/// Derefs to [`CsrGraph`], so it drops into any API taking `&CsrGraph`.
pub struct MmapGraph {
    graph: CsrGraph,
    mapped_bytes: usize,
}

impl MmapGraph {
    /// Maps `path` read-only, verifies checksum + structure, and builds the
    /// borrowed-section graph.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, Verify::Checksum)
    }

    /// [`MmapGraph::open`] with an explicit [`Verify`] mode.
    /// [`Verify::Trusted`] skips only the checksum scan — on a large
    /// mapping that is the difference between touching every page at open
    /// and faulting pages in lazily as algorithms reach them. Structural
    /// validation still runs and still rejects corrupt files.
    pub fn open_with(path: impl AsRef<Path>, verify: Verify) -> io::Result<Self> {
        let file = File::open(path)?;
        let map = Arc::new(Mmap::map(&file)?);
        if format::peek_version(&map)? == format::SGR_VERSION_V2 {
            // A v2 file decodes to the bit-identical raw graph; the heap
            // copy means the mapping can be dropped right after. Callers
            // who want the zero-copy *encoded* form use [`MmapEncoded`].
            let mapped_bytes = map.len();
            let enc = MmapEncoded::from_mapping(map, verify)?;
            return Ok(Self { graph: enc.encoded().to_csr(), mapped_bytes });
        }
        let toc = format::parse_toc(&map)?;
        if verify == Verify::Checksum {
            // The checksum pass streams the file front to back — tell the
            // kernel so read-ahead runs ahead of the scan; restore the
            // default policy afterwards (MADV_SEQUENTIAL is sticky, and
            // the algorithms served from this mapping access it randomly).
            map.advise_sequential();
            let verified = format::verify_checksum(&map, &toc);
            map.advise_normal();
            verified?;
        }
        // Section windows are about to be validated (and then served to
        // algorithms): fault them in eagerly instead of page-by-page.
        // Best-effort hints; a kernel that ignores them changes nothing.
        for section in &toc.sections {
            map.advise_willneed(section.off, section.len);
        }
        let graph = assemble(&map, &toc, Some(&map))?;
        Ok(Self { graph, mapped_bytes: map.len() })
    }

    /// The loaded graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Unwraps into the graph; the mapping stays alive behind the sections.
    pub fn into_graph(self) -> CsrGraph {
        self.graph
    }

    /// Size of the underlying mapping in bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_bytes
    }

    /// True when every CSR section borrows from the mapping (the zero-copy
    /// fast path — always taken on 64-bit little-endian unix).
    pub fn is_zero_copy(&self) -> bool {
        self.graph.is_fully_mapped()
    }
}

impl Deref for MmapGraph {
    type Target = CsrGraph;
    fn deref(&self) -> &CsrGraph {
        &self.graph
    }
}

impl GraphView for MmapGraph {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
    fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
    fn is_directed(&self) -> bool {
        self.graph.is_directed()
    }
    fn degree(&self, v: sg_graph::VertexId) -> usize {
        self.graph.degree(v)
    }
    fn in_degree(&self, v: sg_graph::VertexId) -> usize {
        self.graph.in_degree(v)
    }
    fn cursor(&self, v: sg_graph::VertexId) -> NeighborCursor<'_> {
        GraphView::cursor(&self.graph, v)
    }
    fn in_cursor(&self, v: sg_graph::VertexId) -> NeighborCursor<'_> {
        GraphView::in_cursor(&self.graph, v)
    }
    fn edge_weight(&self, e: sg_graph::EdgeId) -> sg_graph::Weight {
        self.graph.edge_weight(e)
    }
}

/// An [`EncodedCsr`] served zero-copy out of a read-only v2 file mapping:
/// the row index, degrees, and encoded blob borrow directly from the
/// mapping, so resident memory is the (compressed) file itself. Kernels
/// traverse it through [`GraphView`] — decode happens on the fly, per row.
pub struct MmapEncoded {
    enc: EncodedCsr,
    mapped_bytes: usize,
}

impl MmapEncoded {
    /// Maps `path` read-only, verifies checksum + structure, and builds the
    /// borrowed-section encoded graph.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, Verify::Checksum)
    }

    /// [`MmapEncoded::open`] with an explicit [`Verify`] mode (same
    /// trade-off as [`MmapGraph::open_with`]).
    pub fn open_with(path: impl AsRef<Path>, verify: Verify) -> io::Result<Self> {
        let file = File::open(path)?;
        let map = Arc::new(Mmap::map(&file)?);
        Self::from_mapping(map, verify)
    }

    fn from_mapping(map: Arc<Mmap>, verify: Verify) -> io::Result<Self> {
        let toc = format::parse_toc_v2(&map)?;
        if verify == Verify::Checksum {
            map.advise_sequential();
            let verified = format::verify_checksum(&map, &toc);
            map.advise_normal();
            verified?;
        }
        for section in &toc.sections {
            map.advise_willneed(section.off, section.len);
        }
        let enc = assemble_encoded(&map, &toc, Some(&map))?;
        Ok(Self { enc, mapped_bytes: map.len() })
    }

    /// The loaded encoded graph.
    pub fn encoded(&self) -> &EncodedCsr {
        &self.enc
    }

    /// Unwraps into the encoded graph; the mapping stays alive behind the
    /// sections.
    pub fn into_encoded(self) -> EncodedCsr {
        self.enc
    }

    /// Size of the underlying mapping in bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_bytes
    }

    /// True when every encoded section borrows from the mapping.
    pub fn is_zero_copy(&self) -> bool {
        self.enc.is_fully_mapped()
    }
}

impl Deref for MmapEncoded {
    type Target = EncodedCsr;
    fn deref(&self) -> &EncodedCsr {
        &self.enc
    }
}

impl GraphView for MmapEncoded {
    fn num_vertices(&self) -> usize {
        self.enc.num_vertices()
    }
    fn num_edges(&self) -> usize {
        self.enc.num_edges()
    }
    fn is_directed(&self) -> bool {
        self.enc.is_directed()
    }
    fn degree(&self, v: sg_graph::VertexId) -> usize {
        self.enc.degree(v)
    }
    fn in_degree(&self, v: sg_graph::VertexId) -> usize {
        self.enc.in_degree(v)
    }
    fn cursor(&self, v: sg_graph::VertexId) -> NeighborCursor<'_> {
        self.enc.cursor(v)
    }
    fn in_cursor(&self, v: sg_graph::VertexId) -> NeighborCursor<'_> {
        self.enc.in_cursor(v)
    }
    fn edge_weight(&self, e: sg_graph::EdgeId) -> sg_graph::Weight {
        self.enc.edge_weight(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn bytes_roundtrip_preserves_structure() {
        let g = generators::erdos_renyi(200, 600, 7);
        let img = to_sgr_bytes(&g);
        assert_eq!(img.len() % 8, 0, "file length stays 8-aligned");
        let h = load_sgr_bytes(&img).expect("load");
        assert_eq!(g.edge_slice(), h.edge_slice());
        assert_eq!(g.num_vertices(), h.num_vertices());
    }

    #[test]
    fn v2_bytes_roundtrip_is_bit_identical() {
        let g = generators::barabasi_albert(500, 6, 3);
        let img = to_sgr_bytes_with(&g, Encoding::Delta);
        assert_eq!(img.len() % 8, 0, "file length stays 8-aligned");
        // Transparent path: the generic loader decodes v2 to the raw graph.
        let h = load_sgr_bytes(&img).expect("load");
        assert_eq!(g.edge_slice(), h.edge_slice());
        assert_eq!(g.csr_offsets(), h.csr_offsets());
        assert_eq!(g.csr_targets(), h.csr_targets());
        assert_eq!(g.csr_slot_edges(), h.csr_slot_edges());
        // Encoded path: same structure through the cursor API.
        let enc = load_sgr_encoded_bytes(&img).expect("load encoded");
        assert_eq!(enc.num_edges(), g.num_edges());
        for v in 0..500u32 {
            let row: Vec<u32> = enc.cursor(v).collect();
            assert_eq!(row, g.neighbors(v), "row {v}");
        }
    }

    #[test]
    fn v2_directed_weighted_roundtrip() {
        let el = sg_graph::EdgeList::from_weighted(
            6,
            [(0, 1, 2.0), (1, 2, 0.5), (2, 0, 1.5), (4, 5, 3.0)],
        );
        let g = CsrGraph::from_edge_list_directed(el);
        let img = to_sgr_bytes_with(&g, Encoding::Delta);
        let h = load_sgr_bytes(&img).expect("load");
        assert_eq!(g.edge_slice(), h.edge_slice());
        assert_eq!(g.weight_slice(), h.weight_slice());
        assert_eq!(g.in_csr_targets(), h.in_csr_targets());
    }

    #[test]
    fn auto_encoding_picks_the_smaller_container() {
        // A social-style graph compresses well: auto must pick v2.
        let g = generators::barabasi_albert(2000, 8, 1);
        let auto = to_sgr_bytes_with(&g, Encoding::Auto);
        let raw = to_sgr_bytes(&g);
        let delta = to_sgr_bytes_with(&g, Encoding::Delta);
        assert!(delta.len() < raw.len());
        assert_eq!(auto.len(), delta.len());
        assert_eq!(format::peek_version(&auto).expect("header"), format::SGR_VERSION_V2);
    }

    #[test]
    fn version_mismatch_is_rejected_both_ways() {
        let g = generators::erdos_renyi(50, 100, 1);
        let v1 = to_sgr_bytes(&g);
        let v2 = to_sgr_bytes_with(&g, Encoding::Delta);
        let err = load_sgr_encoded_bytes(&v1).expect_err("v1 into v2 loader");
        assert!(err.to_string().contains("unsupported .sgr version"), "{err}");
        let err = format::parse_toc(&v2).expect_err("v2 into v1 parser");
        assert!(err.to_string().contains("unsupported .sgr version"), "{err}");
    }
}
