//! Read-only file mapping.
//!
//! On unix targets this is a direct `extern "C"` FFI binding to the
//! platform's `mmap`/`munmap` — the build environment has no crates
//! registry, so the workspace cannot depend on `memmap2` (or `libc`); `std`
//! already links the platform C library, which makes the symbols available
//! without any extra dependency. On non-unix targets [`Mmap`] degrades to a
//! sequential read of the whole file into a heap buffer with the same API —
//! correct, just not zero-copy.
//!
//! The mapping is `MAP_PRIVATE` + `PROT_READ`: strictly immutable from this
//! process. As with every mmap-based loader, truncating the file while it is
//! mapped is undefined behaviour at the OS level (`SIGBUS` on access);
//! callers are expected to treat `.sgr` files as immutable while loaded.

use std::fs::File;
use std::io;

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(not(unix))]
pub use fallback::Mmap;

#[cfg(unix)]
mod unix {
    use super::*;
    use std::ffi::{c_int, c_long, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            // `off_t`: `long` on every unix this workspace targets (64-bit
            // Linux/macOS, 32-bit Linux without LFS). Always 0 here.
            offset: c_long,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    // Advice values shared by Linux and the BSD family (macOS included).
    const MADV_NORMAL: c_int = 0;
    const MADV_SEQUENTIAL: c_int = 2;
    const MADV_WILLNEED: c_int = 3;
    /// Alignment used for advice windows. `madvise` requires a
    /// page-aligned address; mapping bases are page-aligned and 4096
    /// divides every page size this workspace meets. On exotic page sizes
    /// a misaligned window merely makes the kernel ignore the hint.
    const ADVICE_ALIGN: usize = 4096;

    /// A read-only, page-aligned mapping of an entire file.
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, never written through)
    // and lives until drop, so views may be shared and sent across threads.
    unsafe impl Send for Mmap {}
    // SAFETY: see `Send` — read-only shared memory.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in its entirety.
        pub fn map(file: &File) -> io::Result<Self> {
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                // Zero-length mmap is EINVAL; an empty mapping needs no
                // backing pages at all.
                return Ok(Self { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
            }
            // SAFETY: plain mmap call with a valid open fd; the result is
            // checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: ptr as *const u8, len })
        }

        fn advise(&self, offset: usize, len: usize, advice: c_int) {
            if self.len == 0 || offset >= self.len {
                return;
            }
            // Round the window start down to the advice alignment and
            // clamp the end to the mapping.
            let start = offset - offset % ADVICE_ALIGN;
            let end = (offset + len.min(self.len - offset)).min(self.len);
            if end <= start {
                return;
            }
            // SAFETY: `[start, end)` lies inside this live mapping. Advice
            // is a hint; a failure (e.g. unexpected page size) changes
            // nothing observable, so the return value is ignored.
            unsafe {
                madvise((self.ptr as *mut c_void).add(start), end - start, advice);
            }
        }

        /// Hints the kernel that `[offset, offset + len)` will be read
        /// soon (`MADV_WILLNEED`): read-ahead starts before the first
        /// fault. Best-effort; errors are ignored.
        pub fn advise_willneed(&self, offset: usize, len: usize) {
            self.advise(offset, len, MADV_WILLNEED);
        }

        /// Hints the kernel that the whole mapping will be read
        /// sequentially (`MADV_SEQUENTIAL`): aggressive read-ahead, early
        /// reclaim behind the scan. **Sticky per-VMA policy** — pair with
        /// [`Mmap::advise_normal`] once the sequential phase ends, or
        /// random-access work afterwards runs under the wrong read-ahead
        /// regime. Best-effort; errors are ignored.
        pub fn advise_sequential(&self) {
            self.advise(0, self.len, MADV_SEQUENTIAL);
        }

        /// Restores the default paging policy (`MADV_NORMAL`) after a
        /// sequential phase. Best-effort; errors are ignored.
        pub fn advise_normal(&self) {
            self.advise(0, self.len, MADV_NORMAL);
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: `ptr`/`len` are exactly what mmap returned; the
                // mapping is unmapped once, here.
                unsafe {
                    munmap(self.ptr as *mut c_void, self.len);
                }
            }
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];
        #[inline]
        fn deref(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for the
            // lifetime of `self` (PROT_READ, unmapped only in drop).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

#[cfg(not(unix))]
mod fallback {
    use super::*;
    use std::io::Read;

    /// Non-unix stand-in: the whole file read into a heap buffer. Same API,
    /// not zero-copy (section alignment is then checked at runtime and the
    /// loader copies sections it cannot borrow).
    pub struct Mmap {
        buf: Vec<u8>,
    }

    impl Mmap {
        /// Reads `file` in its entirety.
        pub fn map(file: &File) -> io::Result<Self> {
            let mut buf = Vec::new();
            let mut reader: &File = file;
            reader.read_to_end(&mut buf)?;
            Ok(Self { buf })
        }

        /// No-op off unix (the buffer is already resident).
        pub fn advise_willneed(&self, _offset: usize, _len: usize) {}

        /// No-op off unix (the buffer is already resident).
        pub fn advise_sequential(&self) {}

        /// No-op off unix (the buffer is already resident).
        pub fn advise_normal(&self) {}
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];
        #[inline]
        fn deref(&self) -> &[u8] {
            &self.buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("sg-store-mmap-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..=255).collect();
        File::create(&path).and_then(|mut f| f.write_all(&payload)).expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert_eq!(&map[..], &payload[..]);
    }

    #[test]
    fn advice_is_safe_on_any_window() {
        let dir = std::env::temp_dir().join("sg-store-mmap-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("advice.bin");
        let payload = vec![7u8; 10_000];
        File::create(&path).and_then(|mut f| f.write_all(&payload)).expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        // Hints must be unobservable: any window (aligned or not, clamped
        // or out of range) is accepted and the contents stay intact.
        map.advise_sequential();
        map.advise_normal();
        map.advise_willneed(0, payload.len());
        map.advise_willneed(4097, 123);
        map.advise_willneed(9_999, usize::MAX);
        map.advise_willneed(50_000, 10);
        assert_eq!(&map[..], &payload[..]);
        // Empty mappings take hints too.
        let empty_path = dir.join("advice-empty.bin");
        File::create(&empty_path).expect("create");
        let empty = Mmap::map(&File::open(&empty_path).expect("open")).expect("map");
        empty.advise_sequential();
        empty.advise_willneed(0, 1);
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir().join("sg-store-mmap-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("empty.bin");
        File::create(&path).expect("create");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert!(map.is_empty());
    }
}
