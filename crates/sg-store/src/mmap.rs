//! Read-only file mapping.
//!
//! On unix targets this is a direct `extern "C"` FFI binding to the
//! platform's `mmap`/`munmap` — the build environment has no crates
//! registry, so the workspace cannot depend on `memmap2` (or `libc`); `std`
//! already links the platform C library, which makes the symbols available
//! without any extra dependency. On non-unix targets [`Mmap`] degrades to a
//! sequential read of the whole file into a heap buffer with the same API —
//! correct, just not zero-copy.
//!
//! The mapping is `MAP_PRIVATE` + `PROT_READ`: strictly immutable from this
//! process. As with every mmap-based loader, truncating the file while it is
//! mapped is undefined behaviour at the OS level (`SIGBUS` on access);
//! callers are expected to treat `.sgr` files as immutable while loaded.

use std::fs::File;
use std::io;

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(not(unix))]
pub use fallback::Mmap;

#[cfg(unix)]
mod unix {
    use super::*;
    use std::ffi::{c_int, c_long, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            // `off_t`: `long` on every unix this workspace targets (64-bit
            // Linux/macOS, 32-bit Linux without LFS). Always 0 here.
            offset: c_long,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only, page-aligned mapping of an entire file.
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, never written through)
    // and lives until drop, so views may be shared and sent across threads.
    unsafe impl Send for Mmap {}
    // SAFETY: see `Send` — read-only shared memory.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in its entirety.
        pub fn map(file: &File) -> io::Result<Self> {
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                // Zero-length mmap is EINVAL; an empty mapping needs no
                // backing pages at all.
                return Ok(Self { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
            }
            // SAFETY: plain mmap call with a valid open fd; the result is
            // checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr: ptr as *const u8, len })
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: `ptr`/`len` are exactly what mmap returned; the
                // mapping is unmapped once, here.
                unsafe {
                    munmap(self.ptr as *mut c_void, self.len);
                }
            }
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];
        #[inline]
        fn deref(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for the
            // lifetime of `self` (PROT_READ, unmapped only in drop).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

#[cfg(not(unix))]
mod fallback {
    use super::*;
    use std::io::Read;

    /// Non-unix stand-in: the whole file read into a heap buffer. Same API,
    /// not zero-copy (section alignment is then checked at runtime and the
    /// loader copies sections it cannot borrow).
    pub struct Mmap {
        buf: Vec<u8>,
    }

    impl Mmap {
        /// Reads `file` in its entirety.
        pub fn map(file: &File) -> io::Result<Self> {
            let mut buf = Vec::new();
            let mut reader: &File = file;
            reader.read_to_end(&mut buf)?;
            Ok(Self { buf })
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];
        #[inline]
        fn deref(&self) -> &[u8] {
            &self.buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("sg-store-mmap-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..=255).collect();
        File::create(&path).and_then(|mut f| f.write_all(&payload)).expect("write");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert_eq!(&map[..], &payload[..]);
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir().join("sg-store-mmap-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("empty.bin");
        File::create(&path).expect("create");
        let map = Mmap::map(&File::open(&path).expect("open")).expect("map");
        assert!(map.is_empty());
    }
}
