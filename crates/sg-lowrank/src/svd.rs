//! Truncated spectral decomposition and clustered low-rank reconstruction.
//!
//! The adjacency matrix of an undirected graph is symmetric, so its SVD
//! coincides (up to signs) with its eigendecomposition; we compute the top-r
//! eigenpairs with randomized subspace iteration and reconstruct
//! `Â = V Λ Vᵀ`. Edges are predicted where `Â_{uv} ≥ 0.5`. The clustered
//! variant \[133\] runs the same procedure per cluster block, losing all
//! inter-cluster edges outright — one of the reasons the paper measures
//! "consistently very high error rates" for this family.

use crate::matrix::DenseMatrix;
use sg_graph::prng::unit_f64;
use sg_graph::{CsrGraph, VertexId};

/// Result of a low-rank reconstruction experiment.
#[derive(Clone, Debug)]
pub struct LowRankResult {
    /// Rank used.
    pub rank: usize,
    /// Edges present in the reconstruction but not the original.
    pub false_positives: usize,
    /// Edges of the original missing from the reconstruction.
    pub false_negatives: usize,
    /// Original edge count.
    pub original_edges: usize,
    /// Storage used by the factors, in bytes.
    pub factor_storage_bytes: usize,
    /// CSR storage of the original, in bytes (comparison baseline).
    pub graph_storage_bytes: usize,
}

impl LowRankResult {
    /// Error rate: symmetric difference relative to the original edge count.
    pub fn error_rate(&self) -> f64 {
        if self.original_edges == 0 {
            return 0.0;
        }
        (self.false_positives + self.false_negatives) as f64 / self.original_edges as f64
    }

    /// Storage expansion factor versus the plain CSR graph.
    pub fn storage_overhead(&self) -> f64 {
        self.factor_storage_bytes as f64 / self.graph_storage_bytes.max(1) as f64
    }
}

/// Dense adjacency matrix of an (induced sub)graph over `members`.
fn adjacency_block(g: &CsrGraph, members: &[VertexId]) -> DenseMatrix {
    let k = members.len();
    let mut index = rustc_lite_map(members);
    let mut a = DenseMatrix::zeros(k, k);
    for (i, &v) in members.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(&j) = index_get(&mut index, u) {
                a.set(i, j, 1.0);
            }
        }
    }
    a
}

// A tiny sorted-vec map to avoid pulling a hash map for small blocks.
fn rustc_lite_map(members: &[VertexId]) -> Vec<(VertexId, usize)> {
    let mut v: Vec<(VertexId, usize)> = members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    v.sort_unstable_by_key(|&(m, _)| m);
    v
}

fn index_get(map: &mut [(VertexId, usize)], key: VertexId) -> Option<&usize> {
    map.binary_search_by_key(&key, |&(m, _)| m).ok().map(|i| &map[i].1)
}

/// Top-`rank` eigenpairs of a symmetric matrix via subspace iteration.
/// Returns (eigenvalues, eigenvector matrix n×rank).
pub fn symmetric_eigs(
    a: &DenseMatrix,
    rank: usize,
    iterations: usize,
    seed: u64,
) -> (Vec<f64>, DenseMatrix) {
    assert_eq!(a.rows, a.cols, "matrix must be square");
    let n = a.rows;
    let r = rank.min(n.max(1));
    if n == 0 {
        return (Vec::new(), DenseMatrix::zeros(0, 0));
    }
    // Random start, deterministic.
    let mut v = DenseMatrix::zeros(n, r);
    for i in 0..n {
        for j in 0..r {
            v.set(i, j, unit_f64(seed, (i * r + j) as u64) - 0.5);
        }
    }
    v.orthonormalize_columns();
    for _ in 0..iterations {
        v = a.matmul(&v);
        v.orthonormalize_columns();
    }
    // Rayleigh quotients per column (off-diagonal residue is small after
    // convergence; adequate for reconstruction thresholds).
    let av = a.matmul(&v);
    let eigs: Vec<f64> = (0..r).map(|j| (0..n).map(|i| v.get(i, j) * av.get(i, j)).sum()).collect();
    (eigs, v)
}

/// Counts reconstruction errors of `V diag(λ) Vᵀ` against the true block.
fn reconstruction_errors(a: &DenseMatrix, eigs: &[f64], v: &DenseMatrix) -> (usize, usize) {
    let n = a.rows;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let mut pred = 0.0;
            for (k, &l) in eigs.iter().enumerate() {
                pred += l * v.get(i, k) * v.get(j, k);
            }
            let is_edge = a.get(i, j) > 0.5;
            let predicted = pred >= 0.5;
            match (is_edge, predicted) {
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                _ => {}
            }
        }
    }
    (fp, fn_)
}

/// Whole-graph low-rank approximation at the given rank.
pub fn lowrank_approximation(g: &CsrGraph, rank: usize, seed: u64) -> LowRankResult {
    let members: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    let a = adjacency_block(g, &members);
    let (eigs, v) = symmetric_eigs(&a, rank, 30, seed);
    let (fp, fn_) = reconstruction_errors(&a, &eigs, &v);
    LowRankResult {
        rank,
        false_positives: fp,
        false_negatives: fn_,
        original_edges: g.num_edges(),
        factor_storage_bytes: v.storage_bytes() + eigs.len() * 8,
        graph_storage_bytes: g.storage_bytes(),
    }
}

/// Clustered low-rank approximation \[133\]: per-cluster truncated
/// decomposition; inter-cluster edges are not represented at all (they all
/// become false negatives), mirroring the block-diagonal model.
pub fn clustered_lowrank(
    g: &CsrGraph,
    clusters: &[Vec<VertexId>],
    rank: usize,
    seed: u64,
) -> LowRankResult {
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let mut factor_bytes = 0usize;
    let mut cluster_of = vec![u32::MAX; g.num_vertices()];
    for (c, members) in clusters.iter().enumerate() {
        for &v in members {
            cluster_of[v as usize] = c as u32;
        }
    }
    // Inter-cluster edges: unrepresentable.
    for (_, u, v) in g.edge_iter() {
        if cluster_of[u as usize] != cluster_of[v as usize] {
            fn_ += 1;
        }
    }
    for (c, members) in clusters.iter().enumerate() {
        if members.len() < 2 {
            continue;
        }
        let a = adjacency_block(g, members);
        let (eigs, v) = symmetric_eigs(&a, rank, 30, seed ^ c as u64);
        let (cfp, cfn) = reconstruction_errors(&a, &eigs, &v);
        fp += cfp;
        fn_ += cfn;
        factor_bytes += v.storage_bytes() + eigs.len() * 8;
    }
    LowRankResult {
        rank,
        false_positives: fp,
        false_negatives: fn_,
        original_edges: g.num_edges(),
        factor_storage_bytes: factor_bytes,
        graph_storage_bytes: g.storage_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn full_rank_reconstructs_small_graph() {
        let g = generators::complete(8);
        let r = lowrank_approximation(&g, 8, 1);
        assert_eq!(r.error_rate(), 0.0, "full rank must be exact on K8");
    }

    #[test]
    fn eigs_of_complete_graph() {
        // K_n adjacency has top eigenvalue n-1.
        let g = generators::complete(10);
        let members: Vec<VertexId> = (0..10).collect();
        let a = adjacency_block(&g, &members);
        let (eigs, _) = symmetric_eigs(&a, 1, 50, 2);
        assert!((eigs[0] - 9.0).abs() < 1e-6, "lambda = {}", eigs[0]);
    }

    #[test]
    fn low_rank_has_high_error_on_sparse_graphs() {
        // The paper's finding: low-rank approximation of sparse graphs has
        // very high error rates.
        let g = generators::erdos_renyi(300, 1500, 3);
        let r = lowrank_approximation(&g, 8, 4);
        assert!(r.error_rate() > 0.5, "error rate {}", r.error_rate());
    }

    #[test]
    fn clustered_variant_loses_intercluster_edges() {
        let g = generators::erdos_renyi(200, 1000, 5);
        let half: Vec<VertexId> = (0..100).collect();
        let rest: Vec<VertexId> = (100..200).collect();
        let r = clustered_lowrank(&g, &[half, rest], 4, 6);
        // Roughly half the edges cross the cut and are lost outright.
        assert!(r.false_negatives > g.num_edges() / 4);
    }

    #[test]
    fn storage_overhead_substantial() {
        // Table 2: clustered SVD needs O(n_c^2) working storage; factors
        // alone exceed CSR on sparse graphs for moderate ranks.
        let g = generators::erdos_renyi(400, 1200, 7);
        let r = lowrank_approximation(&g, 64, 8);
        assert!(r.storage_overhead() > 1.0, "overhead {}", r.storage_overhead());
    }

    #[test]
    fn empty_graph_ok() {
        let g = sg_graph::CsrGraph::from_pairs(0, &[]);
        let r = lowrank_approximation(&g, 4, 9);
        assert_eq!(r.error_rate(), 0.0);
    }
}
