//! # sg-lowrank — clustered low-rank graph approximation baseline
//!
//! The paper compares Slim Graph against low-rank approximation of the
//! adjacency matrix via clustered SVD [133, 149] (§4.6, §7.4) and finds
//! "significant storage overheads and consistently very high error rates";
//! this crate reproduces that comparator: a dense symmetric-matrix
//! eigensolver (randomized subspace iteration), whole-graph truncated
//! low-rank reconstruction, and the clustered per-block variant.
//!
//! Everything is intentionally dense — the point of the experiment is that
//! the approach costs `O(n_c^2)` storage and `O(n_c^3)` work and still
//! reconstructs the edge set poorly.

pub mod matrix;
pub mod svd;

pub use matrix::DenseMatrix;
pub use svd::{clustered_lowrank, lowrank_approximation, LowRankResult};
