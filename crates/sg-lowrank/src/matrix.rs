//! Minimal dense matrix support for the low-rank baseline.

use rayon::prelude::*;

/// A row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other` (parallel over rows).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        out.data.par_chunks_mut(other.cols).enumerate().for_each(|(i, out_row)| {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik != 0.0 {
                    let brow = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(brow) {
                        *o += aik * b;
                    }
                }
            }
        });
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// In-place modified Gram–Schmidt on the columns; returns the column
    /// norms before normalization (R's diagonal). Columns that collapse to
    /// ~0 are re-seeded as zero vectors.
    pub fn orthonormalize_columns(&mut self) -> Vec<f64> {
        let (n, k) = (self.rows, self.cols);
        let mut norms = Vec::with_capacity(k);
        for j in 0..k {
            // Subtract projections onto previous columns.
            for p in 0..j {
                let mut dot = 0.0;
                for r in 0..n {
                    dot += self.get(r, j) * self.get(r, p);
                }
                for r in 0..n {
                    let v = self.get(r, j) - dot * self.get(r, p);
                    self.set(r, j, v);
                }
            }
            let mut norm = 0.0;
            for r in 0..n {
                norm += self.get(r, j) * self.get(r, j);
            }
            norm = norm.sqrt();
            norms.push(norm);
            if norm > 1e-12 {
                for r in 0..n {
                    self.set(r, j, self.get(r, j) / norm);
                }
            } else {
                for r in 0..n {
                    self.set(r, j, 0.0);
                }
            }
        }
        norms
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.par_iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Bytes of storage used by the data (for Table 2 storage accounting).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let mut i2 = DenseMatrix::zeros(2, 2);
        i2.set(0, 0, 1.0);
        i2.set(1, 1, 1.0);
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&i2), a);
    }

    #[test]
    fn matmul_known() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[6.0]);
        assert_eq!(c.row(1), &[15.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_schmidt_orthonormalizes() {
        let mut a = DenseMatrix::from_vec(3, 2, vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
        a.orthonormalize_columns();
        // Columns must be unit and orthogonal.
        let mut dot = 0.0;
        let mut n0 = 0.0;
        let mut n1 = 0.0;
        for r in 0..3 {
            dot += a.get(r, 0) * a.get(r, 1);
            n0 += a.get(r, 0) * a.get(r, 0);
            n1 += a.get(r, 1) * a.get(r, 1);
        }
        assert!(dot.abs() < 1e-10);
        assert!((n0 - 1.0).abs() < 1e-10);
        assert!((n1 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn frobenius_norm() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }
}
