//! Sharded execution with shared-state reconciliation (§7.3 beyond edge
//! kernels).
//!
//! The paper's distributed engine partitions vertices across MPI ranks and
//! shares the Edge-Once `considered` flags through RMA windows. This module
//! simulates that substrate with OS threads and an explicit, *deterministic*
//! message protocol:
//!
//! * every rank owns a contiguous vertex range ([`partition_vertices`]) and
//!   with it the canonical edges whose smaller endpoint falls in the range
//!   (canonical edges are lexicographically sorted, so each rank's edges are
//!   a contiguous id range) and the triangles whose smallest vertex falls in
//!   the range (each triangle has exactly one owner);
//! * ranks communicate through per-`(src, dst)` outboxes; a receiver drains
//!   its inboxes **merged in source-rank order**, so the view every rank
//!   observes is a pure function of the input — results are bit-identical
//!   at any `ranks` × `SG_THREADS` combination;
//! * stateful disciplines (Edge-Once, Count-Triangles) run in *superstep
//!   rounds*: pending sampled triangles propose on their three edges, edge
//!   owners grant each edge to the smallest pending triangle in the
//!   sequential processing order, and a triangle commits only when it holds
//!   all three grants — at which point the flag state it observes on its
//!   edges is exactly the state the sequential pass would have shown it.
//!
//! Each round resolves at least the globally smallest pending triangle, so
//! the protocol terminates; committed triangles within one round are
//! edge-disjoint (each edge has a single winner), so their updates commute.

use crate::error::DistError;
use crate::{distributed_degree_histogram, DistResult, RankStats};
use sg_core::kernel::{Triangle, VertexDecision, VertexKernel, VertexView};
use sg_core::schemes::{ranked_triangle_edges, triangle_sampled, Discipline, EdgeChoice, TrConfig};
use sg_core::{CompressionResult, DetRand, SgContext};
use sg_graph::partition::partition_vertices;
use sg_graph::{CsrGraph, EdgeId, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Per-`(src, dst)` outboxes with deterministic drain order.
///
/// `send` appends to the `(src, dst)` slot (uncontended: one writer per
/// slot); `drain` concatenates everything addressed to a rank **in source-
/// rank order** — the merge that keeps the protocol deterministic.
struct Exchange<M> {
    ranks: usize,
    slots: Vec<Mutex<Vec<M>>>,
}

impl<M> Exchange<M> {
    fn new(ranks: usize) -> Self {
        Self { ranks, slots: (0..ranks * ranks).map(|_| Mutex::new(Vec::new())).collect() }
    }

    fn send(&self, src: usize, dst: usize, msg: M) {
        self.slots[src * self.ranks + dst].lock().expect("no poisoned lock").push(msg);
    }

    fn drain(&self, dst: usize) -> Vec<M> {
        let mut out = Vec::new();
        for src in 0..self.ranks {
            out.append(&mut self.slots[src * self.ranks + dst].lock().expect("no poisoned lock"));
        }
        out
    }
}

/// Sequential processing-order key of a triangle: Count-Triangles orders by
/// the rarest incident edge first, Edge-Once by canonical `(u, v, w)`.
/// Unique per triangle, so edge grants have a single deterministic winner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TriKey {
    count: u64,
    u: VertexId,
    v: VertexId,
    w: VertexId,
}

/// Round phase 1: a pending triangle asks the owner of one of its edges for
/// a grant.
struct Proposal {
    edge: EdgeId,
    key: TriKey,
    src: usize,
    tri: u32,
    slot: u8,
}

/// Round phase 2: the edge owner's answer — whether the triangle holds the
/// smallest key on this edge, and the edge's authoritative `considered`
/// flag.
struct Reply {
    tri: u32,
    slot: u8,
    won: bool,
    considered: bool,
}

/// Round phase 3: a committed triangle's flag updates, applied by the edge
/// owner in phase 4. `delete: false` marks the edge considered only.
struct Update {
    edge: EdgeId,
    delete: bool,
}

/// A sampled triangle awaiting its turn in the superstep protocol.
struct Pending {
    t: Triangle,
    key: TriKey,
    resolved: bool,
    won: [bool; 3],
    considered: [bool; 3],
}

/// One rank's partitioned state: its vertex range, the canonical edges it
/// owns, and the authoritative `considered`/deletion flags for those edges
/// (the paper's RMA window, sliced per rank).
pub struct ShardedContext<'g> {
    /// The shared read-only input graph.
    pub graph: &'g CsrGraph,
    /// This rank's id.
    pub rank: usize,
    /// Total rank count.
    pub ranks: usize,
    /// Owned vertex range `[lo, hi)`.
    pub vertices: (usize, usize),
    /// Owned canonical-edge range `[lo, hi)` (edges whose smaller endpoint
    /// this rank owns).
    pub edges: (usize, usize),
    /// Deterministic random source (same formulas as [`SgContext`]).
    pub rand: DetRand,
    /// Messages this rank sent over the exchange.
    pub messages_sent: u64,
    /// Superstep rounds this rank executed.
    pub supersteps: u64,
    /// Edge-id boundaries of every rank's owned edge range (len `ranks+1`).
    edge_starts: Arc<Vec<usize>>,
    /// Authoritative `considered` flags for owned edges.
    considered: Vec<bool>,
    /// Authoritative deletion flags for owned edges.
    deleted: Vec<bool>,
}

impl<'g> ShardedContext<'g> {
    fn new(
        graph: &'g CsrGraph,
        rank: usize,
        ranks: usize,
        vertices: (usize, usize),
        edge_starts: Arc<Vec<usize>>,
        seed: u64,
    ) -> Self {
        let edges = (edge_starts[rank], edge_starts[rank + 1]);
        let owned = edges.1 - edges.0;
        Self {
            graph,
            rank,
            ranks,
            vertices,
            edges,
            rand: DetRand::new(seed),
            messages_sent: 0,
            supersteps: 0,
            edge_starts,
            considered: vec![false; owned],
            deleted: vec![false; owned],
        }
    }

    /// The rank owning canonical edge `e`.
    #[inline]
    pub fn owner_of(&self, e: EdgeId) -> usize {
        self.edge_starts.partition_point(|&s| s <= e as usize).saturating_sub(1).min(self.ranks - 1)
    }

    /// Authoritative `considered` flag of an *owned* edge.
    #[inline]
    fn edge_considered(&self, e: EdgeId) -> bool {
        self.considered[e as usize - self.edges.0]
    }

    /// Applies one flag update to an owned edge.
    #[inline]
    fn apply(&mut self, update: &Update) {
        let i = update.edge as usize - self.edges.0;
        self.considered[i] = true;
        if update.delete {
            self.deleted[i] = true;
        }
    }

    fn stats(&self) -> RankStats {
        let kept = self.deleted.iter().filter(|&&d| !d).count();
        RankStats {
            rank: self.rank,
            owned_edges: self.edges.1 - self.edges.0,
            kept_edges: kept,
            owned_vertices: self.vertices.1 - self.vertices.0,
            messages_sent: self.messages_sent,
            supersteps: self.supersteps,
        }
    }
}

/// Edge-id boundary of every rank's owned range: canonical edges are
/// lexicographically sorted, so the edges whose smaller endpoint lies in
/// rank `r`'s vertex range form the contiguous id range
/// `[starts[r], starts[r+1])`.
fn edge_rank_starts(g: &CsrGraph, parts: &[(usize, usize)]) -> Vec<usize> {
    let edges = g.edge_slice();
    let mut starts: Vec<usize> =
        parts.iter().map(|&(lo, _)| edges.partition_point(|&(u, _)| (u as usize) < lo)).collect();
    starts.push(g.num_edges());
    starts
}

/// Triangles owned by one rank (smallest vertex in the owned range) that
/// the TR sampling coin selects, in canonical enumeration order.
fn sampled_triangles(
    ctx: &ShardedContext<'_>,
    cfg: TrConfig,
    counts: Option<&[u64]>,
) -> Vec<Pending> {
    let mut pending = Vec::new();
    for u in ctx.vertices.0..ctx.vertices.1 {
        sg_algos::tc::for_triangles_at(ctx.graph, u as VertexId, &mut |t: Triangle| {
            if triangle_sampled(&t, cfg.p, ctx.rand) {
                let count = counts
                    .map(|c| t.edges().iter().map(|&e| c[e as usize]).min().expect("three edges"))
                    .unwrap_or(0);
                pending.push(Pending {
                    t,
                    key: TriKey { count, u: t.u, v: t.v, w: t.w },
                    resolved: false,
                    won: [false; 3],
                    considered: [false; 3],
                });
            }
        });
    }
    pending
}

/// Runs the Triangle Reduction family over `ranks` sharded rank threads.
/// Bit-identical to `triangle_reduce(g, cfg, seed)` at any rank count.
pub(crate) fn sharded_triangle_compress(
    g: &CsrGraph,
    cfg: TrConfig,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, DistError> {
    if ranks == 0 {
        return Err(DistError::InvalidRanks { ranks });
    }
    assert!((0.0..=1.0).contains(&cfg.p), "p must be in [0, 1]");
    assert!(cfg.x == 1 || cfg.x == 2, "x must be 1 or 2");
    let start = Instant::now();
    let parts = partition_vertices(g.num_vertices(), ranks);
    let edge_starts = Arc::new(edge_rank_starts(g, &parts));

    let barrier = Barrier::new(ranks);
    let pending_total = AtomicUsize::new(0);
    let proposals: Exchange<Proposal> = Exchange::new(ranks);
    let replies: Exchange<Reply> = Exchange::new(ranks);
    let updates: Exchange<Update> = Exchange::new(ranks);
    // Count-Triangles needs global per-edge triangle counts: every rank
    // contributes a partial histogram over its owned triangles; rank 0
    // merges them in rank order (sums commute) and republishes.
    let count_slots: Vec<Mutex<Option<Vec<u64>>>> = (0..ranks).map(|_| Mutex::new(None)).collect();
    let merged_counts: Mutex<Option<Arc<Vec<u64>>>> = Mutex::new(None);
    let outputs: Vec<Mutex<Option<RankStats>>> = (0..ranks).map(|_| Mutex::new(None)).collect();
    let deleted_slots: Vec<Mutex<Vec<bool>>> = (0..ranks).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for (rank, &part) in parts.iter().enumerate() {
            let edge_starts = Arc::clone(&edge_starts);
            let (barrier, pending_total) = (&barrier, &pending_total);
            let (proposals, replies, updates) = (&proposals, &replies, &updates);
            let (count_slots, merged_counts) = (&count_slots, &merged_counts);
            let (outputs, deleted_slots) = (&outputs, &deleted_slots);
            scope.spawn(move || {
                let mut ctx = ShardedContext::new(g, rank, ranks, part, edge_starts, seed);

                let counts: Option<Arc<Vec<u64>>> = if cfg.choice == EdgeChoice::FewestTriangles {
                    let mut partial = vec![0u64; g.num_edges()];
                    for u in ctx.vertices.0..ctx.vertices.1 {
                        sg_algos::tc::for_triangles_at(g, u as VertexId, &mut |t: Triangle| {
                            for e in t.edges() {
                                partial[e as usize] += 1;
                            }
                        });
                    }
                    *count_slots[rank].lock().expect("no poisoned lock") = Some(partial);
                    ctx.messages_sent += 1;
                    ctx.supersteps += 1;
                    barrier.wait();
                    if rank == 0 {
                        let mut total = vec![0u64; g.num_edges()];
                        for slot in count_slots.iter() {
                            let partial =
                                slot.lock().expect("no poisoned lock").take().expect("published");
                            for (t, p) in total.iter_mut().zip(&partial) {
                                *t += p;
                            }
                        }
                        *merged_counts.lock().expect("no poisoned lock") = Some(Arc::new(total));
                    }
                    barrier.wait();
                    Some(Arc::clone(
                        merged_counts.lock().expect("no poisoned lock").as_ref().expect("merged"),
                    ))
                } else {
                    None
                };

                match cfg.discipline {
                    Discipline::Plain => run_rank_plain(
                        &mut ctx,
                        cfg,
                        counts.as_deref().map(|v| v.as_slice()),
                        updates,
                        barrier,
                    ),
                    Discipline::EdgeOnce => run_rank_edge_once(
                        &mut ctx,
                        cfg,
                        counts.as_deref().map(|v| v.as_slice()),
                        proposals,
                        replies,
                        updates,
                        pending_total,
                        barrier,
                    ),
                }

                *outputs[rank].lock().expect("no poisoned lock") = Some(ctx.stats());
                *deleted_slots[rank].lock().expect("no poisoned lock") =
                    std::mem::take(&mut ctx.deleted);
            });
        }
    });

    // Gather at the root: per-rank deletion flags concatenated in rank
    // order cover the canonical edge array exactly once.
    let mut deleted = Vec::with_capacity(g.num_edges());
    for slot in &deleted_slots {
        deleted.append(&mut slot.lock().expect("no poisoned lock"));
    }
    let mut stats: Vec<RankStats> = Vec::with_capacity(ranks);
    for slot in &outputs {
        stats.push(slot.lock().expect("no poisoned lock").take().expect("rank finished"));
    }
    let graph = g.filter_edges(|e| !deleted[e as usize]);
    let degree_histogram = distributed_degree_histogram(&graph, ranks);
    Ok(DistResult {
        result: CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        },
        ranks: stats,
        degree_histogram,
    })
}

/// Plain TR: sampling decisions are state-independent, so one superstep
/// suffices — ranks send deletions of their sampled triangles' chosen edges
/// to the edge owners, then owners apply them.
fn run_rank_plain(
    ctx: &mut ShardedContext<'_>,
    cfg: TrConfig,
    counts: Option<&[u64]>,
    updates: &Exchange<Update>,
    barrier: &Barrier,
) {
    ctx.supersteps += 1;
    for u in ctx.vertices.0..ctx.vertices.1 {
        let (rank, rand) = (ctx.rank, ctx.rand);
        let mut messages = 0u64;
        let graph = ctx.graph;
        let mut emit = |t: Triangle| {
            if !triangle_sampled(&t, cfg.p, rand) {
                return;
            }
            let ranked =
                ranked_triangle_edges(&t, cfg.choice, rand, |e| graph.edge_weight(e), counts);
            for &e in ranked.iter().take(cfg.x) {
                updates.send(
                    rank,
                    ctx_owner(&ctx.edge_starts, ctx.ranks, e),
                    Update { edge: e, delete: true },
                );
                messages += 1;
            }
        };
        sg_algos::tc::for_triangles_at(ctx.graph, u as VertexId, &mut emit);
        ctx.messages_sent += messages;
    }
    barrier.wait();
    for update in updates.drain(ctx.rank) {
        ctx.apply(&update);
    }
    barrier.wait();
}

/// Owner lookup without borrowing the whole context (used inside closures
/// that already borrow `ctx` mutably elsewhere).
#[inline]
fn ctx_owner(edge_starts: &[usize], ranks: usize, e: EdgeId) -> usize {
    edge_starts.partition_point(|&s| s <= e as usize).saturating_sub(1).min(ranks - 1)
}

/// Edge-Once / Count-Triangles: the superstep reservation protocol. Every
/// round, pending triangles propose on their three edges; owners grant each
/// edge to the smallest pending key; triangles holding all three grants
/// commit against the authoritative flags and resolve.
#[allow(clippy::too_many_arguments)]
fn run_rank_edge_once(
    ctx: &mut ShardedContext<'_>,
    cfg: TrConfig,
    counts: Option<&[u64]>,
    proposals: &Exchange<Proposal>,
    replies: &Exchange<Reply>,
    updates: &Exchange<Update>,
    pending_total: &AtomicUsize,
    barrier: &Barrier,
) {
    let mut pending = sampled_triangles(ctx, cfg, counts);
    pending_total.fetch_add(pending.len(), Ordering::SeqCst);
    barrier.wait();

    loop {
        if pending_total.load(Ordering::SeqCst) == 0 {
            break;
        }
        ctx.supersteps += 1;

        // Phase 1: unresolved triangles propose on their three edges.
        for (i, p) in pending.iter_mut().enumerate() {
            if p.resolved {
                continue;
            }
            p.won = [false; 3];
            for (slot, &e) in p.t.edges().iter().enumerate() {
                proposals.send(
                    ctx.rank,
                    ctx_owner(&ctx.edge_starts, ctx.ranks, e),
                    Proposal {
                        edge: e,
                        key: p.key,
                        src: ctx.rank,
                        tri: i as u32,
                        slot: slot as u8,
                    },
                );
                ctx.messages_sent += 1;
            }
        }
        barrier.wait();

        // Phase 2: owners grant each edge to the smallest pending key and
        // report the authoritative `considered` flag.
        let inbox = proposals.drain(ctx.rank);
        let mut winner: HashMap<EdgeId, TriKey> = HashMap::new();
        for p in &inbox {
            winner
                .entry(p.edge)
                .and_modify(|k| {
                    if p.key < *k {
                        *k = p.key;
                    }
                })
                .or_insert(p.key);
        }
        for p in &inbox {
            replies.send(
                ctx.rank,
                p.src,
                Reply {
                    tri: p.tri,
                    slot: p.slot,
                    won: winner[&p.edge] == p.key,
                    considered: ctx.edge_considered(p.edge),
                },
            );
            ctx.messages_sent += 1;
        }
        barrier.wait();

        // Phase 3: triangles holding all three grants commit. Same-round
        // committers are edge-disjoint (one winner per edge), so the flag
        // snapshot from the replies is exact.
        for r in replies.drain(ctx.rank) {
            let p = &mut pending[r.tri as usize];
            p.won[r.slot as usize] = r.won;
            p.considered[r.slot as usize] = r.considered;
        }
        let mut resolved_now = 0usize;
        for p in pending.iter_mut() {
            if p.resolved || !(p.won[0] && p.won[1] && p.won[2]) {
                continue;
            }
            p.resolved = true;
            resolved_now += 1;
            let graph = ctx.graph;
            let ranked =
                ranked_triangle_edges(&p.t, cfg.choice, ctx.rand, |e| graph.edge_weight(e), counts);
            let edges = p.t.edges();
            let slot_of = |e: EdgeId| edges.iter().position(|&x| x == e).expect("triangle edge");
            if cfg.choice == EdgeChoice::FewestTriangles {
                // CT claim loop: delete the first x still-unconsidered
                // edges in rank order (consider-and-claim per edge).
                let mut deleted = 0usize;
                for &e in &ranked {
                    if deleted == cfg.x {
                        break;
                    }
                    if !p.considered[slot_of(e)] {
                        updates.send(
                            ctx.rank,
                            ctx_owner(&ctx.edge_starts, ctx.ranks, e),
                            Update { edge: e, delete: true },
                        );
                        ctx.messages_sent += 1;
                        deleted += 1;
                    }
                    // Already-considered edges stay considered (the
                    // sequential re-claim is a no-op); nothing to send.
                }
            } else {
                // Protective EO: proceed only when all three edges are
                // unconsidered, then claim all three and delete the first x.
                if p.considered.iter().any(|&c| c) {
                    continue; // skipped — resolved without updates
                }
                for &e in edges.iter() {
                    let delete = ranked.iter().take(cfg.x).any(|&d| d == e);
                    updates.send(
                        ctx.rank,
                        ctx_owner(&ctx.edge_starts, ctx.ranks, e),
                        Update { edge: e, delete },
                    );
                    ctx.messages_sent += 1;
                }
            }
        }
        if resolved_now > 0 {
            pending_total.fetch_sub(resolved_now, Ordering::SeqCst);
        }
        barrier.wait();

        // Phase 4: owners apply the committed updates.
        for update in updates.drain(ctx.rank) {
            ctx.apply(&update);
        }
        barrier.wait();
    }
}

/// Runs a vertex kernel over `ranks` sharded rank threads: each rank
/// decides its owned vertex range, removals are merged in rank order, and
/// the root materializes the relabelled graph. Bit-identical to
/// `Engine::run_vertex_kernel` at any rank count.
/// One rank's removal verdicts (`removed[i]` for vertex `lo + i`) plus its
/// decision count, parked until the root merges them in rank order.
type RemovedSlot = Mutex<Option<(Vec<bool>, u64)>>;

pub(crate) fn sharded_vertex_compress(
    g: &CsrGraph,
    kernel: &dyn VertexKernel,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, DistError> {
    if ranks == 0 {
        return Err(DistError::InvalidRanks { ranks });
    }
    let start = Instant::now();
    let parts = partition_vertices(g.num_vertices(), ranks);
    let edge_starts = edge_rank_starts(g, &parts);
    let removed_slots: Vec<RemovedSlot> = (0..ranks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (rank, &(lo, hi)) in parts.iter().enumerate() {
            let removed_slots = &removed_slots;
            scope.spawn(move || {
                let sg = SgContext::new(g, seed);
                let removed: Vec<bool> = (lo..hi)
                    .map(|v| {
                        let view =
                            VertexView { id: v as VertexId, degree: g.degree(v as VertexId) };
                        kernel.process(view, &sg) == VertexDecision::Delete
                    })
                    .collect();
                // One gather message per rank (the RMA put of its range).
                *removed_slots[rank].lock().expect("no poisoned lock") = Some((removed, 1));
            });
        }
    });

    let mut removed = Vec::with_capacity(g.num_vertices());
    let mut messages = Vec::with_capacity(ranks);
    for slot in &removed_slots {
        let (part, sent) = slot.lock().expect("no poisoned lock").take().expect("rank finished");
        removed.extend(part);
        messages.push(sent);
    }
    let (graph, mapping) = g.remove_vertices(&removed);
    let stats: Vec<RankStats> = parts
        .iter()
        .enumerate()
        .map(|(rank, &(lo, hi))| {
            let (elo, ehi) = (edge_starts[rank], edge_starts[rank + 1]);
            // An owned edge survives when both endpoints survive.
            let kept = (elo..ehi)
                .filter(|&e| {
                    let (u, v) = g.edge_endpoints(e as EdgeId);
                    !removed[u as usize] && !removed[v as usize]
                })
                .count();
            RankStats {
                rank,
                owned_edges: ehi - elo,
                kept_edges: kept,
                owned_vertices: hi - lo,
                messages_sent: messages[rank],
                supersteps: 1,
            }
        })
        .collect();
    let degree_histogram = distributed_degree_histogram(&graph, ranks);
    Ok(DistResult {
        result: CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: Some(mapping),
        },
        ranks: stats,
        degree_histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::schemes::LowDegreeKernel;
    use sg_graph::generators;

    fn triangle_rich() -> CsrGraph {
        generators::planted_triangles(&generators::erdos_renyi(700, 1500, 1), 1100, 2)
    }

    #[test]
    fn edge_rank_starts_cover_and_agree_with_ownership() {
        let g = triangle_rich();
        let parts = partition_vertices(g.num_vertices(), 5);
        let starts = edge_rank_starts(&g, &parts);
        assert_eq!(starts[0], 0);
        assert_eq!(*starts.last().expect("non-empty"), g.num_edges());
        for (rank, &(lo, hi)) in parts.iter().enumerate() {
            for e in starts[rank]..starts[rank + 1] {
                let (u, _) = g.edge_endpoints(e as EdgeId);
                assert!((u as usize) >= lo && (u as usize) < hi, "edge {e} not owned by {rank}");
            }
        }
    }

    #[test]
    fn plain_tr_matches_shared_memory_at_every_rank_count() {
        let g = triangle_rich();
        let shared = sg_core::schemes::triangle_reduce(&g, TrConfig::plain_1(0.6), 33);
        for ranks in [1, 2, 3, 8] {
            let dist = sharded_triangle_compress(&g, TrConfig::plain_1(0.6), ranks, 33)
                .expect("plain shards");
            assert_eq!(
                dist.result.graph.edge_slice(),
                shared.graph.edge_slice(),
                "ranks = {ranks}"
            );
        }
    }

    #[test]
    fn edge_once_superstep_protocol_matches_sequential_pass() {
        let g = triangle_rich();
        for cfg in
            [TrConfig::edge_once_1(0.7), TrConfig::count_triangles(0.7), TrConfig::max_weight(0.7)]
        {
            let shared = sg_core::schemes::triangle_reduce(&g, cfg, 91);
            for ranks in [1, 2, 4, 7] {
                let dist = sharded_triangle_compress(&g, cfg, ranks, 91).expect("EO shards");
                assert_eq!(
                    dist.result.graph.edge_slice(),
                    shared.graph.edge_slice(),
                    "{} ranks = {ranks}",
                    cfg.label()
                );
                assert!(
                    dist.ranks.iter().all(|r| r.supersteps >= 1),
                    "EO runs at least one superstep"
                );
            }
        }
    }

    #[test]
    fn vertex_kernel_matches_engine_and_keeps_mapping() {
        let g = generators::barabasi_albert(900, 3, 7);
        let shared = sg_core::schemes::remove_low_degree(&g, 5);
        for ranks in [1, 2, 6] {
            let dist = sharded_vertex_compress(&g, &LowDegreeKernel::default(), ranks, 5)
                .expect("vertex shards");
            assert_eq!(dist.result.graph.edge_slice(), shared.graph.edge_slice());
            assert_eq!(dist.result.vertex_mapping, shared.vertex_mapping);
            let kept: usize = dist.ranks.iter().map(|r| r.kept_edges).sum();
            assert_eq!(kept, dist.result.graph.num_edges());
        }
    }

    #[test]
    fn triangle_free_graph_terminates_without_supersteps() {
        let g = generators::cycle(64); // no triangles
        let dist = sharded_triangle_compress(&g, TrConfig::edge_once_1(1.0), 4, 3).expect("runs");
        assert_eq!(dist.result.graph.num_edges(), 64);
        assert!(dist.ranks.iter().all(|r| r.supersteps == 0));
    }

    #[test]
    fn zero_ranks_is_a_typed_error() {
        let g = generators::cycle(8);
        let err = sharded_triangle_compress(&g, TrConfig::plain_1(0.5), 0, 1).unwrap_err();
        assert_eq!(err.code(), "dist-invalid-ranks");
    }
}
