//! # sg-dist — simulated distributed-memory compression (§7.3)
//!
//! The paper compresses its largest graphs (up to Web Data Commons 2012 at
//! ≈128 B edges) with a *distributed* implementation of compression kernels
//! built on MPI Remote Memory Access. That substrate is simulated here:
//! each MPI rank becomes an OS thread owning a contiguous shard of the
//! graph (`sg_graph::partition`), kernels run per shard, and gather phases
//! flow over channels and deterministic mailboxes instead of RMA windows.
//!
//! Three kernel classes run distributed:
//!
//! * **edge kernels** — decisions are pure in `(seed, edge id)`, so shards
//!   are embarrassingly parallel ([`distributed_edge_kernel`]);
//! * **triangle kernels** — the Triangle Reduction family, including the
//!   stateful Edge-Once/Count-Triangles disciplines, via the superstep
//!   reservation protocol in [`sharded`];
//! * **vertex kernels** — per-rank decisions over owned vertex ranges,
//!   merged in rank order ([`sharded`]).
//!
//! In every case the distributed result is **bit-identical** to the
//! shared-memory `scheme.apply(g, seed)` for any rank count — the property
//! the tests pin down. Schemes that rewrite the graph globally
//! (summarization, spanners, collapse) report [`DistError::Unsupported`].
//!
//! The `shard_*` helpers at the bottom are the *federation* building
//! blocks: sg-serve's coordinator splits a request into `(shard, shards)`
//! sub-requests answered by worker daemons holding full graph replicas, and
//! merges the returned deletion lists with [`apply_edge_deletions`] /
//! [`apply_vertex_removals`].

pub mod error;
pub mod sharded;

pub use error::DistError;
pub use sharded::ShardedContext;

use crossbeam::channel;
use sg_core::kernel::{
    EdgeDecision, EdgeKernel, EdgeView, Triangle, VertexDecision, VertexKernel, VertexView,
};
use sg_core::schemes::{ranked_triangle_edges, triangle_sampled, Discipline, EdgeChoice, TrConfig};
use sg_core::{CompressionResult, CompressionScheme, DetRand, DistPlan, SgContext};
use sg_graph::partition::{partition_edges, partition_vertices, EdgeShard};
use sg_graph::{CsrGraph, EdgeId, VertexId};
use std::time::Instant;

/// Per-rank execution statistics returned by the simulated pipeline.
#[derive(Clone, Debug)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Canonical edges owned by the rank.
    pub owned_edges: usize,
    /// Owned edges that survived compression.
    pub kept_edges: usize,
    /// Vertices owned by the rank (0 on the edge-partitioned path, which
    /// shards the edge array directly).
    pub owned_vertices: usize,
    /// Messages the rank sent over the exchange (gather sends included).
    pub messages_sent: u64,
    /// Superstep rounds the rank executed (1 for stateless kernels).
    pub supersteps: u64,
}

/// Outcome of a distributed compression run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// The compressed graph (gathered at the root).
    pub result: CompressionResult,
    /// Per-rank statistics.
    pub ranks: Vec<RankStats>,
    /// Merged degree histogram of the compressed graph
    /// (`degree -> #vertices`), the Figure-8 artifact.
    pub degree_histogram: Vec<(usize, usize)>,
}

impl DistResult {
    /// Largest relative deviation of any rank's `owned_edges` from the
    /// mean, in percent — the load-imbalance figure of the dist_scale
    /// bench.
    pub fn edge_imbalance_pct(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        let total: usize = self.ranks.iter().map(|r| r.owned_edges).sum();
        let mean = total as f64 / self.ranks.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| ((r.owned_edges as f64 - mean).abs() / mean) * 100.0)
            .fold(0.0, f64::max)
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Maximum superstep count over the ranks.
    pub fn max_supersteps(&self) -> u64 {
        self.ranks.iter().map(|r| r.supersteps).max().unwrap_or(0)
    }
}

/// Runs an edge kernel over `ranks` simulated distributed ranks.
pub fn distributed_edge_kernel<K: EdgeKernel + ?Sized>(
    g: &CsrGraph,
    kernel: &K,
    ranks: usize,
    seed: u64,
) -> DistResult {
    assert!(ranks > 0, "need at least one rank");
    let start = Instant::now();
    let shards = partition_edges(g, ranks);
    let (tx, rx) = channel::unbounded::<(usize, Vec<EdgeId>)>();

    // Each rank runs its shard independently (thread = MPI rank).
    std::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            let shard: EdgeShard = *shard;
            scope.spawn(move || {
                let sg = SgContext::new(g, seed);
                let kept: Vec<EdgeId> = shard
                    .edge_ids()
                    .filter(|&e| {
                        let (u, v) = g.edge_endpoints(e);
                        let view = EdgeView {
                            id: e,
                            u,
                            v,
                            weight: g.edge_weight(e),
                            deg_u: g.degree(u),
                            deg_v: g.degree(v),
                        };
                        !matches!(kernel.process(view, &sg), EdgeDecision::Delete)
                    })
                    .collect();
                tx.send((shard.rank, kept)).expect("root outlives ranks");
            });
        }
    });
    drop(tx);

    // Gather phase at the root.
    let mut per_rank: Vec<Vec<EdgeId>> = vec![Vec::new(); ranks];
    for (rank, kept) in rx {
        per_rank[rank] = kept;
    }
    let stats: Vec<RankStats> = shards
        .iter()
        .map(|s| RankStats {
            rank: s.rank,
            owned_edges: s.len(),
            kept_edges: per_rank[s.rank].len(),
            owned_vertices: 0,
            messages_sent: 1, // one gather send per rank
            supersteps: 1,
        })
        .collect();
    let mut keep_mask = vec![false; g.num_edges()];
    for kept in &per_rank {
        for &e in kept {
            keep_mask[e as usize] = true;
        }
    }
    let graph = g.filter_edges(|e| keep_mask[e as usize]);
    let degree_histogram = distributed_degree_histogram(&graph, ranks);
    DistResult {
        result: CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        },
        ranks: stats,
        degree_histogram,
    }
}

/// Distributed random uniform sampling — the §7.3 experiment (Figure 8).
pub fn distributed_uniform_sample(g: &CsrGraph, p: f64, ranks: usize, seed: u64) -> DistResult {
    let kernel = sg_core::schemes::UniformKernel::new(p);
    distributed_edge_kernel(g, &kernel, ranks, seed)
}

/// Runs any registry scheme with a sharded-execution plan over the
/// simulated distributed pipeline:
///
/// * edge-kernel schemes (`uniform`, `spectral`, `cut`) shard the edge
///   array and run embarrassingly parallel;
/// * the Triangle Reduction family (`tr`, `tr-eo`, `tr-ct`, `tr-mw`) runs
///   the superstep reservation protocol of [`sharded`];
/// * vertex-kernel schemes (`lowdeg`) decide per owned vertex range and
///   merge removals in rank order.
///
/// Schemes that rewrite the graph globally (`collapse`, `spanner`,
/// `summary`) return [`DistError::Unsupported`]. Results are bit-identical
/// to `scheme.apply(g, seed)` for any rank count.
pub fn distributed_compress(
    g: &CsrGraph,
    scheme: &dyn CompressionScheme,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, DistError> {
    if ranks == 0 {
        return Err(DistError::InvalidRanks { ranks });
    }
    match scheme.dist_plan(g) {
        Some(DistPlan::EdgeKernel(kernel)) => {
            Ok(distributed_edge_kernel(g, kernel.as_ref(), ranks, seed))
        }
        Some(DistPlan::Triangle(cfg)) => sharded::sharded_triangle_compress(g, cfg, ranks, seed),
        Some(DistPlan::Vertex(kernel)) => {
            sharded::sharded_vertex_compress(g, kernel.as_ref(), ranks, seed)
        }
        None => Err(unsupported_global(scheme)),
    }
}

/// Runs a registry scheme's sharded plan over `ranks` simulated ranks with
/// the graph served zero-copy out of one shared read-only `.sgr` mapping —
/// the paper's setting where every rank reads the node-local graph through
/// RMA windows without private copies.
///
/// `sg_store::MmapGraph` borrows the CSR sections straight from the
/// mapping, and each rank thread borrows the same `CsrGraph`, so the whole
/// simulated cluster holds exactly one copy of the graph: the page cache's.
/// Results are bit-identical to [`distributed_compress`] over a heap-loaded
/// graph.
pub fn distributed_compress_sgr(
    path: impl AsRef<std::path::Path>,
    scheme: &dyn CompressionScheme,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, DistError> {
    let path = path.as_ref();
    let mapped = sg_store::MmapGraph::open(path)
        .map_err(|e| DistError::Io { path: path.display().to_string(), message: e.to_string() })?;
    distributed_compress(&mapped, scheme, ranks, seed)
}

/// Computes the degree histogram with per-rank partial histograms merged at
/// the root (each rank owns a contiguous vertex range — the reduction the
/// paper performs with RMA accumulate).
pub fn distributed_degree_histogram(g: &CsrGraph, ranks: usize) -> Vec<(usize, usize)> {
    let parts = partition_vertices(g.num_vertices(), ranks);
    let (tx, rx) = channel::unbounded::<Vec<(usize, usize)>>();
    std::thread::scope(|scope| {
        for &(lo, hi) in &parts {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut local: rustc_lite::Map = rustc_lite::Map::new();
                for v in lo..hi {
                    local.add(g.degree(v as VertexId));
                }
                tx.send(local.into_sorted()).expect("root outlives ranks");
            });
        }
    });
    drop(tx);
    let mut merged: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for part in rx {
        for (d, c) in part {
            *merged.entry(d).or_insert(0) += c;
        }
    }
    merged.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Federation building blocks: one daemon computes one shard of a request
// against its full graph replica; the coordinator merges the shards.
// ---------------------------------------------------------------------------

/// What one federation shard computed: edge deletions or vertex removals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Edge ids to delete, sorted ascending, deduplicated.
    Edges(Vec<EdgeId>),
    /// Vertex ids to remove, sorted ascending, deduplicated.
    Vertices(Vec<VertexId>),
}

/// The merge type of a federable scheme: what its shards return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardKind {
    /// Shards return edge deletions; the merged graph keeps every edge no
    /// shard deleted.
    Edges,
    /// Shards return vertex removals; the merged graph relabels survivors.
    Vertices,
}

/// Classifies `scheme` for federation **without doing any work**:
/// `Ok(kind)` if independent `(shard, shards)` sub-runs against full
/// replicas reconstruct the shared-memory result, else exactly the typed
/// error [`shard_compress`] would return. The serving coordinator calls
/// this up front to pick federated vs coordinator-local execution.
pub fn federation_plan(
    g: &CsrGraph,
    scheme: &dyn CompressionScheme,
) -> Result<ShardKind, DistError> {
    match scheme.dist_plan(g) {
        Some(DistPlan::EdgeKernel(_)) => Ok(ShardKind::Edges),
        Some(DistPlan::Triangle(cfg)) => triangle_shard_supported(cfg).map(|()| ShardKind::Edges),
        Some(DistPlan::Vertex(_)) => Ok(ShardKind::Vertices),
        None => Err(unsupported_global(scheme)),
    }
}

/// Plain Triangle Reduction federates; the stateful Edge-Once disciplines
/// need the superstep flag exchange and must run through
/// [`distributed_compress`] instead.
fn triangle_shard_supported(cfg: TrConfig) -> Result<(), DistError> {
    if cfg.discipline != Discipline::Plain {
        return Err(DistError::Unsupported {
            scheme: cfg.label(),
            reason: "Edge-Once disciplines need the cross-shard flag exchange; \
                     run them through distributed_compress"
                .to_string(),
        });
    }
    Ok(())
}

fn unsupported_global(scheme: &dyn CompressionScheme) -> DistError {
    DistError::Unsupported {
        scheme: scheme.name().to_string(),
        reason: "scheme rewrites the graph globally; no sharded-execution plan".to_string(),
    }
}

/// Computes shard `shard` of `shards` for any federable scheme. Dispatches
/// on the scheme's [`DistPlan`]: edge kernels and *Plain* Triangle
/// Reduction yield [`ShardOutcome::Edges`]; vertex kernels yield
/// [`ShardOutcome::Vertices`]. Stateful disciplines (Edge-Once,
/// Count-Triangles) need the cross-shard flag exchange of [`sharded`] and
/// are rejected — the coordinator runs those locally instead.
pub fn shard_compress(
    g: &CsrGraph,
    scheme: &dyn CompressionScheme,
    shard: usize,
    shards: usize,
    seed: u64,
) -> Result<ShardOutcome, DistError> {
    check_shard(shard, shards)?;
    match scheme.dist_plan(g) {
        Some(DistPlan::EdgeKernel(kernel)) => {
            shard_edge_deletions(g, kernel.as_ref(), shard, shards, seed).map(ShardOutcome::Edges)
        }
        Some(DistPlan::Triangle(cfg)) => {
            shard_triangle_deletions(g, cfg, shard, shards, seed).map(ShardOutcome::Edges)
        }
        Some(DistPlan::Vertex(kernel)) => {
            shard_vertex_removals(g, kernel.as_ref(), shard, shards, seed)
                .map(ShardOutcome::Vertices)
        }
        None => Err(unsupported_global(scheme)),
    }
}

/// Edge ids shard `shard` of `shards` deletes under `kernel`. Decisions are
/// pure in `(seed, edge id)`, so the union over all shards equals the
/// shared-memory deletion set exactly.
pub fn shard_edge_deletions(
    g: &CsrGraph,
    kernel: &dyn EdgeKernel,
    shard: usize,
    shards: usize,
    seed: u64,
) -> Result<Vec<EdgeId>, DistError> {
    check_shard(shard, shards)?;
    let sg = SgContext::new(g, seed);
    let deleted = partition_edges(g, shards)[shard]
        .edge_ids()
        .filter(|&e| {
            let (u, v) = g.edge_endpoints(e);
            let view = EdgeView {
                id: e,
                u,
                v,
                weight: g.edge_weight(e),
                deg_u: g.degree(u),
                deg_v: g.degree(v),
            };
            matches!(kernel.process(view, &sg), EdgeDecision::Delete)
        })
        .collect();
    Ok(deleted)
}

/// Edge ids shard `shard` of `shards` deletes under *Plain* Triangle
/// Reduction: the shard enumerates the triangles whose smallest vertex it
/// owns and applies the sampling/ranking rules against its full replica.
/// Stateful disciplines are rejected — they need the superstep exchange.
pub fn shard_triangle_deletions(
    g: &CsrGraph,
    cfg: TrConfig,
    shard: usize,
    shards: usize,
    seed: u64,
) -> Result<Vec<EdgeId>, DistError> {
    check_shard(shard, shards)?;
    triangle_shard_supported(cfg)?;
    let rand = DetRand::new(seed);
    let counts = (cfg.choice == EdgeChoice::FewestTriangles)
        .then(|| sg_core::schemes::triangle_reduction::edge_triangle_counts(g));
    let (lo, hi) = partition_vertices(g.num_vertices(), shards)[shard];
    let mut deleted: Vec<EdgeId> = Vec::new();
    for u in lo..hi {
        sg_algos::tc::for_triangles_at(g, u as VertexId, &mut |t: Triangle| {
            if !triangle_sampled(&t, cfg.p, rand) {
                return;
            }
            let ranked = ranked_triangle_edges(
                &t,
                cfg.choice,
                rand,
                |e| g.edge_weight(e),
                counts.as_deref(),
            );
            deleted.extend(ranked.iter().take(cfg.x));
        });
    }
    deleted.sort_unstable();
    deleted.dedup();
    Ok(deleted)
}

/// Vertex ids shard `shard` of `shards` removes under `kernel` (decided
/// over the shard's owned vertex range).
pub fn shard_vertex_removals(
    g: &CsrGraph,
    kernel: &dyn VertexKernel,
    shard: usize,
    shards: usize,
    seed: u64,
) -> Result<Vec<VertexId>, DistError> {
    check_shard(shard, shards)?;
    let sg = SgContext::new(g, seed);
    let (lo, hi) = partition_vertices(g.num_vertices(), shards)[shard];
    let removed = (lo..hi)
        .filter(|&v| {
            let view = VertexView { id: v as VertexId, degree: g.degree(v as VertexId) };
            kernel.process(view, &sg) == VertexDecision::Delete
        })
        .map(|v| v as VertexId)
        .collect();
    Ok(removed)
}

/// Materializes the merged result of edge-deleting shards.
pub fn apply_edge_deletions(g: &CsrGraph, deleted: &[EdgeId]) -> CsrGraph {
    let mut mask = vec![false; g.num_edges()];
    for &e in deleted {
        mask[e as usize] = true;
    }
    g.filter_edges(|e| !mask[e as usize])
}

/// Materializes the merged result of vertex-removing shards, returning the
/// relabelled graph and the old→new vertex mapping.
pub fn apply_vertex_removals(
    g: &CsrGraph,
    removed: &[VertexId],
) -> (CsrGraph, Vec<Option<VertexId>>) {
    let mut mask = vec![false; g.num_vertices()];
    for &v in removed {
        mask[v as usize] = true;
    }
    g.remove_vertices(&mask)
}

fn check_shard(shard: usize, shards: usize) -> Result<(), DistError> {
    if shards == 0 || shard >= shards {
        return Err(DistError::InvalidShard { shard, shards });
    }
    Ok(())
}

/// Tiny local histogram helper (keeps per-rank state allocation-light).
mod rustc_lite {
    pub struct Map {
        counts: Vec<usize>,
    }
    impl Map {
        pub fn new() -> Self {
            Self { counts: Vec::new() }
        }
        pub fn add(&mut self, degree: usize) {
            if degree >= self.counts.len() {
                self.counts.resize(degree + 1, 0);
            }
            self.counts[degree] += 1;
        }
        pub fn into_sorted(self) -> Vec<(usize, usize)> {
            self.counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::schemes::uniform_sample;
    use sg_core::{SchemeParams, SchemeRegistry};
    use sg_graph::generators;

    #[test]
    fn distributed_matches_shared_memory_exactly() {
        // Determinism in (seed, edge id) means rank count cannot change the
        // result — the core guarantee of the simulation.
        let g = generators::rmat_graph500(12, 8, 1);
        let shared = uniform_sample(&g, 0.4, 42);
        for ranks in [1, 2, 7, 16] {
            let dist = distributed_uniform_sample(&g, 0.4, ranks, 42);
            assert_eq!(
                dist.result.graph.edge_slice(),
                shared.graph.edge_slice(),
                "ranks = {ranks}"
            );
        }
    }

    #[test]
    fn rank_stats_cover_all_edges() {
        let g = generators::erdos_renyi(1000, 5000, 2);
        let dist = distributed_uniform_sample(&g, 0.3, 5, 3);
        let owned: usize = dist.ranks.iter().map(|r| r.owned_edges).sum();
        let kept: usize = dist.ranks.iter().map(|r| r.kept_edges).sum();
        assert_eq!(owned, g.num_edges());
        assert_eq!(kept, dist.result.graph.num_edges());
        assert!(dist.edge_imbalance_pct() < 1.0, "contiguous shards stay balanced");
        assert_eq!(dist.max_supersteps(), 1);
    }

    #[test]
    fn histogram_matches_direct_computation() {
        let g = generators::barabasi_albert(800, 4, 4);
        let hist = distributed_degree_histogram(&g, 6);
        let direct = sg_graph::properties::DegreeDistribution::of(&g);
        assert_eq!(hist, direct.entries);
    }

    #[test]
    fn histogram_total_is_n() {
        let g = generators::rmat_graph500(11, 10, 5);
        let dist = distributed_uniform_sample(&g, 0.7, 4, 6);
        let total: usize = dist.degree_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn registry_schemes_dispatch_through_their_plans() {
        let g = generators::planted_triangles(&generators::erdos_renyi(900, 2000, 9), 1500, 3);
        let registry = SchemeRegistry::with_defaults();
        let params = SchemeParams::from_pairs(&[("p", "0.4")]);
        // Edge plan.
        let uniform = registry.create("uniform", &params).expect("known");
        let dist = distributed_compress(&g, uniform.as_ref(), 5, 17).expect("edge kernel");
        assert_eq!(dist.result.graph.edge_slice(), uniform.apply(&g, 17).graph.edge_slice());
        // Triangle plan — the edge-kernel-only restriction is gone.
        let tr = registry.create("tr", &params).expect("known");
        let dist = distributed_compress(&g, tr.as_ref(), 5, 17).expect("triangle plan");
        assert_eq!(dist.result.graph.edge_slice(), tr.apply(&g, 17).graph.edge_slice());
        // Vertex plan.
        let lowdeg = registry.create("lowdeg", &SchemeParams::default()).expect("known");
        let dist = distributed_compress(&g, lowdeg.as_ref(), 5, 17).expect("vertex plan");
        let shared = lowdeg.apply(&g, 17);
        assert_eq!(dist.result.graph.edge_slice(), shared.graph.edge_slice());
        assert_eq!(dist.result.vertex_mapping, shared.vertex_mapping);
        // Global rewrites stay unsupported, with a typed error.
        let summary = registry.create("summary", &SchemeParams::default()).expect("known");
        let err = distributed_compress(&g, summary.as_ref(), 5, 17).unwrap_err();
        assert_eq!(err.code(), "dist-unsupported");
    }

    #[test]
    fn ranks_share_one_mapping_and_match_heap_results() {
        let g = generators::erdos_renyi(2000, 9000, 21);
        let dir = std::env::temp_dir().join("sg-dist-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shared.sgr");
        sg_store::save_sgr(&g, &path).expect("save");

        // The mapping really is zero-copy before the ranks start.
        let mapped = sg_store::MmapGraph::open(&path).expect("map");
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        assert!(mapped.is_zero_copy());
        drop(mapped);

        let registry = SchemeRegistry::with_defaults();
        let uniform = registry
            .create("uniform", &SchemeParams::from_pairs(&[("p", "0.35")]))
            .expect("known scheme");
        let shared = distributed_compress(&g, uniform.as_ref(), 6, 99).expect("heap run");
        let via_map = distributed_compress_sgr(&path, uniform.as_ref(), 6, 99).expect("mmap run");
        assert_eq!(
            shared.result.graph.edge_slice(),
            via_map.result.graph.edge_slice(),
            "mmap-served shards must be bit-identical to the heap run"
        );
        assert_eq!(shared.degree_histogram, via_map.degree_histogram);
    }

    #[test]
    fn missing_sgr_is_a_typed_io_error() {
        let registry = SchemeRegistry::with_defaults();
        let uniform = registry
            .create("uniform", &SchemeParams::from_pairs(&[("p", "0.5")]))
            .expect("known scheme");
        let err =
            distributed_compress_sgr("/nonexistent/graph.sgr", uniform.as_ref(), 2, 1).unwrap_err();
        assert_eq!(err.code(), "dist-io");
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let g = generators::path(10);
        let dist = distributed_uniform_sample(&g, 0.0, 1, 7);
        assert_eq!(dist.result.graph.num_edges(), 9);
        assert_eq!(dist.ranks.len(), 1);
    }

    #[test]
    fn shard_union_reconstructs_shared_memory_result() {
        let g = generators::planted_triangles(&generators::erdos_renyi(700, 1500, 5), 1000, 6);
        let registry = SchemeRegistry::with_defaults();
        let params = SchemeParams::from_pairs(&[("p", "0.5")]);
        for name in ["uniform", "tr"] {
            let scheme = registry.create(name, &params).expect("known");
            let shared = scheme.apply(&g, 23);
            let mut deleted: Vec<EdgeId> = Vec::new();
            for shard in 0..3 {
                match shard_compress(&g, scheme.as_ref(), shard, 3, 23).expect("shardable") {
                    ShardOutcome::Edges(d) => deleted.extend(d),
                    ShardOutcome::Vertices(_) => panic!("edge scheme returned vertices"),
                }
            }
            deleted.sort_unstable();
            deleted.dedup();
            let merged = apply_edge_deletions(&g, &deleted);
            assert_eq!(merged.edge_slice(), shared.graph.edge_slice(), "scheme {name}");
        }
        // Vertex scheme: removals merge across shards.
        let lowdeg = registry.create("lowdeg", &SchemeParams::default()).expect("known");
        let shared = lowdeg.apply(&g, 23);
        let mut removed: Vec<VertexId> = Vec::new();
        for shard in 0..3 {
            match shard_compress(&g, lowdeg.as_ref(), shard, 3, 23).expect("shardable") {
                ShardOutcome::Vertices(v) => removed.extend(v),
                ShardOutcome::Edges(_) => panic!("vertex scheme returned edges"),
            }
        }
        let (merged, mapping) = apply_vertex_removals(&g, &removed);
        assert_eq!(merged.edge_slice(), shared.graph.edge_slice());
        assert_eq!(Some(mapping), shared.vertex_mapping);
    }

    #[test]
    fn federation_plan_classifies_without_running() {
        let g = generators::planted_triangles(&generators::erdos_renyi(200, 400, 2), 200, 3);
        let registry = SchemeRegistry::with_defaults();
        let params = SchemeParams::from_pairs(&[("p", "0.5")]);
        let plan = |name: &str| {
            federation_plan(&g, registry.create(name, &params).expect("known").as_ref())
        };
        assert_eq!(plan("uniform").expect("edge kernel"), ShardKind::Edges);
        assert_eq!(plan("tr").expect("plain triangles"), ShardKind::Edges);
        assert_eq!(plan("lowdeg").expect("vertex kernel"), ShardKind::Vertices);
        assert_eq!(plan("tr-eo").unwrap_err().code(), "dist-unsupported");
        assert_eq!(plan("summary").unwrap_err().code(), "dist-unsupported");
    }

    #[test]
    fn stateful_disciplines_refuse_federation_shards() {
        let g = generators::planted_triangles(&generators::erdos_renyi(300, 600, 7), 400, 8);
        let registry = SchemeRegistry::with_defaults();
        let tr_eo =
            registry.create("tr-eo", &SchemeParams::from_pairs(&[("p", "0.5")])).expect("known");
        let err = shard_compress(&g, tr_eo.as_ref(), 0, 2, 9).unwrap_err();
        assert_eq!(err.code(), "dist-unsupported");
        // But the same scheme runs fine through the superstep protocol.
        assert!(distributed_compress(&g, tr_eo.as_ref(), 2, 9).is_ok());
    }

    #[test]
    fn shard_bounds_are_checked() {
        let g = generators::path(10);
        let registry = SchemeRegistry::with_defaults();
        let uniform =
            registry.create("uniform", &SchemeParams::from_pairs(&[("p", "0.5")])).expect("known");
        for (shard, shards) in [(2, 2), (0, 0), (5, 3)] {
            let err = shard_compress(&g, uniform.as_ref(), shard, shards, 1).unwrap_err();
            assert_eq!(err.code(), "dist-invalid-shard", "({shard}, {shards})");
        }
    }
}
