//! # sg-dist — simulated distributed-memory compression (§7.3)
//!
//! The paper compresses its largest graphs (up to Web Data Commons 2012 at
//! ≈128 B edges) with a *distributed* implementation of edge compression
//! kernels built on MPI Remote Memory Access. That substrate is simulated
//! here: each MPI rank becomes an OS thread owning a contiguous shard of the
//! canonical edge array (`sg_graph::partition`), kernels run independently
//! per shard, and the gather phase (surviving edges + per-rank degree
//! histograms) flows over crossbeam channels instead of RMA windows.
//!
//! Because kernel decisions are deterministic in `(seed, edge id)`, the
//! distributed result is **bit-identical** to the shared-memory result for
//! any rank count — the property the tests pin down, and the reason the
//! simulation preserves the figure-8 pipeline's observable behaviour.

use crossbeam::channel;
use sg_core::kernel::{EdgeDecision, EdgeKernel, EdgeView};
use sg_core::{CompressionResult, CompressionScheme, SgContext};
use sg_graph::partition::{partition_edges, EdgeShard};
use sg_graph::{CsrGraph, EdgeId, VertexId};
use std::time::Instant;

/// Per-rank execution statistics returned by the simulated pipeline.
#[derive(Clone, Debug)]
pub struct RankStats {
    /// Rank id.
    pub rank: usize,
    /// Edges owned by the shard.
    pub owned_edges: usize,
    /// Edges the rank's kernel instances kept.
    pub kept_edges: usize,
}

/// Outcome of a distributed compression run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// The compressed graph (gathered at the root).
    pub result: CompressionResult,
    /// Per-rank statistics.
    pub ranks: Vec<RankStats>,
    /// Merged degree histogram of the compressed graph
    /// (`degree -> #vertices`), the Figure-8 artifact.
    pub degree_histogram: Vec<(usize, usize)>,
}

/// Runs an edge kernel over `ranks` simulated distributed ranks.
pub fn distributed_edge_kernel<K: EdgeKernel + ?Sized>(
    g: &CsrGraph,
    kernel: &K,
    ranks: usize,
    seed: u64,
) -> DistResult {
    assert!(ranks > 0, "need at least one rank");
    let start = Instant::now();
    let shards = partition_edges(g, ranks);
    let (tx, rx) = channel::unbounded::<(usize, Vec<EdgeId>)>();

    // Each rank runs its shard independently (thread = MPI rank).
    std::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            let shard: EdgeShard = *shard;
            scope.spawn(move || {
                let sg = SgContext::new(g, seed);
                let kept: Vec<EdgeId> = shard
                    .edge_ids()
                    .filter(|&e| {
                        let (u, v) = g.edge_endpoints(e);
                        let view = EdgeView {
                            id: e,
                            u,
                            v,
                            weight: g.edge_weight(e),
                            deg_u: g.degree(u),
                            deg_v: g.degree(v),
                        };
                        !matches!(kernel.process(view, &sg), EdgeDecision::Delete)
                    })
                    .collect();
                tx.send((shard.rank, kept)).expect("root outlives ranks");
            });
        }
    });
    drop(tx);

    // Gather phase at the root.
    let mut per_rank: Vec<Vec<EdgeId>> = vec![Vec::new(); ranks];
    for (rank, kept) in rx {
        per_rank[rank] = kept;
    }
    let stats: Vec<RankStats> = shards
        .iter()
        .map(|s| RankStats {
            rank: s.rank,
            owned_edges: s.len(),
            kept_edges: per_rank[s.rank].len(),
        })
        .collect();
    let mut keep_mask = vec![false; g.num_edges()];
    for kept in &per_rank {
        for &e in kept {
            keep_mask[e as usize] = true;
        }
    }
    let graph = g.filter_edges(|e| keep_mask[e as usize]);
    let degree_histogram = distributed_degree_histogram(&graph, ranks);
    DistResult {
        result: CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        },
        ranks: stats,
        degree_histogram,
    }
}

/// Distributed random uniform sampling — the §7.3 experiment (Figure 8).
pub fn distributed_uniform_sample(g: &CsrGraph, p: f64, ranks: usize, seed: u64) -> DistResult {
    let kernel = sg_core::schemes::UniformKernel::new(p);
    distributed_edge_kernel(g, &kernel, ranks, seed)
}

/// Runs any registry scheme with an edge-kernel form (`uniform`,
/// `spectral`, `cut`) over the simulated distributed pipeline. Schemes
/// whose kernels need shared state (triangle, vertex, subgraph classes)
/// report an error — the paper's distributed implementation covers edge
/// compression kernels only.
///
/// Because kernel decisions are deterministic in `(seed, edge id)`, the
/// result is bit-identical to `scheme.apply(g, seed)` for delete-only
/// kernels, for any rank count.
pub fn distributed_compress(
    g: &CsrGraph,
    scheme: &dyn CompressionScheme,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, String> {
    let kernel = scheme.edge_kernel(g).ok_or_else(|| {
        format!(
            "scheme '{}' has no pure edge-kernel form; only edge compression kernels run distributed",
            scheme.name()
        )
    })?;
    Ok(distributed_edge_kernel(g, kernel.as_ref(), ranks, seed))
}

/// Runs a registry scheme's edge kernel over `ranks` simulated ranks with
/// the graph served zero-copy out of one shared read-only `.sgr` mapping —
/// the paper's setting where every rank reads the node-local graph through
/// RMA windows without private copies.
///
/// `sg_store::MmapGraph` borrows the CSR sections straight from the
/// mapping, and each rank thread borrows the same `CsrGraph`, so the whole
/// simulated cluster holds exactly one copy of the graph: the page cache's.
/// Results are bit-identical to [`distributed_compress`] over a heap-loaded
/// graph (kernel decisions depend only on `(seed, edge id)`).
pub fn distributed_compress_sgr(
    path: impl AsRef<std::path::Path>,
    scheme: &dyn CompressionScheme,
    ranks: usize,
    seed: u64,
) -> Result<DistResult, String> {
    let path = path.as_ref();
    let mapped =
        sg_store::MmapGraph::open(path).map_err(|e| format!("mapping {}: {e}", path.display()))?;
    distributed_compress(&mapped, scheme, ranks, seed)
}

/// Computes the degree histogram with per-rank partial histograms merged at
/// the root (each rank owns a contiguous vertex range — the reduction the
/// paper performs with RMA accumulate).
pub fn distributed_degree_histogram(g: &CsrGraph, ranks: usize) -> Vec<(usize, usize)> {
    let parts = sg_graph::partition::partition_vertices(g.num_vertices(), ranks);
    let (tx, rx) = channel::unbounded::<Vec<(usize, usize)>>();
    std::thread::scope(|scope| {
        for &(lo, hi) in &parts {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut local: rustc_lite::Map = rustc_lite::Map::new();
                for v in lo..hi {
                    local.add(g.degree(v as VertexId));
                }
                tx.send(local.into_sorted()).expect("root outlives ranks");
            });
        }
    });
    drop(tx);
    let mut merged: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for part in rx {
        for (d, c) in part {
            *merged.entry(d).or_insert(0) += c;
        }
    }
    merged.into_iter().collect()
}

/// Tiny local histogram helper (keeps per-rank state allocation-light).
mod rustc_lite {
    pub struct Map {
        counts: Vec<usize>,
    }
    impl Map {
        pub fn new() -> Self {
            Self { counts: Vec::new() }
        }
        pub fn add(&mut self, degree: usize) {
            if degree >= self.counts.len() {
                self.counts.resize(degree + 1, 0);
            }
            self.counts[degree] += 1;
        }
        pub fn into_sorted(self) -> Vec<(usize, usize)> {
            self.counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_core::schemes::uniform_sample;
    use sg_graph::generators;

    #[test]
    fn distributed_matches_shared_memory_exactly() {
        // Determinism in (seed, edge id) means rank count cannot change the
        // result — the core guarantee of the simulation.
        let g = generators::rmat_graph500(12, 8, 1);
        let shared = uniform_sample(&g, 0.4, 42);
        for ranks in [1, 2, 7, 16] {
            let dist = distributed_uniform_sample(&g, 0.4, ranks, 42);
            assert_eq!(
                dist.result.graph.edge_slice(),
                shared.graph.edge_slice(),
                "ranks = {ranks}"
            );
        }
    }

    #[test]
    fn rank_stats_cover_all_edges() {
        let g = generators::erdos_renyi(1000, 5000, 2);
        let dist = distributed_uniform_sample(&g, 0.3, 5, 3);
        let owned: usize = dist.ranks.iter().map(|r| r.owned_edges).sum();
        let kept: usize = dist.ranks.iter().map(|r| r.kept_edges).sum();
        assert_eq!(owned, g.num_edges());
        assert_eq!(kept, dist.result.graph.num_edges());
    }

    #[test]
    fn histogram_matches_direct_computation() {
        let g = generators::barabasi_albert(800, 4, 4);
        let hist = distributed_degree_histogram(&g, 6);
        let direct = sg_graph::properties::DegreeDistribution::of(&g);
        assert_eq!(hist, direct.entries);
    }

    #[test]
    fn histogram_total_is_n() {
        let g = generators::rmat_graph500(11, 10, 5);
        let dist = distributed_uniform_sample(&g, 0.7, 4, 6);
        let total: usize = dist.degree_histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn registry_schemes_run_distributed_when_edge_shaped() {
        use sg_core::{SchemeParams, SchemeRegistry};
        let g = generators::barabasi_albert(1500, 4, 9);
        let registry = SchemeRegistry::with_defaults();
        let params = SchemeParams::from_pairs(&[("p", "0.4")]);
        let uniform = registry.create("uniform", &params).expect("known");
        let dist = distributed_compress(&g, uniform.as_ref(), 5, 17).expect("edge kernel");
        let shared = uniform.apply(&g, 17);
        assert_eq!(dist.result.graph.edge_slice(), shared.graph.edge_slice());
        // Triangle-class kernels have no shard-independent edge form.
        let tr = registry.create("tr", &params).expect("known");
        assert!(distributed_compress(&g, tr.as_ref(), 5, 17).is_err());
    }

    #[test]
    fn ranks_share_one_mapping_and_match_heap_results() {
        use sg_core::{SchemeParams, SchemeRegistry};
        let g = generators::erdos_renyi(2000, 9000, 21);
        let dir = std::env::temp_dir().join("sg-dist-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shared.sgr");
        sg_store::save_sgr(&g, &path).expect("save");

        // The mapping really is zero-copy before the ranks start.
        let mapped = sg_store::MmapGraph::open(&path).expect("map");
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        assert!(mapped.is_zero_copy());
        drop(mapped);

        let registry = SchemeRegistry::with_defaults();
        let uniform = registry
            .create("uniform", &SchemeParams::from_pairs(&[("p", "0.35")]))
            .expect("known scheme");
        let shared = distributed_compress(&g, uniform.as_ref(), 6, 99).expect("heap run");
        let via_map = distributed_compress_sgr(&path, uniform.as_ref(), 6, 99).expect("mmap run");
        assert_eq!(
            shared.result.graph.edge_slice(),
            via_map.result.graph.edge_slice(),
            "mmap-served shards must be bit-identical to the heap run"
        );
        assert_eq!(shared.degree_histogram, via_map.degree_histogram);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let g = generators::path(10);
        let dist = distributed_uniform_sample(&g, 0.0, 1, 7);
        assert_eq!(dist.result.graph.num_edges(), 9);
        assert_eq!(dist.ranks.len(), 1);
    }
}
