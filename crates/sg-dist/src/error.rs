//! Typed errors for the distributed pipeline.
//!
//! Every variant carries a *stable code* string so the service layer
//! (sg-serve's federation) can map shard failures onto protocol error codes
//! without matching on human-readable messages.

use std::fmt;

/// Why a distributed run could not execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DistError {
    /// The scheme has no sharded-execution plan (contraction and
    /// summarization classes rewrite the vertex set globally).
    Unsupported {
        /// Registry name of the rejected scheme.
        scheme: String,
        /// Why this scheme cannot shard.
        reason: String,
    },
    /// The requested rank count is invalid (zero).
    InvalidRanks {
        /// The rejected rank count.
        ranks: usize,
    },
    /// The requested shard index is out of range.
    InvalidShard {
        /// The rejected shard index.
        shard: usize,
        /// Total shard count of the request.
        shards: usize,
    },
    /// A storage operation failed (mapping an `.sgr` file).
    Io {
        /// Path of the failing file.
        path: String,
        /// Underlying error rendered as text.
        message: String,
    },
}

impl DistError {
    /// Stable machine-readable code (kebab-case, mirrors the serve
    /// protocol's error-code style).
    pub fn code(&self) -> &'static str {
        match self {
            DistError::Unsupported { .. } => "dist-unsupported",
            DistError::InvalidRanks { .. } => "dist-invalid-ranks",
            DistError::InvalidShard { .. } => "dist-invalid-shard",
            DistError::Io { .. } => "dist-io",
        }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Unsupported { scheme, reason } => {
                write!(f, "scheme '{scheme}' cannot run distributed: {reason}")
            }
            DistError::InvalidRanks { ranks } => {
                write!(f, "invalid rank count {ranks}: need at least one rank")
            }
            DistError::InvalidShard { shard, shards } => {
                write!(f, "shard {shard} out of range for {shards} shard(s)")
            }
            DistError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_kebab_case() {
        let variants = [
            DistError::Unsupported { scheme: "summary".into(), reason: "global rewrite".into() },
            DistError::InvalidRanks { ranks: 0 },
            DistError::InvalidShard { shard: 3, shards: 2 },
            DistError::Io { path: "x.sgr".into(), message: "missing".into() },
        ];
        let codes: Vec<&str> = variants.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            vec!["dist-unsupported", "dist-invalid-ranks", "dist-invalid-shard", "dist-io"]
        );
        for (e, code) in variants.iter().zip(&codes) {
            assert!(code.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(!e.to_string().is_empty());
        }
    }
}
