//! Deterministic, parallel-friendly randomness.
//!
//! Slim Graph kernels execute in parallel; to keep every compression run
//! bit-reproducible regardless of thread scheduling, each kernel instance
//! derives its own RNG from `(seed, element_id)` instead of sharing a
//! sequential stream. We use SplitMix64 finalization for the per-element hash
//! and PCG64 when a full stream is needed.

use rand_pcg::Pcg64;

/// SplitMix64 finalizer — a strong 64-bit mixing function.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform `f64` in `[0, 1)` derived deterministically from
/// `(seed, element)`. This is the workhorse of the sampling kernels: the
/// decision for edge `e` depends only on the seed and `e`, never on thread
/// interleaving.
#[inline]
pub fn unit_f64(seed: u64, element: u64) -> f64 {
    let h = mix64(seed ^ mix64(element.wrapping_add(0xA076_1D64_78BD_642F)));
    // 53 high-quality bits -> [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform integer in `[0, bound)` derived from `(seed, element, stream)`.
#[inline]
pub fn bounded_u64(seed: u64, element: u64, stream: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let h = mix64(seed ^ mix64(element) ^ mix64(stream.wrapping_mul(0x2545_F491_4F6C_DD1D)));
    // Multiply-shift range reduction (Lemire), bias negligible for our bounds.
    ((h as u128 * bound as u128) >> 64) as u64
}

/// Full PCG64 stream for element-scoped sequences (e.g. generator rows).
pub fn element_rng(seed: u64, element: u64) -> Pcg64 {
    Pcg64::new(
        (mix64(seed) as u128) << 64 | mix64(element) as u128,
        0xa02b_df91_5698_591d_32cd_54c9_05ae_42c5,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_f64_in_range_and_deterministic() {
        for e in 0..1000u64 {
            let x = unit_f64(42, e);
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x, unit_f64(42, e));
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|e| unit_f64(7, e)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let same =
            (0..10_000u64).filter(|&e| (unit_f64(1, e) < 0.5) == (unit_f64(2, e) < 0.5)).count();
        // ~50% agreement expected for independent coins.
        assert!((4000..6000).contains(&same), "agreement {same}");
    }

    #[test]
    fn bounded_in_range() {
        for e in 0..1000 {
            let x = bounded_u64(9, e, 3, 17);
            assert!(x < 17);
        }
    }

    #[test]
    fn element_rng_streams_differ() {
        use rand::Rng;
        let a: u64 = element_rng(5, 0).gen();
        let b: u64 = element_rng(5, 1).gen();
        assert_ne!(a, b);
    }
}
