//! Graph I/O: plain-text edge lists (SNAP style) and a compact binary format.
//!
//! The binary format stores the canonical edge array directly and is the
//! vehicle for the paper's storage-reduction accounting: compressing a graph
//! and re-serializing it shows the on-disk saving.

use crate::edge_list::EdgeList;
use crate::types::{VertexId, Weight};
use crate::CsrGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x5147_5253; // "SRGQ"

/// Reads a whitespace-separated edge list (`u v [w]` per line, `#` comments).
pub fn read_edge_list_text<R: BufRead>(reader: R) -> io::Result<EdgeList> {
    let mut el = EdgeList::new(0);
    let mut weighted: Option<bool> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno, what))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno, what))
        };
        let u = parse(it.next(), "source")? as VertexId;
        let v = parse(it.next(), "target")? as VertexId;
        match it.next() {
            Some(wtok) => {
                let w: Weight = wtok.parse().map_err(|_| bad_line(lineno, "weight"))?;
                match weighted {
                    Some(false) => return Err(bad_line(lineno, "mixed weighted/unweighted")),
                    _ => weighted = Some(true),
                }
                el.push_weighted(u, v, w);
            }
            None => {
                match weighted {
                    Some(true) => return Err(bad_line(lineno, "mixed weighted/unweighted")),
                    _ => weighted = Some(false),
                }
                el.push(u, v);
            }
        }
    }
    el.num_vertices = el.max_vertex_bound();
    Ok(el)
}

/// Converts a file-provided `u64` count to `usize`, rejecting values that do
/// not fit the platform (32-bit hosts).
fn u64_to_usize(v: u64) -> Option<usize> {
    usize::try_from(v).ok()
}

fn bad_line(lineno: usize, what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("line {}: bad {what}", lineno + 1))
}

/// Writes a graph as a text edge list (canonical edges only).
pub fn write_edge_list_text<W: Write>(g: &CsrGraph, mut writer: W) -> io::Result<()> {
    for (e, u, v) in g.edge_iter() {
        if g.is_weighted() {
            writeln!(writer, "{u} {v} {}", g.edge_weight(e))?;
        } else {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Serializes a graph into the compact binary format.
pub fn to_binary(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + g.num_edges() * 12);
    buf.put_u32(MAGIC);
    buf.put_u8(g.is_directed() as u8);
    buf.put_u8(g.is_weighted() as u8);
    buf.put_u64(g.num_vertices() as u64);
    buf.put_u64(g.num_edges() as u64);
    for (e, u, v) in g.edge_iter() {
        buf.put_u32(u);
        buf.put_u32(v);
        if g.is_weighted() {
            buf.put_f32(g.edge_weight(e));
        }
    }
    buf.freeze()
}

/// Deserializes a graph from the binary format.
pub fn from_binary(mut data: &[u8]) -> io::Result<CsrGraph> {
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.remaining() < 22 {
        return Err(fail("truncated header"));
    }
    if data.get_u32() != MAGIC {
        return Err(fail("bad magic"));
    }
    let directed = data.get_u8() != 0;
    let weighted = data.get_u8() != 0;
    let n = u64_to_usize(data.get_u64()).ok_or_else(|| fail("vertex count overflow"))?;
    let m = u64_to_usize(data.get_u64()).ok_or_else(|| fail("edge count overflow"))?;
    // Compared in u64: `VertexId::MAX as usize + 1` would itself overflow
    // on 32-bit targets.
    if n as u64 > VertexId::MAX as u64 + 1 {
        return Err(fail("vertex count exceeds VertexId capacity"));
    }
    let rec = if weighted { 12 } else { 8 };
    // `m * rec` on a hostile header can wrap past the bounds check, so the
    // multiplication itself must be checked.
    let edge_bytes = m.checked_mul(rec).ok_or_else(|| fail("edge section size overflow"))?;
    if data.remaining() < edge_bytes {
        return Err(fail("truncated edge section"));
    }
    let mut el = EdgeList::with_capacity(n, m);
    if weighted {
        el.weights = Some(Vec::with_capacity(m));
    }
    for _ in 0..m {
        let u = data.get_u32();
        let v = data.get_u32();
        el.edges.push((u, v));
        if weighted {
            el.weights.as_mut().expect("weighted").push(data.get_f32());
        }
    }
    Ok(if directed { CsrGraph::from_edge_list_directed(el) } else { CsrGraph::from_edge_list(el) })
}

/// Loads a graph from a text edge-list file (undirected).
pub fn load_text(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    let el = read_edge_list_text(BufReader::new(File::open(path)?))?;
    Ok(CsrGraph::from_edge_list(el))
}

/// Saves a graph to a text edge-list file.
pub fn save_text(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_edge_list_text(g, &mut w)?;
    w.flush()
}

/// Saves a graph in binary form; returns bytes written.
pub fn save_binary(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<usize> {
    let data = to_binary(g);
    File::create(path)?.write_all(&data)?;
    Ok(data.len())
}

/// Loads a graph from a binary file.
pub fn load_binary(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    from_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn text_roundtrip_unweighted() {
        let g = generators::erdos_renyi(100, 300, 1);
        let mut buf = Vec::new();
        write_edge_list_text(&g, &mut buf).expect("write");
        let el = read_edge_list_text(&buf[..]).expect("read");
        let h = CsrGraph::from_edge_list(el);
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.edge_slice(), h.edge_slice());
    }

    #[test]
    fn text_parses_comments_and_weights() {
        let src = "# header\n0 1 2.5\n\n1 2 0.5\n";
        let el = read_edge_list_text(src.as_bytes()).expect("parse");
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(el.weights.expect("weighted"), vec![2.5, 0.5]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_edge_list_text("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list_text("0\n".as_bytes()).is_err());
        assert!(read_edge_list_text("0 1 2.0\n0 2\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = generators::with_random_weights(&generators::erdos_renyi(64, 200, 2), 1.0, 9.0, 3);
        let bytes = to_binary(&g);
        let h = from_binary(&bytes).expect("decode");
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert!(h.is_weighted());
        for (e, _, _) in g.edge_iter() {
            assert!((g.edge_weight(e) - h.edge_weight(e)).abs() < 1e-6);
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        assert!(from_binary(&[1, 2, 3]).is_err());
        let g = generators::erdos_renyi(10, 20, 4);
        let bytes = to_binary(&g);
        assert!(from_binary(&bytes[..bytes.len() - 4]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert!(from_binary(&bad).is_err());
    }

    #[test]
    fn binary_rejects_hostile_headers() {
        // A header whose edge count makes `m * record_size` wrap `usize`
        // must fail cleanly instead of passing the bounds check and reading
        // past the buffer (regression: the check used unchecked `m * rec`).
        use bytes::BufMut;
        let mut hostile = bytes::BytesMut::with_capacity(32);
        hostile.put_u32(MAGIC);
        hostile.put_u8(0); // undirected
        hostile.put_u8(1); // weighted: rec = 12, and 12 * m below wraps
        hostile.put_u64(4); // n
        hostile.put_u64(u64::MAX / 6); // m: m * 12 wraps to a tiny value
        hostile.put_u32(0);
        let err = from_binary(&hostile).expect_err("hostile m must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A vertex count beyond VertexId range is rejected up front rather
        // than aborting later in the CSR build.
        let mut bad_n = bytes::BytesMut::with_capacity(32);
        bad_n.put_u32(MAGIC);
        bad_n.put_u8(0);
        bad_n.put_u8(0);
        bad_n.put_u64(u64::MAX); // n
        bad_n.put_u64(0); // m
        assert!(from_binary(&bad_n).is_err());
    }

    #[test]
    fn compressed_graph_serializes_smaller() {
        let g = generators::erdos_renyi(500, 4000, 5);
        let h = g.filter_edges(|e| e % 2 == 0);
        assert!(to_binary(&h).len() < to_binary(&g).len());
    }
}
