//! Borrowed-or-owned backing storage for CSR arrays.
//!
//! [`Section`] is the abstraction that makes zero-copy graph loading
//! possible: every array inside [`crate::CsrGraph`] is a `Section<T>` that
//! is either an ordinary owned `Vec<T>` (the result of building a graph in
//! memory) or a typed window into an externally owned byte buffer — in
//! practice a read-only `mmap` of an `.sgr` file created by the `sg-store`
//! crate. A mapped section carries an [`Arc`] *anchor* keeping the backing
//! buffer alive, so a `CsrGraph` built over a mapping remains `'static`,
//! `Clone`, `Send`, and `Sync`, and every algorithm, scheme, and pipeline in
//! the workspace runs over it unchanged.
//!
//! The deref target is `[T]`, so call sites index and slice a `Section`
//! exactly like the `Vec` it replaced. Cloning a mapped section clones the
//! anchor (one atomic increment), never the data.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Element types a [`Section`] may hold: plain-old-data with no destructor,
/// readable from any process that can read the bytes. The bound is `Copy +
/// Send + Sync + 'static` — enough for the CSR scalar types (`u32`, `f32`,
/// `usize`, `(u32, u32)`).
pub trait SectionElem: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> SectionElem for T {}

/// A read-only array that either owns its elements or borrows them from an
/// anchored byte buffer (e.g. a file mapping).
pub struct Section<T: SectionElem> {
    repr: Repr<T>,
}

enum Repr<T: SectionElem> {
    Owned(Vec<T>),
    Mapped {
        /// Keeps the backing buffer (e.g. the `mmap`) alive for as long as
        /// any section borrows from it.
        #[allow(dead_code)] // held purely for its drop time
        anchor: Arc<dyn Any + Send + Sync>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: `Mapped` is an immutable view into a buffer owned by the `Send +
// Sync` anchor; the raw pointer is never written through and the pointee is
// `Copy` data, so sharing or moving the view across threads is sound. The
// `Owned` variant is a plain `Vec<T>` with `T: Send + Sync`.
unsafe impl<T: SectionElem> Send for Repr<T> {}
// SAFETY: see the `Send` impl above — the view is read-only.
unsafe impl<T: SectionElem> Sync for Repr<T> {}

impl<T: SectionElem> Section<T> {
    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        Self { repr: Repr::Owned(v) }
    }

    /// Builds a section borrowing `len` elements starting at `ptr`, keeping
    /// `anchor` alive for the section's lifetime.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that `ptr` is aligned for `T` and points to
    /// `len` consecutive initialized `T` values that live inside a buffer
    /// owned (directly or transitively) by `anchor`, that the buffer is
    /// never mutated or unmapped while `anchor` has strong references, and
    /// that `T` has no padding-dependent validity requirements (plain-old
    /// data). For `len == 0` a dangling-but-aligned pointer is allowed.
    pub unsafe fn from_raw_parts(
        anchor: Arc<dyn Any + Send + Sync>,
        ptr: *const T,
        len: usize,
    ) -> Self {
        Self { repr: Repr::Mapped { anchor, ptr, len } }
    }

    /// True when the section borrows from an external buffer rather than
    /// owning a `Vec` (the zero-copy invariant the `sg-store` tests pin).
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// Copies the section into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The underlying elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // SAFETY: upheld by the `from_raw_parts` contract — `ptr` is
            // aligned and valid for `len` initialized elements while the
            // anchor (owned by `self`) is alive.
            Repr::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: SectionElem> Deref for Section<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: SectionElem> AsRef<[T]> for Section<T> {
    #[inline]
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: SectionElem> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

impl<T: SectionElem> Default for Section<T> {
    fn default() -> Self {
        Self::from_vec(Vec::new())
    }
}

impl<T: SectionElem> Clone for Section<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self { repr: Repr::Owned(v.clone()) },
            Repr::Mapped { anchor, ptr, len } => {
                Self { repr: Repr::Mapped { anchor: Arc::clone(anchor), ptr: *ptr, len: *len } }
            }
        }
    }
}

impl<T: SectionElem + fmt::Debug> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_mapped() {
            write!(f, "Section(mapped, len = {})", self.len())
        } else {
            f.debug_tuple("Section").field(&self.as_slice()).finish()
        }
    }
}

impl<T: SectionElem + PartialEq> PartialEq for Section<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_section_behaves_like_a_slice() {
        let s: Section<u32> = vec![3, 1, 2].into();
        assert_eq!(s.len(), 3);
        assert_eq!(s[1], 1);
        assert_eq!(&s[..2], &[3, 1]);
        assert!(!s.is_mapped());
        assert_eq!(s.to_vec(), vec![3, 1, 2]);
    }

    #[test]
    fn mapped_section_borrows_and_keeps_anchor_alive() {
        let buf: Arc<Vec<u32>> = Arc::new((0..100).collect());
        let anchor: Arc<dyn Any + Send + Sync> = buf.clone();
        // SAFETY: the pointer targets the Arc'd vector held by `anchor`,
        // aligned and initialized, and outlives the section via the anchor.
        let s = unsafe { Section::from_raw_parts(anchor, buf.as_ptr().wrapping_add(10), 5) };
        drop(buf); // section's anchor keeps the allocation alive
        assert!(s.is_mapped());
        assert_eq!(s.as_slice(), &[10, 11, 12, 13, 14]);
        let t = s.clone();
        drop(s);
        assert_eq!(t.as_slice(), &[10, 11, 12, 13, 14]);
    }

    #[test]
    fn sections_compare_by_contents() {
        let a: Section<u32> = vec![1, 2].into();
        let buf: Arc<Vec<u32>> = Arc::new(vec![1, 2]);
        let anchor: Arc<dyn Any + Send + Sync> = buf.clone();
        // SAFETY: as above — aligned, initialized, anchored.
        let b = unsafe { Section::from_raw_parts(anchor, buf.as_ptr(), 2) };
        assert_eq!(a, b);
    }
}
