//! Seeded synthetic graph generators.
//!
//! The paper evaluates on SNAP/KONECT/WebGraph datasets; those are not
//! redistributable here, so every experiment runs on seeded synthetic
//! analogs (see DESIGN.md §2 for the substitution argument). The generators
//! cover the structural regimes the evaluation varies over: degree skew
//! (R-MAT, Barabási–Albert), triangle density (planted triangles,
//! Watts–Strogatz), and near-planar sparsity (grids as road networks).

pub mod presets;

use crate::edge_list::EdgeList;
use crate::prng::{bounded_u64, element_rng, unit_f64};
use crate::types::{VertexId, Weight};
use crate::CsrGraph;
use rand::Rng;
use rayon::prelude::*;

/// Erdős–Rényi G(n, m): `m` edges sampled uniformly (duplicates removed, so
/// the realized edge count can be slightly below `m`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    let pairs: Vec<(VertexId, VertexId)> = (0..m as u64)
        .into_par_iter()
        .map(|e| {
            let u = bounded_u64(seed, e, 0, n as u64) as VertexId;
            let mut v = bounded_u64(seed, e, 1, n as u64 - 1) as VertexId;
            if v >= u {
                v += 1; // uniform over vertices != u
            }
            (u, v)
        })
        .collect();
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges: pairs, weights: None })
}

/// R-MAT (Graph500 flavour): recursive quadrant descent with probabilities
/// `(a, b, c, d)`. `scale` gives `n = 2^scale`; `edge_factor` gives
/// `m ≈ edge_factor * n`. Skewed, power-law-ish degree distributions — the
/// stand-in for the paper's web/social graphs.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let m = edge_factor * n;
    let pairs: Vec<(VertexId, VertexId)> = (0..m as u64)
        .into_par_iter()
        .map(|e| {
            let mut u = 0u64;
            let mut v = 0u64;
            for level in 0..scale as u64 {
                let r = unit_f64(seed ^ 0x5eed_0001, e * 64 + level);
                let (du, dv) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            (u as VertexId, v as VertexId)
        })
        .collect();
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges: pairs, weights: None })
}

/// Graph500 default R-MAT parameters (a=0.57, b=0.19, c=0.19).
pub fn rmat_graph500(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// Barabási–Albert preferential attachment: starts from a `k`-clique; each
/// new vertex attaches `k` edges, targets drawn proportionally to degree via
/// the repeated-endpoints trick. Sequential by nature (each step depends on
/// the previous), but fast enough for the evaluation scales.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(k >= 1 && n > k, "need n > k >= 1");
    let mut rng = element_rng(seed, 0xba);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k);
    // Seed clique over vertices 0..=k.
    for u in 0..=k as VertexId {
        for v in 0..u {
            edges.push((v, u));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (k + 1)..n {
        let u = u as VertexId;
        for _ in 0..k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            edges.push((t, u));
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges, weights: None })
}

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its `k` nearest neighbors on each side, each edge rewired with
/// probability `beta`. High clustering (many triangles) at low `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n > 2 * k, "ring too small for k");
    let pairs: Vec<(VertexId, VertexId)> = (0..n as u64)
        .into_par_iter()
        .flat_map_iter(|u| {
            let n64 = n as u64;
            (1..=k as u64).map(move |d| {
                let e = u * k as u64 + d;
                let v = (u + d) % n64;
                if unit_f64(seed ^ 0x57a7, e) < beta {
                    // Rewire the far endpoint uniformly.
                    let mut w = bounded_u64(seed ^ 0x57a8, e, 0, n64 - 1);
                    if w >= u {
                        w += 1;
                    }
                    (u as VertexId, w as VertexId)
                } else {
                    (u as VertexId, v as VertexId)
                }
            })
        })
        .collect();
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges: pairs, weights: None })
}

/// 2-D grid (road-network stand-in): `w * h` vertices, 4-neighbor lattice.
pub fn grid(w: usize, h: usize) -> CsrGraph {
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    CsrGraph::from_edge_list(EdgeList { num_vertices: w * h, edges, weights: None })
}

/// Complete graph K_n (tiny sizes only; used by tests and bound checks).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges, weights: None })
}

/// Path graph 0-1-2-…-(n-1).
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (0..n.saturating_sub(1) as VertexId).map(|u| (u, u + 1)).collect();
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges, weights: None })
}

/// Cycle graph.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<_> = (0..n as VertexId - 1).map(|u| (u, u + 1)).collect();
    edges.push((n as VertexId - 1, 0));
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges, weights: None })
}

/// Star graph: vertex 0 connected to all others (degree-1 leaves — exercises
/// the low-degree vertex kernel).
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as VertexId).map(|v| (0, v)).collect();
    CsrGraph::from_edge_list(EdgeList { num_vertices: n, edges, weights: None })
}

/// Base graph plus `extra_triangles` planted triangles over random vertex
/// triples. Controls the triangles-per-vertex regime (the paper picks graphs
/// with T/n ∈ {20, 80, 1052}).
pub fn planted_triangles(base: &CsrGraph, extra_triangles: usize, seed: u64) -> CsrGraph {
    let n = base.num_vertices() as u64;
    assert!(n >= 3);
    let mut el = base.to_edge_list();
    let extra: Vec<(VertexId, VertexId)> = (0..extra_triangles as u64)
        .into_par_iter()
        .flat_map_iter(|t| {
            let a = bounded_u64(seed ^ 0x7001, t, 0, n) as VertexId;
            let mut b = bounded_u64(seed ^ 0x7002, t, 1, n - 1) as VertexId;
            let mut c = bounded_u64(seed ^ 0x7003, t, 2, n - 2) as VertexId;
            if b >= a {
                b += 1;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            if c >= lo {
                c += 1;
            }
            if c >= hi {
                c += 1;
            }
            [(a, b), (b, c), (a, c)].into_iter()
        })
        .collect();
    el.edges.extend(extra);
    CsrGraph::from_edge_list(el)
}

/// Attaches uniform random weights in `[lo, hi)` to an unweighted graph.
pub fn with_random_weights(g: &CsrGraph, lo: Weight, hi: Weight, seed: u64) -> CsrGraph {
    let el = g.to_edge_list();
    let weights: Vec<Weight> = (0..el.edges.len() as u64)
        .into_par_iter()
        .map(|e| lo + (hi - lo) * unit_f64(seed ^ 0x3e11, e) as Weight)
        .collect();
    let el = EdgeList { num_vertices: el.num_vertices, edges: el.edges, weights: Some(weights) };
    if g.is_directed() {
        CsrGraph::from_edge_list_directed(el)
    } else {
        CsrGraph::from_edge_list(el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_has_roughly_m_edges() {
        let g = erdos_renyi(1000, 5000, 1);
        assert!(g.num_edges() > 4800 && g.num_edges() <= 5000, "m = {}", g.num_edges());
        assert_eq!(g.num_vertices(), 1000);
    }

    #[test]
    fn er_deterministic() {
        let a = erdos_renyi(500, 2000, 9);
        let b = erdos_renyi(500, 2000, 9);
        assert_eq!(a.edge_slice(), b.edge_slice());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat_graph500(10, 8, 3);
        assert_eq!(g.num_vertices(), 1024);
        // Max degree should far exceed average for skewed graphs.
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn ba_degrees_sum() {
        let n = 2000;
        let k = 3;
        let g = barabasi_albert(n, k, 7);
        // Roughly k edges per vertex beyond the seed clique (duplicates from
        // repeated target draws are removed during canonicalization).
        assert!(g.num_edges() as f64 >= 0.9 * ((n - k - 1) * k) as f64);
        assert_eq!(g.num_vertices(), n);
    }

    #[test]
    fn ws_triangle_rich_at_low_beta() {
        let g = watts_strogatz(500, 5, 0.05, 11);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 2000);
    }

    #[test]
    fn grid_structure() {
        let g = grid(4, 3);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn complete_k5() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn star_has_leaves() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert_eq!(g.degree(5), 1);
    }

    #[test]
    fn planted_triangles_adds_edges() {
        let base = erdos_renyi(300, 300, 5);
        let g = planted_triangles(&base, 200, 6);
        assert!(g.num_edges() > base.num_edges());
    }

    #[test]
    fn random_weights_in_range() {
        let g = with_random_weights(&cycle(10), 1.0, 5.0, 2);
        assert!(g.is_weighted());
        for (e, _, _) in g.edge_iter() {
            let w = g.edge_weight(e);
            assert!((1.0..5.0).contains(&w));
        }
    }
}
