//! Named dataset analogs.
//!
//! Each preset mirrors one of the paper's evaluation graphs (Table 4) at
//! laptop scale, matching the *regime* that matters for the corresponding
//! experiment: degree skew, sparsity, and triangles-per-vertex (the paper
//! selects Fig. 5 graphs to cover T/n ≈ 1052 (s-cds), 20 (s-pok) and
//! 80 (v-ewk)). All presets are seeded and deterministic.

use super::*;
use crate::CsrGraph;

/// Default seed for the preset suite; experiments may offset it.
pub const PRESET_SEED: u64 = 0x51_1A_6E_A9;

/// Pokec-like social network: preferential attachment, moderate triangle
/// density (paper: n=1.6M, m=30M, T/n≈20).
pub fn s_pok_like() -> CsrGraph {
    barabasi_albert(20_000, 8, PRESET_SEED ^ 1)
}

/// Catster/Dogster-like: extremely triangle-dense social graph
/// (paper T/n ≈ 1052). Small-world core plus planted triangles.
pub fn s_cds_like() -> CsrGraph {
    let base = watts_strogatz(8_000, 14, 0.03, PRESET_SEED ^ 2);
    planted_triangles(&base, 60_000, PRESET_SEED ^ 3)
}

/// Wikipedia-evolution-like (v-ewk, T/n ≈ 80): skewed with reinforced
/// clustering.
pub fn v_ewk_like() -> CsrGraph {
    let base = rmat_graph500(14, 10, PRESET_SEED ^ 4);
    planted_triangles(&base, 30_000, PRESET_SEED ^ 5)
}

/// USA-road-like: near-planar weighted grid (paper v-usa: n=23.9M, m=58.3M,
/// essentially triangle-free, large diameter).
pub fn v_usa_like() -> CsrGraph {
    with_random_weights(&grid(180, 130), 1.0, 100.0, PRESET_SEED ^ 6)
}

/// YouTube-like sparse social graph.
pub fn s_you_like() -> CsrGraph {
    barabasi_albert(30_000, 3, PRESET_SEED ^ 7)
}

/// Hudong-like hyperlink graph.
pub fn h_hud_like() -> CsrGraph {
    rmat_graph500(14, 8, PRESET_SEED ^ 8)
}

/// DBLP-like co-authorship graph: high clustering.
pub fn l_dbl_like() -> CsrGraph {
    watts_strogatz(20_000, 7, 0.1, PRESET_SEED ^ 9)
}

/// Skitter-like internet topology.
pub fn v_skt_like() -> CsrGraph {
    rmat_graph500(14, 6, PRESET_SEED ^ 10)
}

/// Twitter-like communication graph: heavy degree skew.
pub fn m_twt_like() -> CsrGraph {
    rmat_graph500(15, 12, PRESET_SEED ^ 11)
}

/// Friendster-like social graph.
pub fn s_frs_like() -> CsrGraph {
    rmat_graph500(15, 8, PRESET_SEED ^ 12)
}

/// .it-domains-like dense web crawl.
pub fn h_dit_like() -> CsrGraph {
    rmat_graph500(13, 24, PRESET_SEED ^ 13)
}

/// Patent-citation-like graph.
pub fn l_cit_like() -> CsrGraph {
    barabasi_albert(25_000, 4, PRESET_SEED ^ 14)
}

/// DBpedia-like knowledge-graph links.
pub fn h_dbp_like() -> CsrGraph {
    rmat_graph500(14, 4, PRESET_SEED ^ 15)
}

/// Flixster-like social graph.
pub fn s_flx_like() -> CsrGraph {
    barabasi_albert(24_000, 3, PRESET_SEED ^ 16)
}

/// Flickr-like graph: very triangle-dense.
pub fn s_flc_like() -> CsrGraph {
    let base = barabasi_albert(12_000, 10, PRESET_SEED ^ 17);
    planted_triangles(&base, 50_000, PRESET_SEED ^ 18)
}

/// Libimseti-like dating graph: dense, skewed.
pub fn s_lib_like() -> CsrGraph {
    let base = rmat_graph500(13, 18, PRESET_SEED ^ 19);
    planted_triangles(&base, 20_000, PRESET_SEED ^ 20)
}

/// Looks a preset up by its paper symbol (e.g. `"s-pok"`).
pub fn by_name(name: &str) -> Option<CsrGraph> {
    Some(match name {
        "s-pok" => s_pok_like(),
        "s-cds" => s_cds_like(),
        "v-ewk" => v_ewk_like(),
        "v-usa" => v_usa_like(),
        "s-you" => s_you_like(),
        "h-hud" => h_hud_like(),
        "l-dbl" => l_dbl_like(),
        "v-skt" => v_skt_like(),
        "m-twt" => m_twt_like(),
        "s-frs" => s_frs_like(),
        "h-dit" => h_dit_like(),
        "l-cit" => l_cit_like(),
        "h-dbp" => h_dbp_like(),
        "s-flx" => s_flx_like(),
        "s-flc" => s_flc_like(),
        "s-lib" => s_lib_like(),
        _ => return None,
    })
}

/// The three graphs of Figure 5 (chosen by the paper to span T/n regimes).
pub fn fig5_suite() -> Vec<(&'static str, CsrGraph)> {
    vec![("s-cds", s_cds_like()), ("s-pok", s_pok_like()), ("v-ewk", v_ewk_like())]
}

/// The five graphs of Table 5 (KL divergence of PageRank).
pub fn table5_suite() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("s-you", s_you_like()),
        ("h-hud", h_hud_like()),
        ("l-dbl", l_dbl_like()),
        ("v-skt", v_skt_like()),
        ("v-usa", v_usa_like()),
    ]
}

/// The twelve graphs of Table 6 (triangles per vertex).
pub fn table6_suite() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("s-you", s_you_like()),
        ("s-flx", s_flx_like()),
        ("s-flc", s_flc_like()),
        ("s-cds", s_cds_like()),
        ("s-lib", s_lib_like()),
        ("s-pok", s_pok_like()),
        ("h-dbp", h_dbp_like()),
        ("h-hud", h_hud_like()),
        ("l-cit", l_cit_like()),
        ("l-dbl", l_dbl_like()),
        ("v-ewk", v_ewk_like()),
        ("v-skt", v_skt_like()),
    ]
}

/// The three graphs of Figure 7 (spanner degree distributions).
pub fn fig7_suite() -> Vec<(&'static str, CsrGraph)> {
    vec![("h-dit", h_dit_like()), ("m-twt", m_twt_like()), ("s-frs", s_frs_like())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for name in ["s-pok", "s-cds", "v-ewk", "v-usa"] {
            let g = by_name(name).expect("known preset");
            assert!(g.num_edges() > 0, "{name} empty");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn presets_deterministic() {
        let a = s_pok_like();
        let b = s_pok_like();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edge_slice()[..100], b.edge_slice()[..100]);
    }

    #[test]
    fn usa_is_weighted_road_like() {
        let g = v_usa_like();
        assert!(g.is_weighted());
        assert!(g.average_degree() < 5.0);
    }
}
