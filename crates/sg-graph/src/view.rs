//! One iteration API over raw and encoded adjacency: [`NeighborCursor`]
//! and the [`GraphView`] trait.
//!
//! Slim Graph's storage pillar (§6) argues compression should pay off for
//! *processing*, not just disk. That only works if kernels can run over an
//! encoded graph without first materializing raw CSR, which in turn needs a
//! single row-iteration abstraction: `CsrGraph` hands out borrowed slices,
//! [`crate::encoded::EncodedCsr`] decodes delta/varint or bitmap rows on the
//! fly. The cursor decodes in 64-lane chunks into a stack buffer so the hot
//! loops stay prefetch- and vectorizer-friendly, and decode order is a pure
//! function of the row index — parallel runs stay bit-identical at any
//! `SG_THREADS`.

use crate::types::{VertexId, Weight};
use crate::CsrGraph;

/// Lanes per decode chunk: one cache line of u32 targets times four, small
/// enough to live on the stack, large enough to amortize dispatch.
pub const CURSOR_CHUNK: usize = 64;

/// Streaming decoder over one delta+varint row (gap-encoded sorted targets,
/// LEB128). The first varint is the absolute first target; every following
/// varint is the gap to the previous target (≥ 1 in a valid row).
#[derive(Clone, Debug)]
pub struct DeltaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: u32,
    prev: u32,
    started: bool,
}

impl<'a> DeltaCursor<'a> {
    /// Creates a cursor over `degree` gap-encoded targets in `bytes`.
    #[inline]
    pub fn new(bytes: &'a [u8], degree: u32) -> Self {
        Self { bytes, pos: 0, remaining: degree, prev: 0, started: false }
    }
}

/// Reads one LEB128 varint (u32 range). Returns `None` on a truncated or
/// over-long encoding — loaders reject such rows up front, so hitting this
/// in a kernel means the cursor simply stops early instead of misbehaving.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut acc: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        acc |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
    u32::try_from(acc).ok()
}

/// Appends the LEB128 encoding of `x` to `out`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        out.push((x as u8 & 0x7f) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

impl Iterator for DeltaCursor<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        let Some(gap) = read_gap_fast(self.bytes, &mut self.pos) else {
            self.remaining = 0;
            return None;
        };
        // Wrapping add keeps the loop branch-light; loaders guarantee the
        // accumulated value never exceeds n.
        let value = if self.started { self.prev.wrapping_add(gap) } else { gap };
        self.started = true;
        self.prev = value;
        self.remaining -= 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining as usize))
    }
}

/// Streaming decoder over one bitmap row: `ceil(n/64)` little-endian u64
/// words stored as bytes (rows are byte-addressed, so words are read with
/// `from_le_bytes` rather than cast).
#[derive(Clone, Debug)]
pub struct BitmapCursor<'a> {
    bytes: &'a [u8],
    word_idx: usize,
    current: u64,
}

impl<'a> BitmapCursor<'a> {
    /// Creates a cursor over a bitmap row (`bytes.len()` multiple of 8).
    #[inline]
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut c = Self { bytes, word_idx: 0, current: 0 };
        c.current = c.load_word(0);
        c
    }

    #[inline]
    fn load_word(&self, idx: usize) -> u64 {
        match self.bytes.get(idx * 8..idx * 8 + 8) {
            Some(w) => u64::from_le_bytes(w.try_into().expect("8-byte window")),
            None => 0,
        }
    }
}

impl Iterator for BitmapCursor<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx * 8 >= self.bytes.len() {
                return None;
            }
            self.current = self.load_word(self.word_idx);
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1;
        Some((self.word_idx * 64) as VertexId + bit)
    }
}

/// A cursor over one adjacency row, regardless of how the row is stored.
///
/// Raw CSR rows iterate a borrowed slice with zero overhead; encoded rows
/// decode on the fly. [`NeighborCursor::for_each`] is the hot-loop entry
/// point: it drains the row through a [`CURSOR_CHUNK`]-lane stack buffer.
#[derive(Clone, Debug)]
pub enum NeighborCursor<'a> {
    /// Borrowed raw row (sorted target slice).
    Slice(&'a [VertexId]),
    /// Delta+varint encoded row.
    Delta(DeltaCursor<'a>),
    /// Bitmap row for dense vertices.
    Bitmap(BitmapCursor<'a>),
}

impl<'a> NeighborCursor<'a> {
    /// The raw slice, when the row is stored uncompressed.
    #[inline]
    pub fn as_slice(&self) -> Option<&'a [VertexId]> {
        match self {
            NeighborCursor::Slice(s) => Some(s),
            _ => None,
        }
    }

    /// Decodes up to [`CURSOR_CHUNK`] targets into `buf`, returning how many
    /// lanes were filled (0 when the row is exhausted).
    #[inline]
    pub fn next_chunk(&mut self, buf: &mut [VertexId; CURSOR_CHUNK]) -> usize {
        match self {
            NeighborCursor::Slice(s) => {
                let take = s.len().min(CURSOR_CHUNK);
                buf[..take].copy_from_slice(&s[..take]);
                *s = &s[take..];
                take
            }
            NeighborCursor::Delta(c) => {
                // First element may need the absolute-value special case;
                // afterwards run the branch-light gap loop.
                let mut filled = 0;
                if !c.started {
                    match c.next() {
                        Some(t) => {
                            buf[filled] = t;
                            filled += 1;
                        }
                        None => return 0,
                    }
                }
                while filled < CURSOR_CHUNK && c.remaining > 0 {
                    let Some(gap) = read_gap_fast(c.bytes, &mut c.pos) else {
                        c.remaining = 0;
                        break;
                    };
                    c.prev = c.prev.wrapping_add(gap);
                    c.remaining -= 1;
                    buf[filled] = c.prev;
                    filled += 1;
                }
                filled
            }
            NeighborCursor::Bitmap(c) => {
                let mut filled = 0;
                while filled < CURSOR_CHUNK {
                    match c.next() {
                        Some(t) => {
                            buf[filled] = t;
                            filled += 1;
                        }
                        None => break,
                    }
                }
                filled
            }
        }
    }

    /// Applies `f` to every target in row order. Slices iterate directly;
    /// encoded rows run dedicated branch-light decode loops (no per-element
    /// `Option` dispatch, single-byte varint fast path, word-at-a-time
    /// bitmap scan).
    #[inline]
    pub fn for_each<F: FnMut(VertexId)>(self, mut f: F) {
        match self {
            NeighborCursor::Slice(s) => {
                for &t in s {
                    f(t);
                }
            }
            NeighborCursor::Delta(mut c) => {
                if !c.started {
                    match c.next() {
                        Some(t) => f(t),
                        None => return,
                    }
                }
                let DeltaCursor { bytes, mut pos, mut remaining, mut prev, .. } = c;
                while remaining > 0 {
                    let Some(gap) = read_gap_fast(bytes, &mut pos) else { break };
                    prev = prev.wrapping_add(gap);
                    remaining -= 1;
                    f(prev);
                }
            }
            NeighborCursor::Bitmap(c) => {
                let BitmapCursor { bytes, word_idx, current } = c;
                let mut cur = current;
                let mut wi = word_idx;
                loop {
                    while cur != 0 {
                        let bit = cur.trailing_zeros();
                        cur &= cur - 1;
                        f((wi * 64) as VertexId + bit);
                    }
                    wi += 1;
                    match bytes.get(wi * 8..wi * 8 + 8) {
                        Some(w) => cur = u64::from_le_bytes(w.try_into().expect("8-byte window")),
                        None => break,
                    }
                }
            }
        }
    }
}

/// Unrolled LEB128 decode for the kernel hot path: an explicit 1–5 byte
/// ladder in u32 arithmetic instead of [`read_varint`]'s shift-counter loop.
/// Decodes the identical value sequence on valid rows; on malformed input it
/// returns `None` exactly where `read_varint` would (truncated, >5 bytes, or
/// value past the u32 range), differing only in how far `pos` advanced —
/// cursors stop on the first `None`, so the distinction is unobservable.
#[inline]
fn read_gap_fast(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let p = *pos;
    let b0 = *bytes.get(p)?;
    if b0 < 0x80 {
        *pos = p + 1;
        return Some(u32::from(b0));
    }
    let b1 = *bytes.get(p + 1)?;
    if b1 < 0x80 {
        *pos = p + 2;
        return Some(u32::from(b0 & 0x7f) | u32::from(b1) << 7);
    }
    let b2 = *bytes.get(p + 2)?;
    if b2 < 0x80 {
        *pos = p + 3;
        return Some(u32::from(b0 & 0x7f) | u32::from(b1 & 0x7f) << 7 | u32::from(b2) << 14);
    }
    let b3 = *bytes.get(p + 3)?;
    if b3 < 0x80 {
        *pos = p + 4;
        return Some(
            u32::from(b0 & 0x7f)
                | u32::from(b1 & 0x7f) << 7
                | u32::from(b2 & 0x7f) << 14
                | u32::from(b3) << 21,
        );
    }
    let b4 = *bytes.get(p + 4)?;
    if b4 >= 0x10 {
        return None; // continuation past 5 bytes, or value overflows u32
    }
    *pos = p + 5;
    Some(
        u32::from(b0 & 0x7f)
            | u32::from(b1 & 0x7f) << 7
            | u32::from(b2 & 0x7f) << 14
            | u32::from(b3 & 0x7f) << 21
            | u32::from(b4) << 28,
    )
}

impl Iterator for NeighborCursor<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            NeighborCursor::Slice(s) => {
                let (&first, rest) = s.split_first()?;
                *s = rest;
                Some(first)
            }
            NeighborCursor::Delta(c) => c.next(),
            NeighborCursor::Bitmap(c) => c.next(),
        }
    }
}

/// Read access to a graph's structure through row cursors — the single
/// iteration API shared by [`CsrGraph`] (raw slices) and
/// [`crate::encoded::EncodedCsr`] (decode-on-the-fly). Bandwidth-bound
/// kernels in `sg-algos` are generic over this trait.
pub trait GraphView: Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;
    /// Number of canonical edges `m`.
    fn num_edges(&self) -> usize;
    /// Whether the graph is directed.
    fn is_directed(&self) -> bool;
    /// Out-degree of `v` (total degree for undirected graphs).
    fn degree(&self, v: VertexId) -> usize;
    /// In-degree of `v` (equals [`GraphView::degree`] when undirected).
    fn in_degree(&self, v: VertexId) -> usize;
    /// Cursor over the sorted out-neighbors of `v`.
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_>;
    /// Cursor over the sorted in-neighbors of `v` (out-neighbors when
    /// undirected).
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_>;
    /// Weight of canonical edge `e` (1.0 when unweighted).
    fn edge_weight(&self, e: crate::types::EdgeId) -> Weight;

    /// The out-row of `v` as a contiguous slice: borrowed directly from raw
    /// CSR, or decoded into `buf` for encoded rows. Algorithms that need
    /// random access within a row (e.g. sorted intersection) use this.
    fn row_into<'b>(&'b self, v: VertexId, buf: &'b mut Vec<VertexId>) -> &'b [VertexId] {
        let cursor = self.cursor(v);
        match cursor.as_slice() {
            Some(s) => s,
            None => {
                buf.clear();
                cursor.for_each(|t| buf.push(t));
                buf.as_slice()
            }
        }
    }
}

impl<G: GraphView> GraphView for &G {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn is_directed(&self) -> bool {
        (**self).is_directed()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        (**self).in_degree(v)
    }

    #[inline]
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        (**self).cursor(v)
    }

    #[inline]
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        (**self).in_cursor(v)
    }

    #[inline]
    fn edge_weight(&self, e: crate::types::EdgeId) -> Weight {
        (**self).edge_weight(e)
    }

    #[inline]
    fn row_into<'b>(&'b self, v: VertexId, buf: &'b mut Vec<VertexId>) -> &'b [VertexId] {
        (**self).row_into(v, buf)
    }
}

impl<G: GraphView + Send> GraphView for std::sync::Arc<G> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn is_directed(&self) -> bool {
        (**self).is_directed()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        (**self).in_degree(v)
    }

    #[inline]
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        (**self).cursor(v)
    }

    #[inline]
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        (**self).in_cursor(v)
    }

    #[inline]
    fn edge_weight(&self, e: crate::types::EdgeId) -> Weight {
        (**self).edge_weight(e)
    }

    #[inline]
    fn row_into<'b>(&'b self, v: VertexId, buf: &'b mut Vec<VertexId>) -> &'b [VertexId] {
        (**self).row_into(v, buf)
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn is_directed(&self) -> bool {
        CsrGraph::is_directed(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        CsrGraph::in_degree(self, v)
    }

    #[inline]
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        NeighborCursor::Slice(self.neighbors(v))
    }

    #[inline]
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        NeighborCursor::Slice(self.in_neighbors(v))
    }

    #[inline]
    fn edge_weight(&self, e: crate::types::EdgeId) -> Weight {
        CsrGraph::edge_weight(self, e)
    }

    #[inline]
    fn row_into<'b>(&'b self, v: VertexId, _buf: &'b mut Vec<VertexId>) -> &'b [VertexId] {
        self.neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, 1 << 21, u32::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncated_and_overlong() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None); // continuation, no tail
        let mut pos = 0;
        // 6-byte encoding exceeds the u32 range.
        assert_eq!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut pos), None);
        let mut pos = 0;
        // 5 bytes whose accumulated value overflows u32.
        assert_eq!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos), None);
    }

    #[test]
    fn delta_cursor_decodes_gaps() {
        let row = [3u32, 4, 9, 1000];
        let mut bytes = Vec::new();
        let mut prev = 0;
        for (i, &t) in row.iter().enumerate() {
            write_varint(&mut bytes, if i == 0 { t } else { t - prev });
            prev = t;
        }
        let decoded: Vec<u32> = DeltaCursor::new(&bytes, row.len() as u32).collect();
        assert_eq!(decoded, row);
    }

    #[test]
    fn bitmap_cursor_yields_set_bits() {
        let mut bytes = vec![0u8; 16]; // 128-bit bitmap
        for bit in [0usize, 5, 63, 64, 127] {
            bytes[bit / 8] |= 1 << (bit % 8);
        }
        let decoded: Vec<u32> = BitmapCursor::new(&bytes).collect();
        assert_eq!(decoded, vec![0, 5, 63, 64, 127]);
    }

    #[test]
    fn cursor_chunking_matches_iteration() {
        let targets: Vec<u32> = (0..333).map(|i| i * 3).collect();
        let mut cursor = NeighborCursor::Slice(&targets);
        let mut buf = [0u32; CURSOR_CHUNK];
        let mut collected = Vec::new();
        loop {
            let filled = cursor.next_chunk(&mut buf);
            if filled == 0 {
                break;
            }
            collected.extend_from_slice(&buf[..filled]);
        }
        assert_eq!(collected, targets);
        let mut via_for_each = Vec::new();
        NeighborCursor::Slice(&targets).for_each(|t| via_for_each.push(t));
        assert_eq!(via_for_each, targets);
    }

    #[test]
    fn csr_graph_view_cursor_matches_neighbors() {
        let g = crate::generators::erdos_renyi(50, 200, 7);
        for v in 0..50u32 {
            let via_cursor: Vec<u32> = GraphView::cursor(&g, v).collect();
            assert_eq!(via_cursor, g.neighbors(v));
            let mut buf = Vec::new();
            assert_eq!(GraphView::row_into(&g, v, &mut buf), g.neighbors(v));
        }
    }
}
