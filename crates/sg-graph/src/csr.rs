//! Compressed-Sparse-Row graph with canonical edge identifiers.
//!
//! The structure mirrors GAPBS: an `offsets` array of length `n + 1` and a
//! flat `targets` array. The Slim Graph-specific addition is `slot_edge`: for
//! every adjacency *slot* it stores the canonical id of the underlying edge,
//! so the two directions of an undirected edge share one id. Compression
//! kernels mark canonical ids for deletion in an atomic bitset and the engine
//! then calls [`CsrGraph::filter_edges`] to materialize the compressed graph.

use crate::edge_list::EdgeList;
use crate::storage::Section;
use crate::types::{EdgeId, VertexId, Weight};
use rayon::prelude::*;

/// An immutable CSR graph (undirected or directed), optionally weighted.
///
/// Every array is a [`Section`]: owned when the graph was built in memory,
/// borrowed when it was loaded zero-copy from an `.sgr` mapping (`sg-store`).
/// Both behave identically; a mapped graph is still `Clone + Send + Sync`.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    directed: bool,
    num_vertices: usize,
    /// Out-adjacency offsets (`num_vertices + 1` entries).
    offsets: Section<usize>,
    /// Out-adjacency targets, sorted within each row.
    targets: Section<VertexId>,
    /// Canonical edge id per out-adjacency slot.
    slot_edge: Section<EdgeId>,
    /// Canonical edges: `edges[e] = (u, v)` with `u < v` for undirected
    /// graphs and `(src, dst)` for directed graphs.
    edges: Section<(VertexId, VertexId)>,
    /// Optional canonical edge weights.
    weights: Option<Section<Weight>>,
    /// In-adjacency (directed graphs only): offsets, sources, edge id.
    in_offsets: Option<Section<usize>>,
    in_targets: Option<Section<VertexId>>,
    in_slot_edge: Option<Section<EdgeId>>,
}

/// The raw arrays of a [`CsrGraph`], used by external loaders (the
/// `sg-store` crate) to assemble a graph around borrowed or owned sections.
/// Consumed by [`CsrGraph::from_parts`], which validates every structural
/// invariant before the graph is usable.
pub struct CsrParts {
    /// Whether the arrays describe a directed graph.
    pub directed: bool,
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Out-adjacency offsets (`n + 1` entries, `offsets[0] == 0`).
    pub offsets: Section<usize>,
    /// Out-adjacency targets (`2m` slots undirected, `m` directed).
    pub targets: Section<VertexId>,
    /// Canonical edge id per out-adjacency slot (parallel to `targets`).
    pub slot_edge: Section<EdgeId>,
    /// Canonical edges, lexicographically sorted, `u < v` when undirected.
    pub edges: Section<(VertexId, VertexId)>,
    /// Optional canonical edge weights (length `m`).
    pub weights: Option<Section<Weight>>,
    /// In-adjacency offsets (directed graphs only).
    pub in_offsets: Option<Section<usize>>,
    /// In-adjacency sources (directed graphs only).
    pub in_targets: Option<Section<VertexId>>,
    /// Canonical edge id per in-adjacency slot (directed graphs only).
    pub in_slot_edge: Option<Section<EdgeId>>,
}

impl CsrGraph {
    /// Builds an *undirected* graph from an edge list. The list is
    /// canonicalized (self-loops dropped, `u < v`, deduplicated) if needed.
    pub fn from_edge_list(mut el: EdgeList) -> Self {
        el.canonicalize_undirected();
        Self::from_canonical(el, false)
    }

    /// Builds a *directed* graph from an edge list.
    pub fn from_edge_list_directed(mut el: EdgeList) -> Self {
        el.canonicalize_directed();
        Self::from_canonical(el, true)
    }

    /// Convenience constructor from unweighted pairs (undirected).
    pub fn from_pairs(num_vertices: usize, pairs: &[(VertexId, VertexId)]) -> Self {
        Self::from_edge_list(EdgeList::from_pairs(num_vertices, pairs.iter().copied()))
    }

    /// Convenience constructor from weighted triples (undirected).
    pub fn from_weighted_pairs(
        num_vertices: usize,
        triples: &[(VertexId, VertexId, Weight)],
    ) -> Self {
        Self::from_edge_list(EdgeList::from_weighted(num_vertices, triples.iter().copied()))
    }

    fn from_canonical(el: EdgeList, directed: bool) -> Self {
        let n = el.num_vertices.max(el.max_vertex_bound());
        let edges = el.edges;
        let weights = el.weights;
        let m = edges.len();
        assert!(m <= EdgeId::MAX as usize, "graph exceeds EdgeId capacity");

        if directed {
            // Out-CSR: edges are sorted by (src, dst), so rows are sorted.
            let mut offsets = vec![0usize; n + 1];
            for &(u, _) in &edges {
                offsets[u as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let targets: Vec<VertexId> = edges.iter().map(|&(_, v)| v).collect();
            let slot_edge: Vec<EdgeId> = (0..m as EdgeId).collect();

            // In-CSR: counting sort by destination; for a fixed destination
            // sources arrive in increasing order, so rows are sorted.
            let mut in_offsets = vec![0usize; n + 1];
            for &(_, v) in &edges {
                in_offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                in_offsets[i + 1] += in_offsets[i];
            }
            let mut cursor = in_offsets.clone();
            let mut in_targets = vec![0 as VertexId; m];
            let mut in_slot_edge = vec![0 as EdgeId; m];
            for (e, &(u, v)) in edges.iter().enumerate() {
                let c = &mut cursor[v as usize];
                in_targets[*c] = u;
                in_slot_edge[*c] = e as EdgeId;
                *c += 1;
            }

            Self {
                directed,
                num_vertices: n,
                offsets: offsets.into(),
                targets: targets.into(),
                slot_edge: slot_edge.into(),
                edges: edges.into(),
                weights: weights.map(Section::from),
                in_offsets: Some(in_offsets.into()),
                in_targets: Some(in_targets.into()),
                in_slot_edge: Some(in_slot_edge.into()),
            }
        } else {
            // Undirected: both directions in one CSR. Canonical edges have
            // u < v; a row's backward targets (from the v side) are all
            // smaller than the row vertex and arrive in increasing order, the
            // forward targets are all larger and also increasing, so each row
            // ends up sorted without an explicit sort.
            let mut offsets = vec![0usize; n + 1];
            for &(u, v) in &edges {
                offsets[u as usize + 1] += 1;
                offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let slots = 2 * m;
            let mut targets = vec![0 as VertexId; slots];
            let mut slot_edge = vec![0 as EdgeId; slots];
            let mut cursor = offsets.clone();
            // Pass 1: backward entries (row v gets target u < v).
            for (e, &(u, v)) in edges.iter().enumerate() {
                let c = &mut cursor[v as usize];
                targets[*c] = u;
                slot_edge[*c] = e as EdgeId;
                *c += 1;
            }
            // Pass 2: forward entries (row u gets target v > u).
            for (e, &(u, v)) in edges.iter().enumerate() {
                let c = &mut cursor[u as usize];
                targets[*c] = v;
                slot_edge[*c] = e as EdgeId;
                *c += 1;
            }

            Self {
                directed,
                num_vertices: n,
                offsets: offsets.into(),
                targets: targets.into(),
                slot_edge: slot_edge.into(),
                edges: edges.into(),
                weights: weights.map(Section::from),
                in_offsets: None,
                in_targets: None,
                in_slot_edge: None,
            }
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of canonical edges `m` (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v` (total degree for undirected graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// In-degree of `v`. Equals [`CsrGraph::degree`] for undirected graphs.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        match &self.in_offsets {
            Some(off) => off[v as usize + 1] - off[v as usize],
            None => self.degree(v),
        }
    }

    /// Sorted out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Canonical edge ids of the out-adjacency slots of `v`, parallel to
    /// [`CsrGraph::neighbors`].
    #[inline]
    pub fn neighbor_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        &self.slot_edge[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Sorted in-neighbors of `v` (directed graphs; falls back to
    /// out-neighbors for undirected graphs).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        match (&self.in_offsets, &self.in_targets) {
            (Some(off), Some(tgt)) => &tgt[off[v as usize]..off[v as usize + 1]],
            _ => self.neighbors(v),
        }
    }

    /// Canonical edge ids parallel to [`CsrGraph::in_neighbors`].
    #[inline]
    pub fn in_neighbor_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        match (&self.in_offsets, &self.in_slot_edge) {
            (Some(off), Some(se)) => &se[off[v as usize]..off[v as usize + 1]],
            _ => self.neighbor_edge_ids(v),
        }
    }

    /// Endpoints of canonical edge `e` (`u < v` when undirected).
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e as usize]
    }

    /// All canonical edges.
    #[inline]
    pub fn edge_slice(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Weight of canonical edge `e` (1.0 for unweighted graphs).
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        match &self.weights {
            Some(w) => w[e as usize],
            None => 1.0,
        }
    }

    /// Canonical weight slice, if weighted.
    #[inline]
    pub fn weight_slice(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Binary-searches the adjacency of `u` for `v`; returns the canonical
    /// edge id when the edge exists.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let row = self.neighbors(u);
        let idx = row.binary_search(&v).ok()?;
        Some(self.neighbor_edge_ids(u)[idx])
    }

    /// True when the edge `u -> v` (or `{u, v}` if undirected) exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Sum of canonical edge weights (`m` for unweighted graphs).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.par_iter().map(|&x| x as f64).sum(),
            None => self.edges.len() as f64,
        }
    }

    /// Average degree `2m/n` (undirected) or `m/n` (directed).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        let dir_slots = if self.directed { self.edges.len() } else { 2 * self.edges.len() };
        dir_slots as f64 / self.num_vertices as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices as VertexId)
            .into_par_iter()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Converts back to a canonical edge list (cloning edges and weights).
    pub fn to_edge_list(&self) -> EdgeList {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self.edges.to_vec(),
            weights: self.weights.as_ref().map(|w| w.to_vec()),
        }
    }

    /// Materializes the subgraph that keeps exactly the canonical edges for
    /// which `keep(e)` is true. Vertex set (and ids) are unchanged — this is
    /// the engine's compaction step after kernels marked deletions.
    pub fn filter_edges(&self, keep: impl Fn(EdgeId) -> bool + Sync) -> CsrGraph {
        let kept_ids: Vec<u32> =
            (0..self.edges.len() as EdgeId).into_par_iter().filter(|&e| keep(e)).collect();
        let edges: Vec<(VertexId, VertexId)> =
            kept_ids.par_iter().map(|&e| self.edges[e as usize]).collect();
        let weights =
            self.weights.as_ref().map(|w| kept_ids.par_iter().map(|&e| w[e as usize]).collect());
        let el = EdgeList { num_vertices: self.num_vertices, edges, weights };
        // Canonical order is preserved by filtering, so rebuild directly.
        Self::from_canonical(el, self.directed)
    }

    /// Materializes the subgraph after *reweighting*: keeps edge `e` iff
    /// `decide(e)` returns `Some(weight)`, with the new weight attached. Used
    /// by spectral sparsification, which must reweight survivors by `1/p_e`.
    pub fn filter_reweight(&self, decide: impl Fn(EdgeId) -> Option<Weight> + Sync) -> CsrGraph {
        let kept: Vec<(EdgeId, Weight)> = (0..self.edges.len() as EdgeId)
            .into_par_iter()
            .filter_map(|e| decide(e).map(|w| (e, w)))
            .collect();
        let edges: Vec<(VertexId, VertexId)> =
            kept.par_iter().map(|&(e, _)| self.edges[e as usize]).collect();
        let weights: Vec<Weight> = kept.par_iter().map(|&(_, w)| w).collect();
        let el = EdgeList { num_vertices: self.num_vertices, edges, weights: Some(weights) };
        Self::from_canonical(el, self.directed)
    }

    /// Removes the vertices flagged in `removed` (and all incident edges),
    /// relabelling survivors compactly. Returns the new graph and the
    /// old-id → new-id map (`None` entries are removed vertices).
    pub fn remove_vertices(&self, removed: &[bool]) -> (CsrGraph, Vec<Option<VertexId>>) {
        assert_eq!(removed.len(), self.num_vertices);
        let mut mapping: Vec<Option<VertexId>> = vec![None; self.num_vertices];
        let mut next: VertexId = 0;
        for v in 0..self.num_vertices {
            if !removed[v] {
                mapping[v] = Some(next);
                next += 1;
            }
        }
        let mut el = EdgeList::with_capacity(next as usize, self.edges.len());
        if self.weights.is_some() {
            el.weights = Some(Vec::with_capacity(self.edges.len()));
        }
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            if let (Some(nu), Some(nv)) = (mapping[u as usize], mapping[v as usize]) {
                el.edges.push((nu, nv));
                if let Some(w) = &mut el.weights {
                    w.push(self.weights.as_ref().expect("weighted").get(e).copied().unwrap_or(1.0));
                }
            }
        }
        (Self::from_canonical_unsorted(el, self.directed), mapping)
    }

    /// Builds from an edge list that is unique but possibly unsorted after
    /// relabelling.
    fn from_canonical_unsorted(mut el: EdgeList, directed: bool) -> Self {
        if directed {
            el.canonicalize_directed();
        } else {
            el.canonicalize_undirected();
        }
        Self::from_canonical(el, directed)
    }

    /// Iterates over all canonical edges as `(edge_id, u, v)`.
    pub fn edge_iter(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e as EdgeId, u, v))
    }

    /// Parallel iterator over canonical edge ids.
    pub fn par_edge_ids(&self) -> rayon::range::Iter<u32> {
        (0..self.edges.len() as EdgeId).into_par_iter()
    }

    /// Parallel iterator over vertex ids.
    pub fn par_vertex_ids(&self) -> rayon::range::Iter<u32> {
        (0..self.num_vertices as VertexId).into_par_iter()
    }

    /// Raw out-adjacency offsets (`n + 1` entries) — serializer view.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw out-adjacency target array — serializer view.
    #[inline]
    pub fn csr_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw canonical-edge-id-per-slot array — serializer view.
    #[inline]
    pub fn csr_slot_edges(&self) -> &[EdgeId] {
        &self.slot_edge
    }

    /// Raw in-adjacency offsets (directed graphs only) — serializer view.
    #[inline]
    pub fn in_csr_offsets(&self) -> Option<&[usize]> {
        self.in_offsets.as_deref()
    }

    /// Raw in-adjacency source array (directed graphs only).
    #[inline]
    pub fn in_csr_targets(&self) -> Option<&[VertexId]> {
        self.in_targets.as_deref()
    }

    /// Raw canonical-edge-id-per-in-slot array (directed graphs only).
    #[inline]
    pub fn in_csr_slot_edges(&self) -> Option<&[EdgeId]> {
        self.in_slot_edge.as_deref()
    }

    /// True when every CSR array (weights and in-adjacency included, when
    /// present) borrows from an external mapping instead of owning a `Vec` —
    /// the zero-copy invariant of `sg-store`'s `MmapGraph` loader.
    pub fn is_fully_mapped(&self) -> bool {
        self.offsets.is_mapped()
            && self.targets.is_mapped()
            && self.slot_edge.is_mapped()
            && self.edges.is_mapped()
            && self.weights.as_ref().is_none_or(Section::is_mapped)
            && self.in_offsets.as_ref().is_none_or(Section::is_mapped)
            && self.in_targets.as_ref().is_none_or(Section::is_mapped)
            && self.in_slot_edge.as_ref().is_none_or(Section::is_mapped)
    }

    /// Assembles a graph from raw (owned or mapped) CSR arrays, validating
    /// every structural invariant the rest of the workspace relies on:
    /// offset monotonicity, array lengths, sorted rows, canonical
    /// lexicographic edge order, and slot↔edge endpoint consistency. A
    /// hostile or corrupt `.sgr` file can therefore never build a graph that
    /// panics or reads out of bounds later — it is rejected here.
    pub fn from_parts(p: CsrParts) -> Result<Self, String> {
        let n = p.num_vertices;
        let m = p.edges.len();
        if m > EdgeId::MAX as usize {
            return Err("edge count exceeds EdgeId capacity".into());
        }
        if n > 0 && n - 1 > VertexId::MAX as usize {
            return Err("vertex count exceeds VertexId capacity".into());
        }
        let slots = if p.directed { m } else { 2 * m };
        let rows = n.checked_add(1).ok_or("vertex count overflow")?;
        if p.offsets.len() != rows {
            return Err(format!("offsets length {} != n + 1 = {rows}", p.offsets.len()));
        }
        if p.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        if !p.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        if p.offsets[n] != slots {
            return Err(format!("offsets[n] = {} != slot count {slots}", p.offsets[n]));
        }
        if p.targets.len() != slots || p.slot_edge.len() != slots {
            return Err("targets/slot_edge length mismatch".into());
        }
        if let Some(w) = &p.weights {
            if w.len() != m {
                return Err(format!("weights length {} != m = {m}", w.len()));
            }
        }
        let endpoints_ok = p.edges.as_slice().par_iter().all(|&(u, v)| {
            (u as usize) < n && (v as usize) < n && if p.directed { u != v } else { u < v }
        });
        if !endpoints_ok {
            return Err("edge endpoints out of bounds or non-canonical".into());
        }
        if !p.edges.windows(2).all(|w| w[0] < w[1]) {
            return Err("edges not in strict canonical order".into());
        }
        let row_ok = |offsets: &[usize], targets: &[VertexId], slot_edge: &[EdgeId], invert| {
            (0..n).into_par_iter().all(|v| {
                let (lo, hi) = (offsets[v], offsets[v + 1]);
                let (row, ids) = (&targets[lo..hi], &slot_edge[lo..hi]);
                row.windows(2).all(|w| w[0] < w[1])
                    && row.iter().zip(ids).all(|(&t, &e)| {
                        (e as usize) < m && {
                            let v = v as VertexId;
                            let want = match (p.directed, invert) {
                                (false, _) => (v.min(t), v.max(t)),
                                (true, false) => (v, t),
                                (true, true) => (t, v),
                            };
                            p.edges[e as usize] == want
                        }
                    })
            })
        };
        if !row_ok(&p.offsets, &p.targets, &p.slot_edge, false) {
            return Err("out-adjacency rows inconsistent with canonical edges".into());
        }
        match (p.directed, &p.in_offsets, &p.in_targets, &p.in_slot_edge) {
            (false, None, None, None) => {}
            (true, Some(io), Some(it), Some(ie)) => {
                if io.len() != rows || io[0] != 0 || !io.windows(2).all(|w| w[0] <= w[1]) {
                    return Err("in-offsets malformed".into());
                }
                if io[n] != m || it.len() != m || ie.len() != m {
                    return Err("in-adjacency length mismatch".into());
                }
                if !row_ok(io, it, ie, true) {
                    return Err("in-adjacency rows inconsistent with canonical edges".into());
                }
            }
            (false, ..) => return Err("undirected graph carries in-adjacency".into()),
            (true, ..) => return Err("directed graph missing in-adjacency".into()),
        }
        Ok(Self {
            directed: p.directed,
            num_vertices: n,
            offsets: p.offsets,
            targets: p.targets,
            slot_edge: p.slot_edge,
            edges: p.edges,
            weights: p.weights,
            in_offsets: p.in_offsets,
            in_targets: p.in_targets,
            in_slot_edge: p.in_slot_edge,
        })
    }

    /// Bytes needed by the CSR arrays (storage-cost accounting for Table 2).
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.len() * size_of::<usize>()
            + self.targets.len() * size_of::<VertexId>()
            + self.slot_edge.len() * size_of::<EdgeId>()
            + self.edges.len() * size_of::<(VertexId, VertexId)>()
            + self.weights.as_ref().map_or(0, |w| w.len() * size_of::<Weight>())
            + self.in_offsets.as_ref().map_or(0, |o| o.len() * size_of::<usize>())
            + self.in_targets.as_ref().map_or(0, |t| t.len() * size_of::<VertexId>())
            + self.in_slot_edge.as_ref().map_or(0, |t| t.len() * size_of::<EdgeId>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; 2-3 tail.
        CsrGraph::from_pairs(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_directed());
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn rows_are_sorted_and_ids_consistent() {
        let g = triangle_plus_tail();
        for v in 0..4u32 {
            let row = g.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {v} not sorted: {row:?}");
            for (idx, &t) in row.iter().enumerate() {
                let e = g.neighbor_edge_ids(v)[idx];
                let (a, b) = g.edge_endpoints(e);
                assert!((a, b) == (v.min(t), v.max(t)));
            }
        }
    }

    #[test]
    fn both_directions_share_edge_id() {
        let g = triangle_plus_tail();
        let e1 = g.find_edge(0, 2).expect("edge exists");
        let e2 = g.find_edge(2, 0).expect("edge exists");
        assert_eq!(e1, e2);
    }

    #[test]
    fn filter_edges_drops_marked() {
        let g = triangle_plus_tail();
        let victim = g.find_edge(0, 1).expect("edge exists");
        let h = g.filter_edges(|e| e != victim);
        assert_eq!(h.num_edges(), 3);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(2, 3));
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn filter_reweight_attaches_weights() {
        let g = triangle_plus_tail();
        let h = g.filter_reweight(|e| if e % 2 == 0 { Some(2.5) } else { None });
        assert!(h.is_weighted());
        assert_eq!(h.num_edges(), 2);
        for (e, _, _) in h.edge_iter() {
            assert_eq!(h.edge_weight(e), 2.5);
        }
    }

    #[test]
    fn remove_vertices_relabels() {
        let g = triangle_plus_tail();
        let (h, map) = g.remove_vertices(&[false, true, false, false]);
        assert_eq!(h.num_vertices(), 3);
        // Edges among survivors: (0,2) and (2,3) -> relabelled.
        assert_eq!(h.num_edges(), 2);
        assert_eq!(map[1], None);
        let n0 = map[0].expect("kept");
        let n2 = map[2].expect("kept");
        assert!(h.has_edge(n0, n2));
    }

    #[test]
    fn directed_graph_has_in_adjacency() {
        let el = EdgeList::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]);
        let g = CsrGraph::from_edge_list_directed(el);
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn weighted_graph_weight_lookup() {
        let g = CsrGraph::from_weighted_pairs(3, &[(0, 1, 0.5), (1, 2, 2.0)]);
        assert!(g.is_weighted());
        let e = g.find_edge(1, 2).expect("edge exists");
        assert_eq!(g.edge_weight(e), 2.0);
        assert!((g.total_weight() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_pairs(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let g = CsrGraph::from_pairs(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn storage_bytes_positive() {
        let g = triangle_plus_tail();
        assert!(g.storage_bytes() > 0);
    }
}
