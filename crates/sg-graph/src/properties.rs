//! Structural graph properties: degree statistics and distributions.
//!
//! Degree-distribution analysis is one of the paper's accuracy instruments
//! (Figures 7 and 8): compression schemes are judged visually by how they
//! deform the distribution. [`DegreeDistribution`] produces the
//! `degree -> fraction of vertices` series those plots show.

use crate::types::VertexId;
use crate::view::GraphView;
use rayon::prelude::*;

/// Summary statistics over vertex degrees.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Number of degree-1 vertices (targets of the low-degree kernel).
    pub leaves: usize,
}

/// Computes degree statistics in one parallel pass (min/max/sum/isolated/
/// leaves all reduce associatively, so the split shape cannot change the
/// answer).
pub fn degree_stats<G: GraphView>(g: &G) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0, leaves: 0 };
    }
    let (min, max, sum, isolated, leaves) = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let d = g.degree(v);
            (d, d, d, (d == 0) as usize, (d == 1) as usize)
        })
        .reduce(
            || (usize::MAX, 0, 0, 0, 0),
            |a, b| (a.0.min(b.0), a.1.max(b.1), a.2 + b.2, a.3 + b.3, a.4 + b.4),
        );
    DegreeStats { min, max, mean: sum as f64 / n as f64, isolated, leaves }
}

/// A sparse degree histogram: `(degree, count)` pairs sorted by degree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegreeDistribution {
    pub entries: Vec<(usize, usize)>,
    pub num_vertices: usize,
}

impl DegreeDistribution {
    /// Builds the distribution for a graph.
    pub fn of<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0usize; max_degree + 1];
        for &d in &degrees {
            counts[d] += 1;
        }
        let entries = counts.into_iter().enumerate().filter(|&(_, c)| c > 0).collect();
        Self { entries, num_vertices: n }
    }

    /// `degree -> fraction of vertices` series (what Figures 7/8 plot).
    pub fn fractions(&self) -> Vec<(usize, f64)> {
        let n = self.num_vertices.max(1) as f64;
        self.entries.iter().map(|&(d, c)| (d, c as f64 / n)).collect()
    }

    /// Number of distinct degrees present ("scatter" of the plot; uniform
    /// sampling is observed to reduce this clutter in Fig. 8).
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Least-squares slope of `log(fraction)` vs `log(degree)` over degrees
    /// ≥ 1 — the power-law exponent estimate. Spanners "strengthen the power
    /// law" (Fig. 7): the fit residual shrinks as k grows.
    pub fn power_law_fit(&self) -> Option<PowerLawFit> {
        let pts: Vec<(f64, f64)> = self
            .fractions()
            .into_iter()
            .filter(|&(d, f)| d >= 1 && f > 0.0)
            .map(|(d, f)| ((d as f64).ln(), f.ln()))
            .collect();
        if pts.len() < 3 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let ss_res: f64 = pts.iter().map(|&(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
        let mean_y = sy / n;
        let ss_tot: f64 = pts.iter().map(|&(_, y)| (y - mean_y).powi(2)).sum();
        let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        Some(PowerLawFit { exponent: slope, r2 })
    }
}

/// Result of fitting `fraction ∝ degree^exponent`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent (negative for heavy-tailed graphs).
    pub exponent: f64,
    /// Coefficient of determination of the log–log fit.
    pub r2: f64,
}

/// Global clustering-related count: triangles per vertex `T / n`, using the
/// provided triangle total (computed by `sg-algos`).
pub fn triangles_per_vertex<G: GraphView>(triangles: u64, g: &G) -> f64 {
    if g.num_vertices() == 0 {
        0.0
    } else {
        triangles as f64 / g.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_star() {
        let g = generators::star(10);
        let s = degree_stats(&g);
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 1);
        assert_eq!(s.leaves, 9);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn stats_on_empty() {
        let g = crate::CsrGraph::from_pairs(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn distribution_sums_to_n() {
        let g = generators::erdos_renyi(500, 1500, 3);
        let d = DegreeDistribution::of(&g);
        let total: usize = d.entries.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 500);
        let frac_sum: f64 = d.fractions().iter().map(|&(_, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_fit_negative_for_ba() {
        let g = generators::barabasi_albert(5000, 3, 1);
        let fit = DegreeDistribution::of(&g).power_law_fit().expect("enough points");
        assert!(fit.exponent < -1.0, "exponent {}", fit.exponent);
    }

    #[test]
    fn power_law_fit_none_for_regular() {
        // A cycle has a single degree value — no fit possible.
        let g = generators::cycle(50);
        assert!(DegreeDistribution::of(&g).power_law_fit().is_none());
    }
}
