//! Edge partitioning for the simulated distributed pipeline (`sg-dist`).
//!
//! The paper's distributed engine assigns edges to MPI ranks; we reproduce
//! the same 1-D edge partitioning so each simulated rank runs edge kernels
//! over a contiguous shard of the canonical edge array.

use crate::types::EdgeId;
use crate::CsrGraph;

/// A contiguous shard of canonical edge ids owned by one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeShard {
    pub rank: usize,
    pub start: EdgeId,
    pub end: EdgeId,
}

impl EdgeShard {
    /// Number of edges in the shard.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the shard owns no edges.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterator over the shard's edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        self.start..self.end
    }
}

/// Splits the canonical edge array into `ranks` balanced contiguous shards.
pub fn partition_edges(g: &CsrGraph, ranks: usize) -> Vec<EdgeShard> {
    assert!(ranks > 0, "need at least one rank");
    let m = g.num_edges();
    let base = m / ranks;
    let extra = m % ranks;
    let mut shards = Vec::with_capacity(ranks);
    let mut start = 0usize;
    for rank in 0..ranks {
        let len = base + usize::from(rank < extra);
        shards.push(EdgeShard { rank, start: start as EdgeId, end: (start + len) as EdgeId });
        start += len;
    }
    shards
}

/// Splits the vertex set into `ranks` balanced contiguous ranges (used when
/// aggregating per-rank degree histograms).
pub fn partition_vertices(n: usize, ranks: usize) -> Vec<(usize, usize)> {
    assert!(ranks > 0);
    let base = n / ranks;
    let extra = n % ranks;
    let mut out = Vec::with_capacity(ranks);
    let mut start = 0;
    for rank in 0..ranks {
        let len = base + usize::from(rank < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn shards_cover_all_edges_exactly_once() {
        let g = generators::erdos_renyi(200, 997, 1);
        let shards = partition_edges(&g, 7);
        assert_eq!(shards.len(), 7);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.num_edges());
        for w in shards.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(shards[0].start, 0);
        assert_eq!(shards[6].end as usize, g.num_edges());
    }

    #[test]
    fn shards_balanced() {
        let g = generators::erdos_renyi(100, 500, 2);
        let shards = partition_edges(&g, 3);
        let lens: Vec<_> = shards.iter().map(|s| s.len()).collect();
        assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }

    #[test]
    fn more_ranks_than_edges() {
        let g = generators::path(3); // 2 edges
        let shards = partition_edges(&g, 5);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 2);
        assert!(shards.iter().filter(|s| s.is_empty()).count() >= 3);
    }

    #[test]
    fn vertex_partition_covers() {
        let parts = partition_vertices(10, 4);
        assert_eq!(parts, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
    }
}
