//! Fundamental scalar types shared across the workspace.

/// Vertex identifier. 32 bits keeps CSR arrays compact (the Rust Performance
/// Book's "smaller integers" advice); the paper's shared-memory runs target
/// graphs well below 2^32 vertices.
pub type VertexId = u32;

/// Canonical edge identifier. For an undirected graph each edge `{u, v}` has
/// exactly one `EdgeId`, shared by both CSR directions.
pub type EdgeId = u32;

/// Edge weight. Single precision mirrors GAPBS's default `WeightT`.
pub type Weight = f32;

/// Sentinel for "no vertex" (e.g. BFS parent of the root before assignment).
pub const NO_VERTEX: VertexId = VertexId::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_not_a_plausible_vertex() {
        assert_eq!(NO_VERTEX, u32::MAX);
    }
}
