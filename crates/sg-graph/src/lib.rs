//! # sg-graph — graph substrate for the Slim Graph reproduction
//!
//! This crate provides the in-memory graph infrastructure that every other
//! crate in the workspace builds on:
//!
//! * [`EdgeList`] — a mutable edge-list staging area with canonicalization
//!   (self-loop removal, deduplication, undirected ordering),
//! * [`CsrGraph`] — an immutable Compressed-Sparse-Row graph with canonical
//!   edge identifiers shared by both directions of an undirected edge (the
//!   property the Slim Graph deletion bitmaps rely on),
//! * [`generators`] — seeded synthetic workload generators (R-MAT,
//!   Erdős–Rényi, Barabási–Albert, Watts–Strogatz, grids, planted triangles)
//!   together with presets mirroring the paper's dataset table,
//! * [`io`] — plain-text and binary edge-list readers/writers,
//! * [`storage`] — [`Section`], the borrowed-or-owned array backing that
//!   lets `sg-store` load graphs zero-copy from a file mapping,
//! * [`view`] — [`NeighborCursor`] and the [`GraphView`] trait, the single
//!   row-iteration API shared by raw and encoded graphs,
//! * [`encoded`] — [`EncodedCsr`], delta+varint / bitmap compressed
//!   adjacency that kernels traverse without materializing raw CSR,
//! * [`properties`] — degree statistics and histograms,
//! * [`partition`] — edge partitioning used by the simulated distributed
//!   pipeline.
//!
//! The representation follows GAPBS (the substrate used in the paper): an
//! offsets array of length `n + 1` and a flat adjacency array. Undirected
//! graphs store both directions; each directed *slot* carries the canonical
//! id of its undirected edge so that concurrent compression kernels agree on
//! deletion state.

pub mod csr;
pub mod edge_list;
pub mod encoded;
pub mod generators;
pub mod io;
pub mod partition;
pub mod prng;
pub mod properties;
pub mod storage;
pub mod types;
pub mod view;

pub use csr::{CsrGraph, CsrParts};
pub use edge_list::EdgeList;
pub use encoded::{EncodedAdjacency, EncodedAdjacencyParts, EncodedCsr};
pub use storage::Section;
pub use types::{EdgeId, VertexId, Weight};
pub use view::{GraphView, NeighborCursor};
