//! Compressed adjacency storage: delta+varint rows and bitmap rows.
//!
//! WebGraph-style encoding (Boldi & Vigna; the paper's storage discussion in
//! §6): each sorted adjacency row is stored either as LEB128 varints of
//! first-target + gaps (sparse rows) or as an `n`-bit bitmap (dense rows,
//! selected when `64·degree > n`, i.e. when the bitmap is smaller than raw
//! u32 targets). [`EncodedCsr`] is the encoded counterpart of
//! [`CsrGraph`]: same vertex ids, same canonical edge ids (forward
//! enumeration order), owned or mmap-backed sections, iterated through
//! [`NeighborCursor`] so kernels never materialize raw CSR.
//!
//! Determinism: row class and row content depend only on `(row, n)`; decode
//! order is a pure function of the row index, so every kernel result is
//! bit-identical to the raw-CSR run at any `SG_THREADS`.

use crate::edge_list::EdgeList;
use crate::storage::Section;
use crate::types::{EdgeId, VertexId, Weight};
use crate::view::{write_varint, BitmapCursor, DeltaCursor, GraphView, NeighborCursor};
use crate::CsrGraph;
use rayon::prelude::*;

/// How one adjacency row is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowClass {
    /// Gap-encoded LEB128 varints (first target absolute, then gaps).
    Delta,
    /// `ceil(n/64)` little-endian u64 words, bit `t` set iff `t` is a
    /// neighbor.
    Bitmap,
}

/// Row-class selection rule, fixed at write time and re-derived at read
/// time from the degrees section: bitmap iff `64·degree > n` (the bitmap is
/// then smaller than `degree` raw u32 targets).
#[inline]
pub fn row_class(degree: usize, num_vertices: usize) -> RowClass {
    if (degree as u64) * 64 > num_vertices as u64 {
        RowClass::Bitmap
    } else {
        RowClass::Delta
    }
}

/// Bytes of one bitmap row for an `n`-vertex graph.
#[inline]
pub fn bitmap_row_bytes(num_vertices: usize) -> usize {
    num_vertices.div_ceil(64) * 8
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Order-sensitive pair hash used by the cross-section consistency checks.
#[inline]
fn pair_hash(a: VertexId, b: VertexId) -> u64 {
    splitmix64((u64::from(a) << 32) | u64::from(b))
}

/// One encoded adjacency structure (out- or in-rows): per-row byte offsets
/// into a shared blob, per-row degrees, and the blob itself. All three are
/// [`Section`]s, so they can borrow from an `.sgr` mapping.
#[derive(Clone, Debug)]
pub struct EncodedAdjacency {
    num_vertices: usize,
    /// Byte offset of each row in `blob` (`n + 1` entries).
    row_starts: Section<usize>,
    /// Degree of each row (`n` entries).
    degrees: Section<u32>,
    /// Concatenated encoded rows.
    blob: Section<u8>,
}

impl EncodedAdjacency {
    /// Encodes sorted rows. Each yielded slice must be strictly increasing
    /// with targets `< num_vertices` (the `CsrGraph` row invariant).
    pub fn from_rows<'r>(num_vertices: usize, rows: impl Iterator<Item = &'r [VertexId]>) -> Self {
        let mut row_starts = Vec::with_capacity(num_vertices + 1);
        let mut degrees = Vec::with_capacity(num_vertices);
        let mut blob = Vec::new();
        row_starts.push(0usize);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "rows must be sorted");
            degrees.push(row.len() as u32);
            match row_class(row.len(), num_vertices) {
                RowClass::Delta => {
                    let mut prev = 0;
                    for (i, &t) in row.iter().enumerate() {
                        write_varint(&mut blob, if i == 0 { t } else { t - prev });
                        prev = t;
                    }
                }
                RowClass::Bitmap => {
                    let base = blob.len();
                    blob.resize(base + bitmap_row_bytes(num_vertices), 0);
                    for &t in row {
                        blob[base + t as usize / 8] |= 1 << (t % 8);
                    }
                }
            }
            row_starts.push(blob.len());
        }
        assert_eq!(row_starts.len(), num_vertices + 1, "one row per vertex required");
        Self {
            num_vertices,
            row_starts: row_starts.into(),
            degrees: degrees.into(),
            blob: blob.into(),
        }
    }

    /// Assembles an encoded adjacency from raw (owned or mapped) sections,
    /// validating every row: byte ranges in bounds and monotone, delta rows
    /// strictly increasing below `n` with no truncated or over-long varint,
    /// bitmap rows exactly `ceil(n/64)` words with popcount matching the
    /// degree and no bit at or above `n`. A hostile `.sgr` file is rejected
    /// here instead of misbehaving in a kernel later.
    pub fn from_parts(
        num_vertices: usize,
        row_starts: Section<usize>,
        degrees: Section<u32>,
        blob: Section<u8>,
    ) -> Result<Self, String> {
        let n = num_vertices;
        if row_starts.len() != n + 1 {
            return Err(format!("row index length {} != n + 1 = {}", row_starts.len(), n + 1));
        }
        if degrees.len() != n {
            return Err(format!("degrees length {} != n = {n}", degrees.len()));
        }
        if row_starts[0] != 0 {
            return Err("row index does not start at 0".into());
        }
        if !row_starts.windows(2).all(|w| w[0] <= w[1]) {
            return Err("row index not monotone".into());
        }
        if row_starts[n] != blob.len() {
            return Err(format!("row index end {} != blob length {}", row_starts[n], blob.len()));
        }
        let adj = Self { num_vertices, row_starts, degrees, blob };
        let rows_ok = (0..n).into_par_iter().all(|v| adj.validate_row(v));
        if !rows_ok {
            return Err("encoded adjacency row invalid (truncated varint, gap overflow, \
                        or malformed bitmap)"
                .into());
        }
        Ok(adj)
    }

    fn validate_row(&self, v: usize) -> bool {
        let degree = self.degrees[v] as usize;
        if degree > self.num_vertices {
            return false;
        }
        let bytes = self.row_bytes(v as VertexId);
        match row_class(degree, self.num_vertices) {
            RowClass::Delta => {
                let mut pos = 0;
                let mut prev: u64 = 0;
                for i in 0..degree {
                    let Some(gap) = crate::view::read_varint(bytes, &mut pos) else {
                        return false;
                    };
                    if i > 0 && gap == 0 {
                        return false; // duplicate target
                    }
                    prev = if i == 0 { u64::from(gap) } else { prev + u64::from(gap) };
                    if prev >= self.num_vertices as u64 {
                        return false; // gap overflow past n
                    }
                }
                pos == bytes.len() // no trailing garbage
            }
            RowClass::Bitmap => {
                if bytes.len() != bitmap_row_bytes(self.num_vertices) {
                    return false; // over- or undersized bitmap
                }
                let mut popcount = 0usize;
                for (w, chunk) in bytes.chunks_exact(8).enumerate() {
                    let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    let base = w * 64;
                    // Bits at or above n must be clear.
                    if base + 64 > self.num_vertices {
                        let valid = self.num_vertices.saturating_sub(base);
                        if valid < 64 && (word >> valid) != 0 {
                            return false;
                        }
                    }
                    popcount += word.count_ones() as usize;
                }
                popcount == degree
            }
        }
    }

    /// Number of rows (== vertices).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Degree of row `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Encoded bytes of row `v`.
    #[inline]
    pub fn row_bytes(&self, v: VertexId) -> &[u8] {
        &self.blob[self.row_starts[v as usize]..self.row_starts[v as usize + 1]]
    }

    /// Cursor over row `v`.
    #[inline]
    pub fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        let degree = self.degrees[v as usize];
        let bytes = self.row_bytes(v);
        match row_class(degree as usize, self.num_vertices) {
            RowClass::Delta => NeighborCursor::Delta(DeltaCursor::new(bytes, degree)),
            RowClass::Bitmap => NeighborCursor::Bitmap(BitmapCursor::new(bytes)),
        }
    }

    /// Raw row-index section (serializer view).
    #[inline]
    pub fn row_starts(&self) -> &[usize] {
        &self.row_starts
    }

    /// Raw degrees section (serializer view).
    #[inline]
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Raw blob section (serializer view).
    #[inline]
    pub fn blob(&self) -> &[u8] {
        &self.blob
    }

    /// Bytes held by the three sections (8-byte row index entries).
    pub fn encoded_bytes(&self) -> usize {
        self.row_starts.len() * 8 + self.degrees.len() * 4 + self.blob.len()
    }

    fn is_mapped(&self) -> bool {
        self.row_starts.is_mapped() && self.degrees.is_mapped() && self.blob.is_mapped()
    }
}

/// Per-direction encoded sections handed to [`EncodedCsr::from_parts`] by
/// loaders.
pub struct EncodedAdjacencyParts {
    /// Byte offset of each row (`n + 1` entries).
    pub row_starts: Section<usize>,
    /// Degree of each row (`n` entries).
    pub degrees: Section<u32>,
    /// Concatenated encoded rows.
    pub blob: Section<u8>,
}

/// The encoded counterpart of [`CsrGraph`]: adjacency stored as
/// delta+varint / bitmap rows, canonical edge ids defined by forward
/// enumeration order (identical to the raw graph's ids), optional weights
/// indexed by canonical id. Kernels iterate it through [`GraphView`].
#[derive(Clone, Debug)]
pub struct EncodedCsr {
    directed: bool,
    num_edges: usize,
    out_adj: EncodedAdjacency,
    /// In-adjacency (directed graphs only).
    in_adj: Option<EncodedAdjacency>,
    /// Canonical edge weights, if weighted.
    weights: Option<Section<Weight>>,
}

impl EncodedCsr {
    /// Encodes a raw graph. The canonical edge ids of the result are the
    /// same as `g`'s (forward enumeration order == lexicographic canonical
    /// order).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let out_adj = EncodedAdjacency::from_rows(n, (0..n as VertexId).map(|v| g.neighbors(v)));
        let in_adj = g
            .is_directed()
            .then(|| EncodedAdjacency::from_rows(n, (0..n as VertexId).map(|v| g.in_neighbors(v))));
        Self {
            directed: g.is_directed(),
            num_edges: g.num_edges(),
            out_adj,
            in_adj,
            weights: g.weight_slice().map(|w| Section::from(w.to_vec())),
        }
    }

    /// Assembles an encoded graph from raw sections, validating each
    /// adjacency structurally (see [`EncodedAdjacency::from_parts`]) and the
    /// directions against each other: the out-rows must describe exactly
    /// `m` edges, the undirected adjacency must be symmetric, and a
    /// directed in-adjacency must be the exact transpose of the out-rows
    /// (checked with an order-sensitive pair hash, one decode pass, no
    /// materialization). Self-loops are rejected.
    pub fn from_parts(
        directed: bool,
        num_vertices: usize,
        num_edges: usize,
        out: EncodedAdjacencyParts,
        in_: Option<EncodedAdjacencyParts>,
        weights: Option<Section<Weight>>,
    ) -> Result<Self, String> {
        if num_edges > EdgeId::MAX as usize {
            return Err("edge count exceeds EdgeId capacity".into());
        }
        let out_adj =
            EncodedAdjacency::from_parts(num_vertices, out.row_starts, out.degrees, out.blob)?;
        let slot_total: u64 = out_adj.degrees().par_iter().map(|&d| u64::from(d)).sum();
        let expected_slots = if directed { num_edges as u64 } else { 2 * num_edges as u64 };
        if slot_total != expected_slots {
            return Err(format!("degree sum {slot_total} != expected slots {expected_slots}"));
        }
        if let Some(w) = &weights {
            if w.len() != num_edges {
                return Err(format!("weights length {} != m = {num_edges}", w.len()));
            }
        }
        let in_adj = match (directed, in_) {
            (false, None) => None,
            (true, Some(p)) => {
                Some(EncodedAdjacency::from_parts(num_vertices, p.row_starts, p.degrees, p.blob)?)
            }
            (false, Some(_)) => return Err("undirected graph carries in-adjacency".into()),
            (true, None) => return Err("directed graph missing in-adjacency".into()),
        };
        let g = Self { directed, num_edges, out_adj, in_adj, weights };
        g.check_cross_consistency()?;
        Ok(g)
    }

    /// One parallel decode pass over all rows: rejects self-loops and
    /// verifies symmetry (undirected) or out/in transposition (directed)
    /// via commutative sums of an order-sensitive pair hash.
    fn check_cross_consistency(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if !self.directed {
            // Each undirected edge {u, v} must appear as forward slot
            // (u, v) with v > u and backward slot (v, u): equal counts and
            // equal hash-sums over ordered pairs (min, max).
            let (fwd_cnt, bwd_cnt, fwd_hash, bwd_hash, no_loops) = (0..n as VertexId)
                .into_par_iter()
                .map(|v| {
                    let (mut fc, mut bc) = (0u64, 0u64);
                    let (mut fh, mut bh) = (0u64, 0u64);
                    let mut clean = true;
                    self.out_adj.cursor(v).for_each(|t| {
                        if t == v {
                            clean = false;
                        } else if t > v {
                            fc += 1;
                            fh = fh.wrapping_add(pair_hash(v, t));
                        } else {
                            bc += 1;
                            bh = bh.wrapping_add(pair_hash(t, v));
                        }
                    });
                    (fc, bc, fh, bh, clean)
                })
                .reduce(
                    || (0, 0, 0, 0, true),
                    |a, b| {
                        (
                            a.0 + b.0,
                            a.1 + b.1,
                            a.2.wrapping_add(b.2),
                            a.3.wrapping_add(b.3),
                            a.4 && b.4,
                        )
                    },
                );
            if !no_loops {
                return Err("self-loop in encoded adjacency".into());
            }
            if fwd_cnt != self.num_edges as u64 || bwd_cnt != self.num_edges as u64 {
                return Err("undirected adjacency is not symmetric (slot counts)".into());
            }
            if fwd_hash != bwd_hash {
                return Err("undirected adjacency is not symmetric".into());
            }
        } else {
            let in_adj = self.in_adj.as_ref().expect("directed graph has in-adjacency");
            let in_slots: u64 = in_adj.degrees().par_iter().map(|&d| u64::from(d)).sum();
            if in_slots != self.num_edges as u64 {
                return Err("in-adjacency slot count != m".into());
            }
            let hash_of = |adj: &EncodedAdjacency, invert: bool| {
                (0..n as VertexId)
                    .into_par_iter()
                    .map(|v| {
                        let mut h = 0u64;
                        let mut clean = true;
                        adj.cursor(v).for_each(|t| {
                            if t == v {
                                clean = false;
                            }
                            let (src, dst) = if invert { (t, v) } else { (v, t) };
                            h = h.wrapping_add(pair_hash(src, dst));
                        });
                        (h, clean)
                    })
                    .reduce(|| (0, true), |a, b| (a.0.wrapping_add(b.0), a.1 && b.1))
            };
            let (out_hash, out_clean) = hash_of(&self.out_adj, false);
            let (in_hash, in_clean) = hash_of(in_adj, true);
            if !out_clean || !in_clean {
                return Err("self-loop in encoded adjacency".into());
            }
            if out_hash != in_hash {
                return Err("in-adjacency is not the transpose of out-adjacency".into());
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_adj.num_vertices()
    }

    /// Number of canonical edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_adj.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        match &self.in_adj {
            Some(a) => a.degree(v),
            None => self.degree(v),
        }
    }

    /// Cursor over the out-row of `v`.
    #[inline]
    pub fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        self.out_adj.cursor(v)
    }

    /// Cursor over the in-row of `v` (out-row when undirected).
    #[inline]
    pub fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        match &self.in_adj {
            Some(a) => a.cursor(v),
            None => self.cursor(v),
        }
    }

    /// Weight of canonical edge `e` (1.0 when unweighted).
    #[inline]
    pub fn edge_weight(&self, e: EdgeId) -> Weight {
        match &self.weights {
            Some(w) => w[e as usize],
            None => 1.0,
        }
    }

    /// Canonical weight slice, if weighted.
    #[inline]
    pub fn weight_slice(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// The out-adjacency sections (serializer view).
    #[inline]
    pub fn out_adjacency(&self) -> &EncodedAdjacency {
        &self.out_adj
    }

    /// The in-adjacency sections, when directed (serializer view).
    #[inline]
    pub fn in_adjacency(&self) -> Option<&EncodedAdjacency> {
        self.in_adj.as_ref()
    }

    /// Canonical-edge-id of the first forward slot of each row (`n + 1`
    /// entries): for row `v`, the forward targets (`t > v` undirected, all
    /// targets directed) carry consecutive ids starting at
    /// `offsets[v]` — a pure function of the row index, which is what keeps
    /// the encoded edge-kernel path bit-identical to the raw one.
    pub fn forward_edge_offsets(&self) -> Vec<usize> {
        let n = self.num_vertices();
        let counts: Vec<usize> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                if self.directed {
                    self.degree(v)
                } else {
                    let mut c = 0usize;
                    self.cursor(v).for_each(|t| c += usize::from(t > v));
                    c
                }
            })
            .collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in counts {
            acc += c;
            offsets.push(acc);
        }
        debug_assert_eq!(acc, self.num_edges);
        offsets
    }

    /// Decodes back to a raw [`CsrGraph`]; canonical edge ids, weights and
    /// adjacency are bit-identical to the graph that was encoded.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges);
        for v in 0..n as VertexId {
            self.cursor(v).for_each(|t| {
                if self.directed || t > v {
                    edges.push((v, t));
                }
            });
        }
        let el =
            EdgeList { num_vertices: n, edges, weights: self.weights.as_ref().map(|w| w.to_vec()) };
        if self.directed {
            CsrGraph::from_edge_list_directed(el)
        } else {
            CsrGraph::from_edge_list(el)
        }
    }

    /// Bytes of the adjacency sections alone (row index + degrees + blob,
    /// both directions) — the quantity the raw-vs-encoded accounting in
    /// `sg-bench` compares against raw offsets + targets + slot ids.
    pub fn adjacency_bytes(&self) -> usize {
        self.out_adj.encoded_bytes() + self.in_adj.as_ref().map_or(0, |a| a.encoded_bytes())
    }

    /// Total resident bytes (adjacency sections plus weights).
    pub fn storage_bytes(&self) -> usize {
        self.adjacency_bytes()
            + self.weights.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }

    /// True when every section borrows from an external mapping (the
    /// zero-copy invariant of `sg-store`'s encoded mmap loader).
    pub fn is_fully_mapped(&self) -> bool {
        self.out_adj.is_mapped()
            && self.in_adj.as_ref().is_none_or(EncodedAdjacency::is_mapped)
            && self.weights.as_ref().is_none_or(Section::is_mapped)
    }
}

impl GraphView for EncodedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        EncodedCsr::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        EncodedCsr::num_edges(self)
    }

    #[inline]
    fn is_directed(&self) -> bool {
        EncodedCsr::is_directed(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        EncodedCsr::degree(self, v)
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        EncodedCsr::in_degree(self, v)
    }

    #[inline]
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        EncodedCsr::cursor(self, v)
    }

    #[inline]
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        EncodedCsr::in_cursor(self, v)
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        EncodedCsr::edge_weight(self, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_rows_match(g: &CsrGraph, enc: &EncodedCsr) {
        for v in 0..g.num_vertices() as VertexId {
            let decoded: Vec<VertexId> = enc.cursor(v).collect();
            assert_eq!(decoded, g.neighbors(v), "row {v}");
            let decoded_in: Vec<VertexId> = enc.in_cursor(v).collect();
            assert_eq!(decoded_in, g.in_neighbors(v), "in-row {v}");
            assert_eq!(enc.degree(v), g.degree(v));
            assert_eq!(enc.in_degree(v), g.in_degree(v));
        }
    }

    #[test]
    fn round_trip_er() {
        let g = generators::erdos_renyi(300, 1200, 3);
        let enc = EncodedCsr::from_graph(&g);
        assert_eq!(enc.num_edges(), g.num_edges());
        assert_rows_match(&g, &enc);
        let back = enc.to_csr();
        assert_eq!(back.edge_slice(), g.edge_slice());
        assert_eq!(back.csr_offsets(), g.csr_offsets());
        assert_eq!(back.csr_targets(), g.csr_targets());
    }

    #[test]
    fn round_trip_dense_uses_bitmap_rows() {
        // Star hub has degree n-1 > n/64: bitmap row exercised.
        let g = generators::star(200);
        let enc = EncodedCsr::from_graph(&g);
        assert_eq!(row_class(g.degree(0), 200), RowClass::Bitmap);
        assert_eq!(row_class(g.degree(1), 200), RowClass::Delta);
        assert_rows_match(&g, &enc);
        assert_eq!(enc.to_csr().edge_slice(), g.edge_slice());
    }

    #[test]
    fn round_trip_directed_weighted() {
        let el = EdgeList::from_weighted(
            5,
            vec![(0, 1, 0.5), (1, 2, 1.5), (2, 0, 2.5), (3, 4, 3.5), (0, 4, 4.5)],
        );
        let g = CsrGraph::from_edge_list_directed(el);
        let enc = EncodedCsr::from_graph(&g);
        assert!(enc.is_directed() && enc.is_weighted());
        assert_rows_match(&g, &enc);
        let back = enc.to_csr();
        assert_eq!(back.edge_slice(), g.edge_slice());
        assert_eq!(back.weight_slice(), g.weight_slice());
    }

    #[test]
    fn forward_edge_offsets_match_canonical_ids() {
        for g in [generators::erdos_renyi(100, 500, 9), generators::barabasi_albert(150, 4, 2)] {
            let enc = EncodedCsr::from_graph(&g);
            let offsets = enc.forward_edge_offsets();
            assert_eq!(offsets[g.num_vertices()], g.num_edges());
            // Edge id offsets[v] + k must be the canonical id of the k-th
            // forward target of v.
            for v in 0..g.num_vertices() as VertexId {
                let mut k = 0;
                for &t in g.neighbors(v) {
                    if t > v {
                        let e = (offsets[v as usize] + k) as EdgeId;
                        assert_eq!(g.edge_endpoints(e), (v, t));
                        k += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn from_parts_accepts_own_encoding() {
        let g = generators::barabasi_albert(400, 6, 5);
        let enc = EncodedCsr::from_graph(&g);
        let parts = EncodedAdjacencyParts {
            row_starts: enc.out_adjacency().row_starts().to_vec().into(),
            degrees: enc.out_adjacency().degrees().to_vec().into(),
            blob: enc.out_adjacency().blob().to_vec().into(),
        };
        let rebuilt =
            EncodedCsr::from_parts(false, g.num_vertices(), g.num_edges(), parts, None, None)
                .expect("valid encoding round-trips");
        assert_rows_match(&g, &rebuilt);
    }

    #[test]
    fn from_parts_rejects_truncated_varint() {
        let g = generators::erdos_renyi(64, 200, 1);
        let enc = EncodedCsr::from_graph(&g);
        let mut blob = enc.out_adjacency().blob().to_vec();
        let last = blob.len() - 1;
        blob[last] |= 0x80; // final byte now demands a continuation
        let parts = EncodedAdjacencyParts {
            row_starts: enc.out_adjacency().row_starts().to_vec().into(),
            degrees: enc.out_adjacency().degrees().to_vec().into(),
            blob: blob.into(),
        };
        let err = EncodedCsr::from_parts(false, 64, g.num_edges(), parts, None, None)
            .expect_err("truncated varint rejected");
        assert!(err.contains("row invalid"), "{err}");
    }

    #[test]
    fn from_parts_rejects_gap_overflow() {
        // Row 0 of a 2-vertex graph claiming target gap 200 (>= n).
        let mut blob = Vec::new();
        write_varint(&mut blob, 200);
        let parts = EncodedAdjacencyParts {
            row_starts: vec![0usize, blob.len(), blob.len()].into(),
            degrees: vec![1u32, 0].into(),
            blob: blob.into(),
        };
        let err = EncodedCsr::from_parts(false, 2, 1, parts, None, None)
            .expect_err("gap overflow rejected");
        assert!(err.contains("row invalid"), "{err}");
    }

    #[test]
    fn from_parts_rejects_malformed_bitmap() {
        let g = generators::star(200);
        let enc = EncodedCsr::from_graph(&g);
        // Oversize the hub's bitmap row by 8 bytes.
        let hub_end = enc.out_adjacency().row_starts()[1];
        let mut blob = enc.out_adjacency().blob().to_vec();
        blob.splice(hub_end..hub_end, std::iter::repeat_n(0u8, 8));
        let row_starts: Vec<usize> = enc
            .out_adjacency()
            .row_starts()
            .iter()
            .enumerate()
            .map(|(i, &s)| if i >= 1 { s + 8 } else { s })
            .collect();
        let parts = EncodedAdjacencyParts {
            row_starts: row_starts.into(),
            degrees: enc.out_adjacency().degrees().to_vec().into(),
            blob: blob.into(),
        };
        let err = EncodedCsr::from_parts(false, 200, g.num_edges(), parts, None, None)
            .expect_err("oversized bitmap rejected");
        assert!(err.contains("row invalid"), "{err}");
    }

    #[test]
    fn from_parts_rejects_asymmetry() {
        // Vertex 0 claims neighbor 1, but vertex 1 is empty; vertex 2
        // claims neighbor 1 instead. Slot counts balance (one forward, one
        // backward), so only the pair-hash check can catch it.
        let n = 200;
        let mut blob = Vec::new();
        write_varint(&mut blob, 1); // row 0: [1]
        let r1 = blob.len();
        write_varint(&mut blob, 1); // row 2: [1]
        let mut row_starts = vec![0usize, r1, r1, blob.len()];
        row_starts.resize(n + 1, blob.len());
        let mut degrees = vec![1u32, 0, 1];
        degrees.resize(n, 0);
        let parts = EncodedAdjacencyParts {
            row_starts: row_starts.into(),
            degrees: degrees.into(),
            blob: blob.into(),
        };
        let err = EncodedCsr::from_parts(false, n, 1, parts, None, None)
            .expect_err("asymmetric adjacency rejected");
        assert!(err.contains("symmetric"), "{err}");
    }

    #[test]
    fn adjacency_bytes_smaller_than_raw_on_social_graph() {
        let g = generators::barabasi_albert(5000, 8, 7);
        let enc = EncodedCsr::from_graph(&g);
        let raw_adj =
            g.csr_offsets().len() * 8 + g.csr_targets().len() * 4 + g.csr_slot_edges().len() * 4;
        assert!(
            enc.adjacency_bytes() * 2 <= raw_adj,
            "encoded {} vs raw {raw_adj}",
            enc.adjacency_bytes()
        );
    }

    use crate::EdgeList;
}
