//! Edge-list staging area.
//!
//! All graph construction funnels through [`EdgeList`]: generators emit raw
//! pairs, `canonicalize` turns them into the unique undirected form the CSR
//! builder expects (no self-loops, `u < v`, sorted, deduplicated), and
//! [`crate::CsrGraph::from_edge_list`] materializes the final structure.

use crate::types::{VertexId, Weight};
use rayon::prelude::*;

/// A growable list of (possibly weighted) edges plus the vertex-count bound.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..num_vertices`).
    pub num_vertices: usize,
    /// Edge endpoints. For undirected graphs order is irrelevant until
    /// canonicalization.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional per-edge weights, parallel to `edges`.
    pub weights: Option<Vec<Weight>>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self { num_vertices, edges: Vec::new(), weights: None }
    }

    /// Creates an edge list with preallocated capacity.
    pub fn with_capacity(num_vertices: usize, capacity: usize) -> Self {
        Self { num_vertices, edges: Vec::with_capacity(capacity), weights: None }
    }

    /// Creates an unweighted edge list directly from pairs.
    pub fn from_pairs(
        num_vertices: usize,
        pairs: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        Self { num_vertices, edges: pairs.into_iter().collect(), weights: None }
    }

    /// Creates a weighted edge list from `(u, v, w)` triples.
    pub fn from_weighted(
        num_vertices: usize,
        triples: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        for (u, v, w) in triples {
            edges.push((u, v));
            weights.push(w);
        }
        Self { num_vertices, edges, weights: Some(weights) }
    }

    /// Number of (raw, possibly duplicated) edges currently stored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends an unweighted edge. Panics if the list is weighted.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        assert!(self.weights.is_none(), "cannot push unweighted edge into weighted list");
        self.edges.push((u, v));
    }

    /// Appends a weighted edge. Converts an empty unweighted list to weighted.
    pub fn push_weighted(&mut self, u: VertexId, v: VertexId, w: Weight) {
        if self.weights.is_none() {
            assert!(self.edges.is_empty(), "cannot mix weighted and unweighted edges");
            self.weights = Some(Vec::new());
        }
        self.edges.push((u, v));
        self.weights.as_mut().expect("weights allocated above").push(w);
    }

    /// Canonicalizes the list for an *undirected* graph:
    ///
    /// 1. drops self-loops,
    /// 2. orients every edge so `u < v`,
    /// 3. sorts and deduplicates (keeping the first weight of a duplicate).
    ///
    /// After this call each undirected edge appears exactly once, which is the
    /// contract [`crate::CsrGraph::from_edge_list`] relies on to assign
    /// canonical edge ids.
    pub fn canonicalize_undirected(&mut self) {
        let weighted = self.weights.is_some();
        if weighted {
            let weights = self.weights.take().expect("checked above");
            let mut combined: Vec<((VertexId, VertexId), Weight)> = self
                .edges
                .par_iter()
                .zip(weights.par_iter())
                .filter(|(&(u, v), _)| u != v)
                .map(|(&(u, v), &w)| (if u < v { (u, v) } else { (v, u) }, w))
                .collect();
            combined.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
            combined.dedup_by_key(|e| e.0);
            let (edges, weights): (Vec<_>, Vec<_>) = combined.into_iter().unzip();
            self.edges = edges;
            self.weights = Some(weights);
        } else {
            let mut edges: Vec<(VertexId, VertexId)> = self
                .edges
                .par_iter()
                .filter(|&&(u, v)| u != v)
                .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
                .collect();
            edges.par_sort_unstable();
            edges.dedup();
            self.edges = edges;
        }
    }

    /// Canonicalizes for a *directed* graph: drops self-loops, sorts by
    /// (source, target), deduplicates.
    pub fn canonicalize_directed(&mut self) {
        let weighted = self.weights.is_some();
        if weighted {
            let weights = self.weights.take().expect("checked above");
            let mut combined: Vec<((VertexId, VertexId), Weight)> = self
                .edges
                .par_iter()
                .zip(weights.par_iter())
                .filter(|(&(u, v), _)| u != v)
                .map(|(&e, &w)| (e, w))
                .collect();
            combined.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
            combined.dedup_by_key(|e| e.0);
            let (edges, weights): (Vec<_>, Vec<_>) = combined.into_iter().unzip();
            self.edges = edges;
            self.weights = Some(weights);
        } else {
            let mut edges: Vec<(VertexId, VertexId)> =
                self.edges.par_iter().filter(|&&(u, v)| u != v).copied().collect();
            edges.par_sort_unstable();
            edges.dedup();
            self.edges = edges;
        }
    }

    /// Largest endpoint id + 1, or 0 when empty. Used to validate
    /// `num_vertices`.
    pub fn max_vertex_bound(&self) -> usize {
        self.edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_removes_self_loops_and_duplicates() {
        let mut el = EdgeList::from_pairs(4, vec![(0, 1), (1, 0), (2, 2), (3, 1), (1, 3)]);
        el.canonicalize_undirected();
        assert_eq!(el.edges, vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn canonicalize_orders_endpoints() {
        let mut el = EdgeList::from_pairs(3, vec![(2, 0), (1, 2)]);
        el.canonicalize_undirected();
        assert_eq!(el.edges, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn weighted_canonicalization_keeps_first_weight() {
        let mut el = EdgeList::from_weighted(3, vec![(0, 1, 2.0), (1, 0, 9.0), (1, 2, 1.0)]);
        el.canonicalize_undirected();
        assert_eq!(el.edges, vec![(0, 1), (1, 2)]);
        let w = el.weights.expect("weighted list");
        assert_eq!(w.len(), 2);
        assert_eq!(w[1], 1.0);
        // Either duplicate's weight is acceptable; both candidates came from
        // the same undirected edge.
        assert!(w[0] == 2.0 || w[0] == 9.0);
    }

    #[test]
    fn directed_canonicalization_keeps_both_directions() {
        let mut el = EdgeList::from_pairs(3, vec![(0, 1), (1, 0), (1, 0)]);
        el.canonicalize_directed();
        assert_eq!(el.edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn push_weighted_roundtrip() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 0.5);
        el.push_weighted(1, 2, 1.5);
        assert_eq!(el.len(), 2);
        assert_eq!(el.weights.as_ref().map(|w| w.len()), Some(2));
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixing_weighted_and_unweighted_panics() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push_weighted(1, 2, 1.0);
    }

    #[test]
    fn max_vertex_bound_empty() {
        let el = EdgeList::new(0);
        assert_eq!(el.max_vertex_bound(), 0);
    }
}
