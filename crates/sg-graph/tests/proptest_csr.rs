//! Property-based tests for the CSR substrate: construction invariants,
//! canonical edge identity, filtering, serialization round-trips.

use proptest::prelude::*;
use sg_graph::{io, CsrGraph, EdgeList};

/// Strategy: an arbitrary raw edge list over up to `n` vertices (possibly
/// with duplicates, self-loops, both orientations).
fn raw_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants hold for any input: sorted rows, consistent degrees,
    /// canonical endpoints, both directions sharing an edge id.
    #[test]
    fn csr_structural_invariants((n, edges) in raw_edges(64, 200)) {
        let g = CsrGraph::from_pairs(n as usize, &edges);
        // Degrees sum to 2m.
        let degree_sum: usize = (0..g.num_vertices() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            let row = g.neighbors(v);
            // Sorted, unique, no self-loops.
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!row.contains(&v));
            // Slot edge ids agree with canonical endpoints.
            for (i, &t) in row.iter().enumerate() {
                let e = g.neighbor_edge_ids(v)[i];
                let (a, b) = g.edge_endpoints(e);
                prop_assert_eq!((a, b), (v.min(t), v.max(t)));
                // Reverse direction resolves to the same id.
                prop_assert_eq!(g.find_edge(t, v), Some(e));
            }
        }
        // Canonical edges sorted and unique.
        let es = g.edge_slice();
        prop_assert!(es.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(es.iter().all(|&(u, v)| u < v));
    }

    /// Construction is idempotent: rebuilding from the canonical edge list
    /// reproduces the graph.
    #[test]
    fn csr_roundtrip_via_edge_list((n, edges) in raw_edges(64, 200)) {
        let g = CsrGraph::from_pairs(n as usize, &edges);
        let h = CsrGraph::from_edge_list(g.to_edge_list());
        prop_assert_eq!(g.edge_slice(), h.edge_slice());
        prop_assert_eq!(g.num_vertices(), h.num_vertices());
    }

    /// Binary serialization round-trips exactly.
    #[test]
    fn binary_io_roundtrip((n, edges) in raw_edges(48, 150)) {
        let g = CsrGraph::from_pairs(n as usize, &edges);
        let bytes = io::to_binary(&g);
        let h = io::from_binary(&bytes).expect("valid payload");
        prop_assert_eq!(g.edge_slice(), h.edge_slice());
        prop_assert_eq!(g.num_vertices(), h.num_vertices());
    }

    /// Filtering by an arbitrary predicate keeps exactly the selected edges
    /// and never disturbs the others.
    #[test]
    fn filter_edges_selects_exactly((n, edges) in raw_edges(64, 200), modulus in 2u32..7) {
        let g = CsrGraph::from_pairs(n as usize, &edges);
        let h = g.filter_edges(|e| e % modulus == 0);
        let expect: Vec<_> = g
            .edge_iter()
            .filter(|&(e, _, _)| e % modulus == 0)
            .map(|(_, u, v)| (u, v))
            .collect();
        prop_assert_eq!(h.edge_slice(), &expect[..]);
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
    }

    /// Vertex removal produces a graph whose edges are exactly the
    /// surviving-endpoint edges, relabelled by the returned mapping.
    #[test]
    fn remove_vertices_consistent((n, edges) in raw_edges(48, 150), kill_mod in 2u32..5) {
        let g = CsrGraph::from_pairs(n as usize, &edges);
        let removed: Vec<bool> =
            (0..g.num_vertices() as u32).map(|v| v % kill_mod == 0).collect();
        let (h, map) = g.remove_vertices(&removed);
        for (v, m) in map.iter().enumerate() {
            prop_assert_eq!(m.is_none(), removed[v]);
        }
        let mut expect: Vec<(u32, u32)> = g
            .edge_iter()
            .filter_map(|(_, u, v)| match (map[u as usize], map[v as usize]) {
                (Some(nu), Some(nv)) => Some((nu.min(nv), nu.max(nv))),
                _ => None,
            })
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(h.edge_slice(), &expect[..]);
    }

    /// Weighted canonicalization preserves the multiset of (edge, weight)
    /// pairs up to duplicate resolution.
    #[test]
    fn weighted_edges_survive_canonicalization(
        (n, edges) in raw_edges(32, 100),
        wseed in 0u64..100,
    ) {
        let triples: Vec<(u32, u32, f32)> = edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                (u, v, 1.0 + sg_graph::prng::unit_f64(wseed, i as u64) as f32)
            })
            .collect();
        let g = CsrGraph::from_weighted_pairs(n as usize, &triples);
        for (e, u, v) in g.edge_iter() {
            let w = g.edge_weight(e);
            // The weight must come from SOME input triple on that edge.
            let found = triples.iter().any(|&(a, b, tw)| {
                (a.min(b), a.max(b)) == (u, v) && (tw - w).abs() < 1e-6
            });
            prop_assert!(found, "weight {w} of edge ({u},{v}) not in input");
        }
    }

    /// Generators produce graphs whose edge count never exceeds the request
    /// and whose determinism holds.
    #[test]
    fn er_generator_bounds(n in 10usize..200, m in 1usize..500, seed in 0u64..50) {
        let g = sg_graph::generators::erdos_renyi(n, m, seed);
        prop_assert!(g.num_edges() <= m);
        prop_assert_eq!(g.num_vertices(), n);
        let h = sg_graph::generators::erdos_renyi(n, m, seed);
        prop_assert_eq!(g.edge_slice(), h.edge_slice());
    }
}

#[test]
fn edge_list_canonicalization_is_idempotent() {
    let mut el = EdgeList::from_pairs(5, vec![(0, 1), (1, 0), (2, 2), (3, 4)]);
    el.canonicalize_undirected();
    let once = el.edges.clone();
    el.canonicalize_undirected();
    assert_eq!(el.edges, once);
}
