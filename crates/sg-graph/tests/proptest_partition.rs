//! Property-based tests for the distributed partitioners: exact cover,
//! disjointness, ±1 balance, and ranks > n/m edge cases — the invariants
//! the sharded executors in sg-dist build their ownership model on.

use proptest::prelude::*;
use sg_graph::generators;
use sg_graph::partition::{partition_edges, partition_vertices};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Vertex ranges are contiguous, disjoint, cover `0..n` exactly, and
    /// differ in size by at most one.
    #[test]
    fn vertex_partition_exact_cover_and_balance(n in 0usize..500, ranks in 1usize..40) {
        let parts = partition_vertices(n, ranks);
        prop_assert_eq!(parts.len(), ranks);
        let mut cursor = 0usize;
        for &(lo, hi) in &parts {
            prop_assert_eq!(lo, cursor, "ranges must be contiguous");
            prop_assert!(hi >= lo);
            cursor = hi;
        }
        prop_assert_eq!(cursor, n, "ranges must cover all vertices");
        let sizes: Vec<usize> = parts.iter().map(|&(lo, hi)| hi - lo).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "balance must be within one: {:?}", sizes);
    }

    /// Edge shards are contiguous, disjoint, cover the canonical edge
    /// array exactly, and differ in size by at most one — even when ranks
    /// exceed the edge count (empty shards are fine, lost edges are not).
    #[test]
    fn edge_partition_exact_cover_and_balance(
        n in 2usize..120,
        m in 0usize..400,
        seed in 0u64..50,
        ranks in 1usize..40,
    ) {
        let g = generators::erdos_renyi(n, m, seed);
        let shards = partition_edges(&g, ranks);
        prop_assert_eq!(shards.len(), ranks);
        let mut cursor = 0u32;
        for (rank, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.rank, rank);
            prop_assert_eq!(s.start, cursor, "shards must be contiguous");
            prop_assert!(s.end >= s.start);
            prop_assert_eq!(s.len(), (s.end - s.start) as usize);
            prop_assert_eq!(s.is_empty(), s.end == s.start);
            cursor = s.end;
        }
        prop_assert_eq!(cursor as usize, g.num_edges(), "shards must cover all edges");
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "balance must be within one: {:?}", sizes);
    }

    /// Every edge id lands in exactly one shard's iterator.
    #[test]
    fn edge_ids_visited_exactly_once(
        n in 2usize..80,
        m in 0usize..200,
        ranks in 1usize..16,
    ) {
        let g = generators::erdos_renyi(n, m, 7);
        let shards = partition_edges(&g, ranks);
        let mut seen = vec![0u32; g.num_edges()];
        for s in &shards {
            for e in s.edge_ids() {
                seen[e as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each edge owned exactly once");
    }

    /// More ranks than vertices: trailing ranges are empty but the cover
    /// still holds (the sharded executors rely on empty ranks being inert).
    #[test]
    fn ranks_beyond_n_yield_empty_tail(n in 0usize..10, extra in 1usize..30) {
        let ranks = n + extra;
        let parts = partition_vertices(n, ranks);
        prop_assert_eq!(parts.len(), ranks);
        let nonempty = parts.iter().filter(|&&(lo, hi)| hi > lo).count();
        prop_assert_eq!(nonempty, n, "each nonempty range holds exactly one vertex");
        let total: usize = parts.iter().map(|&(lo, hi)| hi - lo).sum();
        prop_assert_eq!(total, n);
    }
}
