//! The metrics side of sg-obs: named counters, gauges, and fixed-bucket
//! latency histograms behind a [`Registry`].
//!
//! Handles are `Arc`s: callers on hot paths resolve a name once (one
//! mutex acquisition) and keep the handle; every subsequent event is a
//! single relaxed atomic operation. Snapshots are advisory — they read
//! each atomic independently while writers proceed, so a snapshot taken
//! mid-burst may be internally skewed by in-flight events (histogram
//! totals are derived from the bucket reads themselves, so cumulative
//! counts are monotone by construction).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Finite upper bounds (milliseconds) of the default latency histogram
/// buckets; an implicit `+inf` bucket follows. Spanning 50 µs to 10 s
/// covers everything from a cached `ping` to a cold multi-stage pipeline
/// on a large graph.
pub const LATENCY_BUCKETS_MS: [f64; 17] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10000.0,
];

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one (no-op while metrics are disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while metrics are disabled).
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, byte totals, last-op
/// chunk counts).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the value (no-op while metrics are disabled).
    pub fn set(&self, v: i64) {
        if crate::metrics_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (no-op while metrics are disabled).
    pub fn add(&self, delta: i64) {
        if crate::metrics_enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtracts `delta` (no-op while metrics are disabled).
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// Raises the value to at least `v` (running-maximum gauges such as
    /// the pool's `peak_active`).
    pub fn max_of(&self, v: i64) {
        if crate::metrics_enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram. Bucket bounds are chosen at
/// construction and never change, so `observe` is a branch-light scan
/// plus one atomic add — no allocation, no locking.
pub struct Histogram {
    bounds_ms: Vec<f64>,
    /// One slot per finite bound plus the `+inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over the given finite bucket bounds (must be sorted
    /// ascending); an overflow bucket is appended automatically.
    pub fn with_bounds(bounds_ms: &[f64]) -> Histogram {
        debug_assert!(bounds_ms.windows(2).all(|w| w[0] < w[1]), "bounds must be ascending");
        Histogram {
            bounds_ms: bounds_ms.to_vec(),
            buckets: (0..=bounds_ms.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// A histogram over [`LATENCY_BUCKETS_MS`].
    pub fn latency() -> Histogram {
        Histogram::with_bounds(&LATENCY_BUCKETS_MS)
    }

    /// Records one observation in milliseconds (no-op while metrics are
    /// disabled).
    pub fn observe_ms(&self, ms: f64) {
        if !crate::metrics_enabled() {
            return;
        }
        let idx =
            self.bounds_ms.iter().position(|bound| ms <= *bound).unwrap_or(self.bounds_ms.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add((ms.max(0.0) * 1e3) as u64, Ordering::Relaxed);
    }

    /// Records one observed duration.
    pub fn observe(&self, d: Duration) {
        self.observe_ms(d.as_secs_f64() * 1e3);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for bucket in &self.buckets {
            running += bucket.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            name: name.to_string(),
            bounds_ms: self.bounds_ms.clone(),
            cumulative,
            sum_ms: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// A point-in-time read of one histogram, in cumulative (Prometheus
/// `le`) form: `cumulative[i]` counts observations ≤ `bounds_ms[i]`,
/// with the final entry covering `+inf` (== total count). Monotone
/// non-decreasing by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds_ms: Vec<f64>,
    pub cumulative: Vec<u64>,
    pub sum_ms: f64,
}

impl HistogramSnapshot {
    /// Total observations (the `+inf` cumulative entry).
    pub fn count(&self) -> u64 {
        self.cumulative.last().copied().unwrap_or(0)
    }
}

/// A point-in-time read of a whole [`Registry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Merges another snapshot after this one's entries (used to splice
    /// the process-global registry into a daemon's per-instance view).
    /// Names are expected to be disjoint; on collision both entries are
    /// kept, first-registry-first.
    pub fn merged(mut self, other: Snapshot) -> Snapshot {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A namespace of metrics. See the crate docs for the global-vs-owned
/// instance convention.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.lock().gauges.entry(name.to_string()).or_default())
    }

    /// The latency histogram named `name` (default buckets), created on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::latency())),
        )
    }

    /// Reads every metric in the registry.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(n, h)| h.snapshot(n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests here share the process-wide `metrics_enabled` flag with
    /// `disabled_metrics_record_nothing`, so they serialize on one lock.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _hold = flag_lock();
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(Arc::ptr_eq(&c, &reg.counter("c")), "same name, same counter");
        let g = reg.gauge("g");
        g.set(10);
        g.sub(3);
        g.max_of(2); // below current value: no effect
        assert_eq!(g.get(), 7);
        g.max_of(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let _hold = flag_lock();
        let h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        for ms in [0.5, 0.7, 5.0, 50.0, 5000.0] {
            h.observe_ms(ms);
        }
        let snap = h.snapshot("h");
        assert_eq!(snap.cumulative, vec![2, 3, 4, 5]);
        assert_eq!(snap.count(), 5);
        assert!(snap.cumulative.windows(2).all(|w| w[0] <= w[1]));
        assert!((snap.sum_ms - 5056.2).abs() < 0.5);
    }

    #[test]
    fn boundary_observations_land_in_the_le_bucket() {
        let _hold = flag_lock();
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        h.observe_ms(1.0); // le=1 bucket, Prometheus-style
        h.observe_ms(10.0);
        h.observe_ms(10.1); // overflow
        assert_eq!(h.snapshot("h").cumulative, vec![1, 2, 3]);
    }

    #[test]
    fn snapshot_sorted_and_merge_appends() {
        let _hold = flag_lock();
        let a = Registry::new();
        a.counter("b.two").inc();
        a.counter("a.one").add(2);
        a.histogram("lat").observe_ms(3.0);
        let b = Registry::new();
        b.counter("z.three").add(7);
        let snap = a.snapshot().merged(b.snapshot());
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two", "z.three"]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count(), 1);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _hold = flag_lock();
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        crate::set_metrics_enabled(false);
        c.inc();
        h.observe_ms(1.0);
        crate::set_metrics_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
