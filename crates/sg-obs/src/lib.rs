//! # sg-obs — unified observability for the Slim Graph workspace
//!
//! A zero-dependency telemetry substrate shared by every layer of the
//! workspace: the serve front line, the session engine, the stage
//! cache, and the rayon shim's thread pool. Two independent facilities:
//!
//! - **Metrics** ([`Registry`]): named monotonic [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket latency [`Histogram`]s. The hot path is a single
//!   relaxed atomic add; registration (the only locking) happens once
//!   per name. A process-wide default registry is reachable via
//!   [`global()`]; subsystems that need isolation (one daemon per test,
//!   say) instantiate their own [`Registry`].
//! - **Tracing** ([`trace`]): lightweight [`span!`] guards that record
//!   `(name, ts, dur, args)` events into a bounded per-thread ring
//!   buffer, exported as Chrome trace-event JSON
//!   ([`trace::chrome_trace_json`]) loadable in `chrome://tracing` or
//!   Perfetto.
//!
//! ## Observation only — the neutrality contract
//!
//! Telemetry never influences computation: no code may branch on a
//! counter, gauge, histogram, or span, and no timestamp may enter a
//! digest, checksum, or equivalence comparison. Results are bit-identical
//! at any `SG_THREADS` with telemetry enabled or disabled —
//! `tests/obs_equivalence.rs` pins this.
//!
//! ## Overhead
//!
//! Both facilities check one relaxed [`AtomicBool`] first. Metrics
//! default **on** (cost: one `fetch_add` per event — far below the work
//! they measure); tracing defaults **off** (a disabled `span!` is the
//! flag load and nothing else: no clock read, no allocation). Disable
//! everything with [`set_metrics_enabled`]`(false)` for a zero-telemetry
//! run.
//!
//! ```
//! let reg = sg_obs::Registry::new();
//! let served = reg.counter("serve.requests");
//! served.inc();
//! let lat = reg.histogram("serve.service_ms");
//! lat.observe_ms(1.25);
//! assert_eq!(reg.snapshot().counters, vec![("serve.requests".to_string(), 1)]);
//!
//! sg_obs::trace::set_trace_enabled(true);
//! {
//!     let mut sp = sg_obs::span!("stage", scheme = "spanner");
//!     let _ = &mut sp; // ... the traced work ...
//! }
//! sg_obs::trace::set_trace_enabled(false);
//! assert!(sg_obs::trace::chrome_trace_json().contains("\"traceEvents\""));
//! ```

pub mod alloc;
pub mod registry;
pub mod trace;

pub use alloc::{AllocStats, TrackingAlloc};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::{Span, TraceIdGuard};

/// Gauge mirroring [`trace::dropped_events`] in the global registry
/// (pre-registered so every snapshot carries it, zero or not).
pub const TRACE_DROPPED_GAUGE: &str = "trace.dropped_events";

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables metric recording. Counters, gauges, and
/// histograms become no-ops when disabled; already-accumulated values
/// remain readable. Tracing has its own switch
/// ([`trace::set_trace_enabled`]).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled (default: true).
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide default registry. Library layers without a natural
/// owner (sessions, the stage cache, the rayon shim) record here; the
/// serve daemon additionally keeps a per-instance [`Registry`] so
/// concurrent daemons in one process don't blend their request metrics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = Registry::new();
        // Pre-register the observability self-metrics so they appear in
        // every snapshot even before the first event.
        let _ = reg.gauge(TRACE_DROPPED_GAUGE);
        reg
    })
}

/// [`global`]'s snapshot plus point-in-time gauges whose sources live
/// outside the registry: the trace ring's authoritative drop counter
/// (correct even while metrics are disabled) and — when allocation
/// profiling is on — the tracking allocator's `alloc.*` gauges. This is
/// what the serve `metrics` op and the CLI's `--metrics-out` export.
pub fn global_snapshot() -> Snapshot {
    let mut snap = global().snapshot();
    upsert_gauge(&mut snap, TRACE_DROPPED_GAUGE, trace::dropped_events() as i64);
    if alloc::profiling_enabled() {
        let a = alloc::stats();
        upsert_gauge(&mut snap, "alloc.allocated_bytes", a.allocated_bytes as i64);
        upsert_gauge(&mut snap, "alloc.allocs", a.allocs as i64);
        upsert_gauge(&mut snap, "alloc.live_bytes", a.live_bytes as i64);
        upsert_gauge(&mut snap, "alloc.peak_bytes", a.peak_bytes as i64);
    }
    snap
}

/// Sets `name` in the snapshot's (name-sorted) gauge list, inserting in
/// order when absent.
fn upsert_gauge(snap: &mut Snapshot, name: &str, value: i64) {
    match snap.gauges.iter_mut().find(|(n, _)| n == name) {
        Some((_, slot)) => *slot = value,
        None => {
            let at = snap.gauges.partition_point(|(n, _)| n.as_str() < name);
            snap.gauges.insert(at, (name.to_string(), value));
        }
    }
}
