//! # sg-obs — unified observability for the Slim Graph workspace
//!
//! A zero-dependency telemetry substrate shared by every layer of the
//! workspace: the serve front line, the session engine, the stage
//! cache, and the rayon shim's thread pool. Two independent facilities:
//!
//! - **Metrics** ([`Registry`]): named monotonic [`Counter`]s, [`Gauge`]s,
//!   and fixed-bucket latency [`Histogram`]s. The hot path is a single
//!   relaxed atomic add; registration (the only locking) happens once
//!   per name. A process-wide default registry is reachable via
//!   [`global()`]; subsystems that need isolation (one daemon per test,
//!   say) instantiate their own [`Registry`].
//! - **Tracing** ([`trace`]): lightweight [`span!`] guards that record
//!   `(name, ts, dur, args)` events into a bounded per-thread ring
//!   buffer, exported as Chrome trace-event JSON
//!   ([`trace::chrome_trace_json`]) loadable in `chrome://tracing` or
//!   Perfetto.
//!
//! ## Observation only — the neutrality contract
//!
//! Telemetry never influences computation: no code may branch on a
//! counter, gauge, histogram, or span, and no timestamp may enter a
//! digest, checksum, or equivalence comparison. Results are bit-identical
//! at any `SG_THREADS` with telemetry enabled or disabled —
//! `tests/obs_equivalence.rs` pins this.
//!
//! ## Overhead
//!
//! Both facilities check one relaxed [`AtomicBool`] first. Metrics
//! default **on** (cost: one `fetch_add` per event — far below the work
//! they measure); tracing defaults **off** (a disabled `span!` is the
//! flag load and nothing else: no clock read, no allocation). Disable
//! everything with [`set_metrics_enabled`]`(false)` for a zero-telemetry
//! run.
//!
//! ```
//! let reg = sg_obs::Registry::new();
//! let served = reg.counter("serve.requests");
//! served.inc();
//! let lat = reg.histogram("serve.service_ms");
//! lat.observe_ms(1.25);
//! assert_eq!(reg.snapshot().counters, vec![("serve.requests".to_string(), 1)]);
//!
//! sg_obs::trace::set_trace_enabled(true);
//! {
//!     let mut sp = sg_obs::span!("stage", scheme = "spanner");
//!     let _ = &mut sp; // ... the traced work ...
//! }
//! sg_obs::trace::set_trace_enabled(false);
//! assert!(sg_obs::trace::chrome_trace_json().contains("\"traceEvents\""));
//! ```

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables metric recording. Counters, gauges, and
/// histograms become no-ops when disabled; already-accumulated values
/// remain readable. Tracing has its own switch
/// ([`trace::set_trace_enabled`]).
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled (default: true).
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// The process-wide default registry. Library layers without a natural
/// owner (sessions, the stage cache, the rayon shim) record here; the
/// serve daemon additionally keeps a per-instance [`Registry`] so
/// concurrent daemons in one process don't blend their request metrics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
