//! The tracing side of sg-obs: [`span`] guards recording into bounded
//! per-thread ring buffers, exported as Chrome trace-event JSON.
//!
//! Tracing is **off by default**. While off, creating a span costs one
//! relaxed atomic load — no clock read, no allocation, no locking — so
//! instrumentation can stay in place permanently. While on, each
//! completed span becomes one `ph:"X"` (complete) event with
//! microsecond `ts`/`dur` relative to the moment tracing was first
//! enabled; the export ([`chrome_trace_json`]) loads directly in
//! `chrome://tracing` and Perfetto.
//!
//! Each thread owns a ring of at most [`RING_CAPACITY`] events; when
//! full, the **oldest** events are overwritten (recent activity is what
//! trace consumers want) and [`dropped_events`] counts the loss, so a
//! runaway span source can never exhaust memory.
//!
//! ## Request correlation
//!
//! A thread-local **trace id** ([`set_trace_id`]) correlates every span
//! a request produces: while the returned guard is alive, each recorded
//! span on that thread is tagged `trace=<id>` automatically, so
//! `serve.request`, `session.run`, and `session.stage` events for one
//! request share an id one grep can find. Installing the context costs a
//! thread-local swap whether or not tracing is on (the id also feeds the
//! serve slowlog, which works with tracing off).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum buffered events per thread before the oldest are dropped.
pub const RING_CAPACITY: usize = 16_384;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The instant `ts` values are measured from (pinned the first time
/// tracing is enabled, so all threads share one timeline).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns span recording on or off process-wide. Already-buffered events
/// are kept (export after disabling is the normal `--trace-out` flow).
pub fn set_trace_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded (default: false).
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Events lost to ring-buffer overwrite since the last [`reset`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One completed span, already resolved to trace-relative microseconds.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    pub ts_us: u64,
    pub dur_us: u64,
    pub args: Vec<(String, String)>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
}

type SharedRing = Arc<Mutex<Ring>>;

/// Every thread's ring, registered on that thread's first recorded
/// span. Rings outlive their threads so short-lived workers still
/// contribute to the export.
fn rings() -> &'static Mutex<Vec<(u64, String, SharedRing)>> {
    static RINGS: OnceLock<Mutex<Vec<(u64, String, SharedRing)>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<SharedRing>> = const { RefCell::new(None) };
    static TRACE_ID: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Restores the previously active trace id (if any) when dropped, so
/// nested request contexts unwind correctly.
pub struct TraceIdGuard {
    prev: Option<Arc<str>>,
}

impl Drop for TraceIdGuard {
    fn drop(&mut self) {
        TRACE_ID.with(|cell| *cell.borrow_mut() = self.prev.take());
    }
}

/// Installs `id` as the current thread's trace id for the lifetime of
/// the returned guard. Every span recorded on this thread while the
/// guard lives carries a `trace=<id>` annotation. The session engine
/// creates its `session.run` / `session.stage` spans on the calling
/// thread, so a guard installed around request dispatch correlates all
/// three span levels.
pub fn set_trace_id(id: &str) -> TraceIdGuard {
    let prev = TRACE_ID.with(|cell| cell.borrow_mut().replace(Arc::from(id)));
    TraceIdGuard { prev }
}

/// The trace id currently installed on this thread, if any.
pub fn current_trace_id() -> Option<Arc<str>> {
    TRACE_ID.with(|cell| cell.borrow().clone())
}

/// The gauge mirror of [`dropped_events`] in the global registry, so
/// ring overflow is visible to the `metrics` op, not just the Chrome
/// trace footer. Resolved once; updated on each overflow.
fn dropped_gauge() -> &'static Arc<crate::Gauge> {
    static GAUGE: OnceLock<Arc<crate::Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| crate::global().gauge(crate::TRACE_DROPPED_GAUGE))
}

fn record(event: TraceEvent) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let ring: SharedRing =
                Arc::new(Mutex::new(Ring { events: VecDeque::with_capacity(64) }));
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current().name().unwrap_or("thread").to_string();
            rings().lock().unwrap_or_else(|e| e.into_inner()).push((tid, name, Arc::clone(&ring)));
            ring
        });
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() >= RING_CAPACITY {
            ring.events.pop_front();
            let dropped = DROPPED.fetch_add(1, Ordering::Relaxed) + 1;
            dropped_gauge().set(dropped as i64);
        }
        ring.events.push_back(event);
    });
}

/// A RAII span guard: created by [`span`]/[`span!`], records one
/// complete event on drop. When tracing is disabled the guard is inert.
pub struct Span {
    start: Option<Instant>,
    name: String,
    args: Vec<(String, String)>,
}

impl Span {
    /// Whether this guard will record on drop (lets callers skip
    /// building argument strings for inert spans).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Attaches a `key=value` annotation (shown under "args" in the
    /// trace viewer). No-op on an inert span.
    pub fn arg(&mut self, key: &str, value: impl Into<String>) {
        if self.start.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        let ts_us = start.duration_since(epoch()).as_micros() as u64;
        record(TraceEvent {
            name: std::mem::take(&mut self.name),
            ts_us,
            dur_us,
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a span named `name`. Prefer the [`span!`] macro, which also
/// takes `key = value` annotations.
pub fn span(name: &str) -> Span {
    if !trace_enabled() {
        return Span { start: None, name: String::new(), args: Vec::new() };
    }
    let mut args = Vec::new();
    if let Some(id) = current_trace_id() {
        args.push(("trace".to_string(), id.to_string()));
    }
    Span { start: Some(Instant::now()), name: name.to_string(), args }
}

/// Opens a [`Span`] guard: `span!("serve.request")` or
/// `span!("session.stage", scheme = name, index = i)`. Argument values
/// are only formatted when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut sp = $crate::trace::span($name);
        if sp.is_recording() {
            $(sp.arg(stringify!($key), format!("{}", $value));)+
        }
        sp
    }};
}

/// Clears all buffered events and the drop counter (test isolation and
/// multi-run tools).
pub fn reset() {
    DROPPED.store(0, Ordering::Relaxed);
    dropped_gauge().set(0);
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    for (_, _, ring) in rings.iter() {
        ring.lock().unwrap_or_else(|e| e.into_inner()).events.clear();
    }
}

/// A consistent-enough copy of every thread's buffered events (each
/// ring is locked only long enough to clone it).
pub fn collect() -> Vec<(u64, String, Vec<TraceEvent>)> {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    rings
        .iter()
        .map(|(tid, name, ring)| {
            let events =
                ring.lock().unwrap_or_else(|e| e.into_inner()).events.iter().cloned().collect();
            (*tid, name.clone(), events)
        })
        .collect()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders every buffered span as Chrome trace-event JSON (the
/// "JSON object format": a `traceEvents` array of `ph:"X"` complete
/// events plus `ph:"M"` thread-name metadata), loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace_json() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n ");
    };
    for (tid, thread_name, events) in collect() {
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        escape_into(&mut out, &thread_name);
        out.push_str("\"}}");
        for ev in events {
            emit(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"",
                ev.ts_us, ev.dur_us
            );
            escape_into(&mut out, &ev.name);
            out.push_str("\",\"cat\":\"sg\",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":\"");
                escape_into(&mut out, v);
                out.push('"');
            }
            out.push_str("}}");
        }
    }
    let _ = write!(out, "\n],\"otherData\":{{\"dropped_events\":{}}}}}", dropped_events());
    out
}

/// Writes [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace buffers and enable flag are process-global; serialize.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _hold = trace_lock();
        reset();
        set_trace_enabled(false);
        {
            let mut sp = crate::span!("quiet", detail = "never formatted");
            assert!(!sp.is_recording());
            sp.arg("k", "v");
        }
        assert!(collect().iter().all(|(_, _, events)| events.is_empty()));
    }

    #[test]
    fn spans_nest_and_export_as_chrome_trace() {
        let _hold = trace_lock();
        reset();
        set_trace_enabled(true);
        {
            let _outer = crate::span!("outer", op = "compress");
            let _inner = crate::span!("inner");
        }
        set_trace_enabled(false);
        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .flat_map(|(_, _, events)| events)
            .filter(|e| e.name == "outer" || e.name == "inner")
            .collect();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        // Drop order: inner completes first, and nests within outer.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert_eq!(outer.args, vec![("op".to_string(), "compress".to_string())]);
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"outer\""));
        reset();
    }

    #[test]
    fn ring_is_bounded() {
        let _hold = trace_lock();
        reset();
        set_trace_enabled(true);
        for i in 0..(RING_CAPACITY + 10) {
            let _sp = crate::span!("tick", i = i);
        }
        set_trace_enabled(false);
        let mine: usize = collect()
            .into_iter()
            .map(|(_, _, events)| events.iter().filter(|e| e.name == "tick").count())
            .sum();
        assert!(mine <= RING_CAPACITY);
        assert!(dropped_events() >= 10);
        reset();
    }

    #[test]
    fn trace_id_tags_spans_and_unwinds() {
        let _hold = trace_lock();
        reset();
        set_trace_enabled(true);
        {
            let _outer_ctx = set_trace_id("req-1");
            let _a = crate::span!("tagged.a");
            {
                let _inner_ctx = set_trace_id("req-2");
                let _b = crate::span!("tagged.b");
            }
            // Inner guard dropped: outer id is restored.
            assert_eq!(current_trace_id().as_deref(), Some("req-1"));
            let _c = crate::span!("tagged.c");
        }
        assert!(current_trace_id().is_none(), "guard cleared the context");
        set_trace_enabled(false);
        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .flat_map(|(_, _, events)| events)
            .filter(|e| e.name.starts_with("tagged."))
            .collect();
        let id_of = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name)
                .and_then(|e| e.args.iter().find(|(k, _)| k == "trace"))
                .map(|(_, v)| v.clone())
        };
        assert_eq!(id_of("tagged.a").as_deref(), Some("req-1"));
        assert_eq!(id_of("tagged.b").as_deref(), Some("req-2"));
        assert_eq!(id_of("tagged.c").as_deref(), Some("req-1"));
        reset();
    }

    #[test]
    fn dropped_events_mirror_into_the_global_gauge() {
        let _hold = trace_lock();
        reset();
        set_trace_enabled(true);
        for i in 0..(RING_CAPACITY + 5) {
            let _sp = crate::span!("drop.tick", i = i);
        }
        set_trace_enabled(false);
        let dropped = dropped_events();
        assert!(dropped >= 5);
        let snap = crate::global_snapshot();
        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _)| n == crate::TRACE_DROPPED_GAUGE)
            .map(|(_, v)| *v)
            .expect("gauge registered");
        assert!(gauge >= dropped as i64);
        reset();
        assert_eq!(dropped_gauge().get(), 0);
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
