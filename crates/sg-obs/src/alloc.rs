//! Opt-in allocation profiling: a `#[global_allocator]` wrapper around
//! the system allocator that counts bytes and allocations with relaxed
//! atomics.
//!
//! Binaries (and the umbrella test crate) opt in at link time:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sg_obs::alloc::TrackingAlloc = sg_obs::alloc::TrackingAlloc;
//! ```
//!
//! Counting is additionally gated at **runtime** by [`set_profiling`]
//! (default off): while off, every allocator call pays one relaxed
//! atomic load on top of the system allocator and records nothing, so
//! the wrapper can ship installed everywhere. While on, each alloc/free
//! updates cumulative byte and call counters plus a running
//! live-bytes/peak-bytes estimate — enough to attach per-stage
//! allocation deltas to `session.stage` spans and expose `alloc.*`
//! gauges through [`crate::global_snapshot`].
//!
//! The profile is observation-only (the neutrality contract): results
//! are bit-identical with profiling on or off, pinned by
//! `tests/obs_deep.rs`. Counters are process-wide, so deltas taken
//! around a region on one thread include whatever other threads
//! allocated meanwhile — treat per-span deltas as attribution under low
//! concurrency, not an exact accounting.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static PROFILING: AtomicBool = AtomicBool::new(false);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static FREE_CALLS: AtomicU64 = AtomicU64::new(0);

/// Turns allocation counting on or off process-wide. Counters keep
/// their values across off/on transitions; use [`reset`] to zero them.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently enabled (default: false).
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Zeroes every counter. Call while the process is quiescent (between
/// benchmark runs, at test start); concurrent frees of memory allocated
/// before the reset can make `freed_bytes` exceed `allocated_bytes`,
/// which [`stats`] clamps rather than underflows.
pub fn reset() {
    ALLOCATED_BYTES.store(0, Ordering::Relaxed);
    FREED_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    ALLOC_CALLS.store(0, Ordering::Relaxed);
    FREE_CALLS.store(0, Ordering::Relaxed);
}

/// A point-in-time read of the allocation counters. `live_bytes` is
/// derived (`allocated - freed`, clamped at zero) and `peak_bytes` is
/// the running maximum of that estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    pub allocated_bytes: u64,
    pub freed_bytes: u64,
    pub live_bytes: u64,
    pub peak_bytes: u64,
    pub allocs: u64,
    pub frees: u64,
}

/// Reads the current counters (meaningful only in a binary that
/// installed [`TrackingAlloc`] and enabled [`set_profiling`]).
pub fn stats() -> AllocStats {
    let allocated = ALLOCATED_BYTES.load(Ordering::Relaxed);
    let freed = FREED_BYTES.load(Ordering::Relaxed);
    AllocStats {
        allocated_bytes: allocated,
        freed_bytes: freed,
        live_bytes: allocated.saturating_sub(freed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        allocs: ALLOC_CALLS.load(Ordering::Relaxed),
        frees: FREE_CALLS.load(Ordering::Relaxed),
    }
}

fn note_alloc(size: usize) {
    let allocated = ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = allocated.saturating_sub(FREED_BYTES.load(Ordering::Relaxed));
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_free(size: usize) {
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    FREE_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// The tracking wrapper itself: forwards every call to [`System`] and,
/// when profiling is on, records it. Never allocates and never branches
/// on anything but the profiling flag, so it is safe as a global
/// allocator.
pub struct TrackingAlloc;

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && PROFILING.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && PROFILING.load(Ordering::Relaxed) {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if PROFILING.load(Ordering::Relaxed) {
            note_free(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && PROFILING.load(Ordering::Relaxed) {
            note_free(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The counters and the profiling flag are process-global;
    /// serialize the tests that touch them.
    fn alloc_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drives the allocator through the `GlobalAlloc` trait directly, so
    /// the test is deterministic whether or not the test binary installed
    /// it as the global allocator.
    fn round_trip(bytes: usize) {
        let layout = Layout::from_size_align(bytes, 8).expect("layout");
        unsafe {
            let ptr = TrackingAlloc.alloc(layout);
            assert!(!ptr.is_null());
            TrackingAlloc.dealloc(ptr, layout);
        }
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _hold = alloc_lock();
        set_profiling(false);
        reset();
        round_trip(256);
        assert_eq!(stats(), AllocStats::default());
    }

    #[test]
    fn counters_track_bytes_live_and_peak() {
        let _hold = alloc_lock();
        set_profiling(true);
        reset();
        round_trip(1024);
        set_profiling(false);
        let s = stats();
        assert!(s.allocated_bytes >= 1024);
        assert!(s.freed_bytes >= 1024);
        assert!(s.peak_bytes >= 1024);
        assert!(s.allocs >= 1);
        assert!(s.frees >= 1);
        assert_eq!(s.live_bytes, s.allocated_bytes - s.freed_bytes);
        reset();
        assert_eq!(stats(), AllocStats::default());
    }

    #[test]
    fn realloc_moves_bytes_between_counters() {
        let _hold = alloc_lock();
        set_profiling(true);
        reset();
        let layout = Layout::from_size_align(100, 8).expect("layout");
        unsafe {
            let ptr = TrackingAlloc.alloc(layout);
            assert!(!ptr.is_null());
            let grown = TrackingAlloc.realloc(ptr, layout, 300);
            assert!(!grown.is_null());
            TrackingAlloc.dealloc(grown, Layout::from_size_align(300, 8).expect("layout"));
        }
        set_profiling(false);
        let s = stats();
        assert!(s.allocated_bytes >= 400, "100 + 300 allocated: {s:?}");
        assert!(s.freed_bytes >= 400, "100 (realloc) + 300 (dealloc) freed: {s:?}");
        reset();
    }
}
