//! # sg-core — the Slim Graph programming model and execution engine
//!
//! This crate implements the paper's three core elements:
//!
//! 1. **Programming model** ([`kernel`], [`context`]): developers express
//!    lossy compression as small *compression kernels* whose scope is an
//!    edge, a vertex, a triangle, or an arbitrary subgraph. Kernels access
//!    local graph structure through their argument views and global state
//!    (sampling parameters, atomic deletion, `considered` flags) through the
//!    [`context::SgContext`] container — the paper's `SG` object.
//! 2. **Execution engine** ([`engine`]): kernels are executed in parallel by
//!    the engine, which then *materializes* the compressed graph. The
//!    subgraph path additionally builds vertex→subgraph [`mapping`]s (the
//!    paper's §4.5.2), for which [`ldd`] provides the low-diameter
//!    decomposition used by spanners.
//! 3. **Compression schemes** ([`schemes`]): the paper's scheme zoo — random
//!    uniform sampling, spectral sparsification (both Υ variants), the
//!    Triangle Reduction family (p-x, Edge-Once, Count-Triangles,
//!    max-weight, collapse), low-degree vertex removal, O(k)-spanners, and
//!    SWeG-style lossy ϵ-summarization with corrections.
//!
//! The scheme layer is *open*: [`scheme::CompressionScheme`] is an
//! object-safe trait, [`scheme::SchemeRegistry`] resolves schemes by name,
//! and [`pipeline::Pipeline`] chains them into multi-stage compression
//! runs — the paper's kernel-combining model.
//!
//! On top of the one-shot [`Pipeline::apply`] path sits the **session
//! execution API** — the programming model of the serving layer:
//!
//! * [`catalog::GraphCatalog`] — named, ref-counted graph handles, loaded
//!   at most once (heap, `.sgr` mmap via `sg-store`, or inserted from
//!   memory);
//! * [`session::SgSession`] — executes [`spec::PipelineSpec`]s
//!   stage-by-stage against a handle, exposing every stage's intermediate
//!   graph;
//! * [`cache::StageCache`] — content-addressed on
//!   `(graph id, chain-prefix hash, seed)`, so requests sharing a chain
//!   prefix recompute only the divergent suffix, bit-identically to a
//!   cold run.

pub mod atomic_bitset;
pub mod cache;
pub mod catalog;
pub mod context;
pub mod engine;
pub mod kernel;
pub mod ldd;
pub mod mapping;
pub mod pipeline;
pub mod scheme;
pub mod schemes;
pub mod session;
pub mod spec;

pub use cache::{CacheStats, StageCache, StageKey};
pub use catalog::{graph_approx_bytes, GraphCatalog, GraphFormat, GraphHandle, GraphId};
pub use context::{DetRand, GraphRef, SgContext};
pub use engine::{CompressionResult, Engine};
pub use pipeline::{run_stage, Pipeline, PipelineResult, StageReport};
pub use scheme::{CompressionScheme, DistPlan, SchemeParams, SchemeRegistry};
pub use session::{SessionRun, SgSession, StageOutcome};
pub use spec::{PipelineSpec, StageSpec};
