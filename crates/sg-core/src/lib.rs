//! # sg-core — the Slim Graph programming model and execution engine
//!
//! This crate implements the paper's three core elements:
//!
//! 1. **Programming model** ([`kernel`], [`context`]): developers express
//!    lossy compression as small *compression kernels* whose scope is an
//!    edge, a vertex, a triangle, or an arbitrary subgraph. Kernels access
//!    local graph structure through their argument views and global state
//!    (sampling parameters, atomic deletion, `considered` flags) through the
//!    [`context::SgContext`] container — the paper's `SG` object.
//! 2. **Execution engine** ([`engine`]): kernels are executed in parallel by
//!    the engine, which then *materializes* the compressed graph. The
//!    subgraph path additionally builds vertex→subgraph [`mapping`]s (the
//!    paper's §4.5.2), for which [`ldd`] provides the low-diameter
//!    decomposition used by spanners.
//! 3. **Compression schemes** ([`schemes`]): the paper's scheme zoo — random
//!    uniform sampling, spectral sparsification (both Υ variants), the
//!    Triangle Reduction family (p-x, Edge-Once, Count-Triangles,
//!    max-weight, collapse), low-degree vertex removal, O(k)-spanners, and
//!    SWeG-style lossy ϵ-summarization with corrections.
//!
//! The scheme layer is *open*: [`scheme::CompressionScheme`] is an
//! object-safe trait, [`scheme::SchemeRegistry`] resolves schemes by name,
//! and [`pipeline::Pipeline`] chains them into multi-stage compression
//! runs — the paper's kernel-combining model.

pub mod atomic_bitset;
pub mod context;
pub mod engine;
pub mod kernel;
pub mod ldd;
pub mod mapping;
pub mod pipeline;
pub mod scheme;
pub mod schemes;
pub mod spec;

pub use context::SgContext;
pub use engine::{CompressionResult, Engine};
pub use pipeline::{Pipeline, PipelineResult, StageReport};
pub use scheme::{CompressionScheme, SchemeParams, SchemeRegistry};
pub use spec::{PipelineSpec, StageSpec};
