//! The `SG` container: shared state visible to every kernel instance.
//!
//! In the paper (§4.1), `SG` is the global object kernels use to delete
//! graph elements (`SG.del`), draw randomness (`SG.rand`), and read scheme
//! parameters. Here [`SgContext`] carries the input graph, the atomic
//! deletion/consideration bitsets, and a deterministic per-element RNG:
//! the random decision for element `x` depends only on `(seed, x)`, so
//! parallel runs are bit-identical to sequential ones.

use crate::atomic_bitset::AtomicBitset;
use sg_graph::prng;
use sg_graph::{CsrGraph, EdgeId, EncodedCsr, GraphView, NeighborCursor, VertexId, Weight};

/// The input graph of one compression run: raw CSR or encoded adjacency.
///
/// Kernels with a purely local view (edge kernels reading `e.weight`,
/// degrees, cursors) work against either variant through the [`GraphView`]
/// impl; kernels that need raw slices or edge-id lookups (subgraph
/// kernels walking `neighbor_edge_ids`) call [`GraphRef::csr`], which is
/// only available on the raw variant — the engine never hands an encoded
/// context to those kernel classes.
#[derive(Clone, Copy)]
pub enum GraphRef<'g> {
    /// Raw CSR storage (the default engine path).
    Csr(&'g CsrGraph),
    /// Delta+varint / bitmap encoded storage (decode-on-the-fly path).
    Encoded(&'g EncodedCsr),
}

impl<'g> GraphRef<'g> {
    /// The raw CSR graph. Panics on the encoded variant: kernel classes
    /// that need slot edge ids (triangle, subgraph) always run over raw
    /// CSR, so reaching this panic means an engine wiring bug, not a
    /// kernel bug.
    #[inline]
    pub fn csr(&self) -> &'g CsrGraph {
        match self {
            GraphRef::Csr(g) => g,
            GraphRef::Encoded(_) => {
                panic!("kernel requires raw CSR access but the run is over an encoded graph")
            }
        }
    }
}

impl GraphView for GraphRef<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        match self {
            GraphRef::Csr(g) => g.num_vertices(),
            GraphRef::Encoded(g) => g.num_vertices(),
        }
    }

    #[inline]
    fn num_edges(&self) -> usize {
        match self {
            GraphRef::Csr(g) => g.num_edges(),
            GraphRef::Encoded(g) => g.num_edges(),
        }
    }

    #[inline]
    fn is_directed(&self) -> bool {
        match self {
            GraphRef::Csr(g) => g.is_directed(),
            GraphRef::Encoded(g) => g.is_directed(),
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        match self {
            GraphRef::Csr(g) => g.degree(v),
            GraphRef::Encoded(g) => g.degree(v),
        }
    }

    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        match self {
            GraphRef::Csr(g) => g.in_degree(v),
            GraphRef::Encoded(g) => g.in_degree(v),
        }
    }

    #[inline]
    fn cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        match self {
            GraphRef::Csr(g) => GraphView::cursor(*g, v),
            GraphRef::Encoded(g) => g.cursor(v),
        }
    }

    #[inline]
    fn in_cursor(&self, v: VertexId) -> NeighborCursor<'_> {
        match self {
            GraphRef::Csr(g) => GraphView::in_cursor(*g, v),
            GraphRef::Encoded(g) => g.in_cursor(v),
        }
    }

    #[inline]
    fn edge_weight(&self, e: EdgeId) -> Weight {
        match self {
            GraphRef::Csr(g) => g.edge_weight(e),
            GraphRef::Encoded(g) => g.edge_weight(e),
        }
    }
}

/// The deterministic per-element random source behind `SG.rand`.
///
/// Factored out of [`SgContext`] so distributed executors (sg-dist's
/// sharded ranks) can draw the *exact same* per-element values without
/// materializing a full context: the decision for element `x` depends only
/// on `(seed, stream, x)`, never on who asks or in what order.
#[derive(Clone, Copy, Debug)]
pub struct DetRand {
    /// Global seed shared by every draw.
    pub seed: u64,
}

impl DetRand {
    /// A deterministic random source for `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Deterministic uniform draw in `[0, 1)` for element `element` under
    /// stream `stream`.
    #[inline]
    pub fn unit(&self, element: u64, stream: u64) -> f64 {
        prng::unit_f64(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15), element)
    }

    /// Deterministic uniform integer in `[0, bound)` for `element`.
    #[inline]
    pub fn below(&self, element: u64, stream: u64, bound: u64) -> u64 {
        prng::bounded_u64(self.seed, element, stream, bound)
    }
}

/// Shared kernel-visible state for one compression run.
pub struct SgContext<'g> {
    /// The input graph (kernels have read-only structural access).
    pub graph: GraphRef<'g>,
    /// Global seed for deterministic per-element randomness.
    pub seed: u64,
    deleted_edges: AtomicBitset,
    deleted_vertices: AtomicBitset,
    /// Edge-Once `considered` flags (paper's `e.considered`).
    considered_edges: AtomicBitset,
}

impl<'g> SgContext<'g> {
    /// Creates a context for a raw CSR `graph` with deterministic seed
    /// `seed`.
    pub fn new(graph: &'g CsrGraph, seed: u64) -> Self {
        Self::with_ref(GraphRef::Csr(graph), seed)
    }

    /// Creates a context for an encoded `graph` (the decode-on-the-fly
    /// edge-kernel path) with deterministic seed `seed`.
    pub fn new_encoded(graph: &'g EncodedCsr, seed: u64) -> Self {
        Self::with_ref(GraphRef::Encoded(graph), seed)
    }

    fn with_ref(graph: GraphRef<'g>, seed: u64) -> Self {
        Self {
            graph,
            seed,
            deleted_edges: AtomicBitset::new(graph.num_edges()),
            deleted_vertices: AtomicBitset::new(graph.num_vertices()),
            considered_edges: AtomicBitset::new(graph.num_edges()),
        }
    }

    /// `SG.del(e)` — atomically marks edge `e` deleted. Returns true if this
    /// call performed the deletion (false if already deleted).
    #[inline]
    pub fn del_edge(&self, e: EdgeId) -> bool {
        !self.deleted_edges.set(e as usize)
    }

    /// `SG.del(v)` — atomically marks vertex `v` deleted.
    #[inline]
    pub fn del_vertex(&self, v: VertexId) -> bool {
        !self.deleted_vertices.set(v as usize)
    }

    /// True when edge `e` is currently marked deleted.
    #[inline]
    pub fn edge_deleted(&self, e: EdgeId) -> bool {
        self.deleted_edges.get(e as usize)
    }

    /// True when vertex `v` is currently marked deleted.
    #[inline]
    pub fn vertex_deleted(&self, v: VertexId) -> bool {
        self.deleted_vertices.get(v as usize)
    }

    /// Atomically marks edge `e` considered (Edge-Once discipline); returns
    /// true when this kernel instance is the *first* to consider it.
    #[inline]
    pub fn consider_edge_once(&self, e: EdgeId) -> bool {
        !self.considered_edges.set(e as usize)
    }

    /// True when edge `e` was already considered.
    #[inline]
    pub fn edge_considered(&self, e: EdgeId) -> bool {
        self.considered_edges.get(e as usize)
    }

    /// The context's random source as a standalone value (shared with the
    /// sharded executors in sg-dist).
    #[inline]
    pub fn rand(&self) -> DetRand {
        DetRand::new(self.seed)
    }

    /// `SG.rand(0,1)` — deterministic uniform draw for element `element`
    /// under stream `stream` (so one element can draw several independent
    /// values).
    #[inline]
    pub fn rand_unit(&self, element: u64, stream: u64) -> f64 {
        self.rand().unit(element, stream)
    }

    /// Deterministic uniform integer in `[0, bound)` for `element`.
    #[inline]
    pub fn rand_below(&self, element: u64, stream: u64, bound: u64) -> u64 {
        self.rand().below(element, stream, bound)
    }

    /// Number of edges currently marked deleted.
    pub fn deleted_edge_count(&self) -> usize {
        self.deleted_edges.count_ones()
    }

    /// Number of vertices currently marked deleted.
    pub fn deleted_vertex_count(&self) -> usize {
        self.deleted_vertices.count_ones()
    }

    /// Snapshot of vertex deletion marks (for materialization).
    pub fn deleted_vertices_vec(&self) -> Vec<bool> {
        self.deleted_vertices.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn deletion_marks_are_idempotent() {
        let g = generators::cycle(5);
        let sg = SgContext::new(&g, 1);
        assert!(sg.del_edge(0));
        assert!(!sg.del_edge(0));
        assert!(sg.edge_deleted(0));
        assert_eq!(sg.deleted_edge_count(), 1);
    }

    #[test]
    fn consider_once_claims_exactly_once() {
        let g = generators::cycle(5);
        let sg = SgContext::new(&g, 1);
        assert!(sg.consider_edge_once(3));
        assert!(!sg.consider_edge_once(3));
        assert!(sg.edge_considered(3));
        assert!(!sg.edge_considered(2));
    }

    #[test]
    fn rand_is_deterministic_per_element() {
        let g = generators::cycle(5);
        let a = SgContext::new(&g, 77);
        let b = SgContext::new(&g, 77);
        for e in 0..100 {
            assert_eq!(a.rand_unit(e, 0), b.rand_unit(e, 0));
        }
        let c = SgContext::new(&g, 78);
        let diff = (0..100).filter(|&e| a.rand_unit(e, 0) != c.rand_unit(e, 0)).count();
        assert!(diff > 90);
    }

    #[test]
    fn vertex_deletion() {
        let g = generators::star(6);
        let sg = SgContext::new(&g, 2);
        sg.del_vertex(3);
        assert!(sg.vertex_deleted(3));
        assert_eq!(sg.deleted_vertices_vec(), vec![false, false, false, true, false, false]);
    }
}
