//! The Slim Graph execution engine (§3.2).
//!
//! Stage 1 of the paper's two-stage pipeline: compression kernels execute in
//! parallel over their elements (edges, vertices, triangles, or subgraphs),
//! recording deletions in the [`SgContext`] bitsets; the engine then
//! *materializes* a compacted CSR graph. Stage 2 — running graph algorithms
//! over the compressed graph — is `sg-algos`, invoked by the harness.

use crate::context::SgContext;
use crate::kernel::{
    EdgeDecision, EdgeKernel, EdgeView, SubgraphKernel, SubgraphView, TriangleKernel,
    VertexDecision, VertexKernel, VertexView,
};
use crate::mapping::VertexMapping;
use rayon::prelude::*;
use sg_graph::{CsrGraph, EdgeId, EdgeList, EncodedCsr, VertexId};
use std::time::{Duration, Instant};

/// Outcome of one compression run.
#[derive(Clone, Debug)]
pub struct CompressionResult {
    /// The compressed graph.
    pub graph: CsrGraph,
    /// Edge count of the input.
    pub original_edges: usize,
    /// Vertex count of the input.
    pub original_vertices: usize,
    /// Wall-clock compression time (kernel execution + materialization).
    pub elapsed: Duration,
    /// Old→new vertex relabelling when vertices were removed.
    pub vertex_mapping: Option<Vec<Option<VertexId>>>,
}

impl CompressionResult {
    /// Number of removed edges; 0 when the scheme *added* edges (an
    /// ϵ-summary reconstruction or a future densifying kernel) — use
    /// [`CompressionResult::edge_delta`] for the signed count.
    pub fn edges_removed(&self) -> usize {
        self.original_edges.saturating_sub(self.graph.num_edges())
    }

    /// Signed edge delta: positive when edges were removed, negative when
    /// the scheme added edges.
    pub fn edge_delta(&self) -> i64 {
        self.original_edges as i64 - self.graph.num_edges() as i64
    }

    /// Remaining-edge ratio `m' / m` (the color scale of Figure 5). Can
    /// exceed 1 when the scheme added edges.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_edges == 0 {
            1.0
        } else {
            self.graph.num_edges() as f64 / self.original_edges as f64
        }
    }

    /// Removed-edge fraction `1 - m'/m` (the y-axis of Figure 6); negative
    /// when the scheme added edges.
    pub fn edge_reduction(&self) -> f64 {
        1.0 - self.compression_ratio()
    }
}

/// The kernel executor. Holds the deterministic seed for the run.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    /// Seed for all kernel randomness.
    pub seed: u64,
}

impl Engine {
    /// Creates an engine with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Executes an edge kernel over every canonical edge in parallel
    /// (§4.2). Kernels returning [`EdgeDecision::Reweight`] produce a
    /// weighted output graph.
    pub fn run_edge_kernel<K: EdgeKernel>(&self, g: &CsrGraph, kernel: &K) -> CompressionResult {
        let start = Instant::now();
        let sg = SgContext::new(g, self.seed);
        let decisions: Vec<EdgeDecision> = g
            .par_edge_ids()
            .map(|e| {
                let (u, v) = g.edge_endpoints(e);
                let view = EdgeView {
                    id: e,
                    u,
                    v,
                    weight: g.edge_weight(e),
                    deg_u: g.degree(u),
                    deg_v: g.degree(v),
                };
                kernel.process(view, &sg)
            })
            .collect();
        let any_reweight = decisions.par_iter().any(|d| matches!(d, EdgeDecision::Reweight(_)));
        let graph = if any_reweight {
            g.filter_reweight(|e| match decisions[e as usize] {
                EdgeDecision::Keep => Some(g.edge_weight(e)),
                EdgeDecision::Delete => None,
                EdgeDecision::Reweight(w) => Some(w),
            })
        } else {
            g.filter_edges(|e| decisions[e as usize] != EdgeDecision::Delete)
        };
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        }
    }

    /// Executes an edge kernel over an *encoded* graph, decoding rows on
    /// the fly — raw CSR is never materialized for the input. The canonical
    /// edge id of the k-th forward slot of row `v` is
    /// `forward_edge_offsets()[v] + k`, a pure function of the row index,
    /// so kernel decisions (and hence the output graph) are bit-identical
    /// to [`Engine::run_edge_kernel`] over the equivalent raw graph at any
    /// `SG_THREADS`.
    pub fn run_edge_kernel_encoded<K: EdgeKernel>(
        &self,
        g: &EncodedCsr,
        kernel: &K,
    ) -> CompressionResult {
        let start = Instant::now();
        let sg = SgContext::new_encoded(g, self.seed);
        let directed = g.is_directed();
        let offsets = g.forward_edge_offsets();
        let n = g.num_vertices();
        let decisions: Vec<EdgeDecision> = (0..n as VertexId)
            .into_par_iter()
            .flat_map_iter(|v| {
                let base = offsets[v as usize];
                let deg_u = g.degree(v);
                let mut row = Vec::with_capacity(offsets[v as usize + 1] - base);
                let mut k = 0usize;
                g.cursor(v).for_each(|t| {
                    if directed || t > v {
                        let e = (base + k) as EdgeId;
                        let view = EdgeView {
                            id: e,
                            u: v,
                            v: t,
                            weight: g.edge_weight(e),
                            deg_u,
                            deg_v: g.degree(t),
                        };
                        row.push(kernel.process(view, &sg));
                        k += 1;
                    }
                });
                row
            })
            .collect();
        let any_reweight = decisions.par_iter().any(|d| matches!(d, EdgeDecision::Reweight(_)));
        // Materialize survivors by a second forward enumeration (same
        // order, so `decisions[e]` lines up with the slot being visited).
        let weighted = any_reweight || g.is_weighted();
        let mut edges = Vec::with_capacity(g.num_edges());
        let mut weights = weighted.then(|| Vec::with_capacity(g.num_edges()));
        let mut next = 0usize;
        for v in 0..n as VertexId {
            g.cursor(v).for_each(|t| {
                if directed || t > v {
                    let e = next as EdgeId;
                    next += 1;
                    let kept = match decisions[e as usize] {
                        EdgeDecision::Keep => Some(g.edge_weight(e)),
                        EdgeDecision::Delete => None,
                        EdgeDecision::Reweight(w) => Some(w),
                    };
                    if let Some(w) = kept {
                        edges.push((v, t));
                        if let Some(ws) = &mut weights {
                            ws.push(w);
                        }
                    }
                }
            });
        }
        let el = EdgeList { num_vertices: n, edges, weights };
        let graph = if directed {
            CsrGraph::from_edge_list_directed(el)
        } else {
            CsrGraph::from_edge_list(el)
        };
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: n,
            elapsed: start.elapsed(),
            vertex_mapping: None,
        }
    }

    /// Executes a vertex kernel over every vertex in parallel (§4.4).
    /// Deleted vertices take their incident edges with them; survivors are
    /// relabelled compactly (Table 3's `remove k deg-1 vertices` row changes
    /// `n`).
    pub fn run_vertex_kernel<K: VertexKernel>(
        &self,
        g: &CsrGraph,
        kernel: &K,
    ) -> CompressionResult {
        let start = Instant::now();
        let sg = SgContext::new(g, self.seed);
        let removed: Vec<bool> = (0..g.num_vertices() as VertexId)
            .into_par_iter()
            .map(|v| {
                let view = VertexView { id: v, degree: g.degree(v) };
                kernel.process(view, &sg) == VertexDecision::Delete
            })
            .collect();
        let (graph, mapping) = g.remove_vertices(&removed);
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: Some(mapping),
        }
    }

    /// Executes a triangle kernel over every triangle (§4.3). Kernels that
    /// declare `parallel()` stream triangles concurrently; order-sensitive
    /// disciplines (Edge-Once, Count-Triangles) run over the deterministic
    /// sorted triangle list so results are reproducible.
    pub fn run_triangle_kernel<K: TriangleKernel>(
        &self,
        g: &CsrGraph,
        kernel: &K,
    ) -> CompressionResult {
        let start = Instant::now();
        let sg = SgContext::new(g, self.seed);
        if kernel.parallel() {
            sg_algos::tc::for_each_triangle(g, |t| kernel.process(&t, &sg));
        } else {
            for t in sg_algos::tc::list_triangles(g) {
                kernel.process(&t, &sg);
            }
        }
        let graph = g.filter_edges(|e| !sg.edge_deleted(e));
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        }
    }

    /// Executes a subgraph kernel over every cluster of `mapping` in
    /// parallel (§4.5). The runtime follows Listing 2: the mapping has
    /// already been constructed (`SG.construct_mapping()`), then all kernels
    /// run concurrently (`SG.run_kernels()`).
    pub fn run_subgraph_kernel<K: SubgraphKernel>(
        &self,
        g: &CsrGraph,
        mapping: &VertexMapping,
        kernel: &K,
    ) -> CompressionResult {
        let start = Instant::now();
        let sg = SgContext::new(g, self.seed);
        mapping.clusters.par_iter().enumerate().for_each(|(cid, members)| {
            let view = SubgraphView { cluster_id: cid, members, assignment: &mapping.assignment };
            kernel.process(view, &sg);
        });
        let graph = g.filter_edges(|e| !sg.edge_deleted(e));
        CompressionResult {
            graph,
            original_edges: g.num_edges(),
            original_vertices: g.num_vertices(),
            elapsed: start.elapsed(),
            vertex_mapping: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::*;
    use sg_graph::generators;

    struct KeepAll;
    impl EdgeKernel for KeepAll {
        fn process(&self, _e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
            EdgeDecision::Keep
        }
    }

    struct DropEven;
    impl EdgeKernel for DropEven {
        fn process(&self, e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
            if e.id.is_multiple_of(2) {
                EdgeDecision::Delete
            } else {
                EdgeDecision::Keep
            }
        }
    }

    struct DoubleWeight;
    impl EdgeKernel for DoubleWeight {
        fn process(&self, e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
            EdgeDecision::Reweight(e.weight * 2.0)
        }
    }

    struct DropLeaves;
    impl VertexKernel for DropLeaves {
        fn process(&self, v: VertexView, _sg: &SgContext<'_>) -> VertexDecision {
            if v.degree <= 1 {
                VertexDecision::Delete
            } else {
                VertexDecision::Keep
            }
        }
    }

    #[test]
    fn keep_all_is_identity() {
        let g = generators::erdos_renyi(100, 400, 1);
        let r = Engine::new(0).run_edge_kernel(&g, &KeepAll);
        assert_eq!(r.graph.num_edges(), g.num_edges());
        assert_eq!(r.compression_ratio(), 1.0);
        assert_eq!(r.edges_removed(), 0);
    }

    #[test]
    fn drop_even_halves() {
        let g = generators::erdos_renyi(100, 400, 2);
        let r = Engine::new(0).run_edge_kernel(&g, &DropEven);
        assert_eq!(r.graph.num_edges(), g.num_edges() / 2);
        assert!((r.compression_ratio() - 0.5).abs() < 0.01);
    }

    #[test]
    fn reweight_produces_weighted_graph() {
        let g = generators::cycle(6);
        let r = Engine::new(0).run_edge_kernel(&g, &DoubleWeight);
        assert!(r.graph.is_weighted());
        assert_eq!(r.graph.num_edges(), 6);
        for (e, _, _) in r.graph.edge_iter() {
            assert_eq!(r.graph.edge_weight(e), 2.0);
        }
    }

    #[test]
    fn vertex_kernel_removes_and_relabels() {
        let g = generators::star(6); // hub + 5 leaves
        let r = Engine::new(0).run_vertex_kernel(&g, &DropLeaves);
        assert_eq!(r.graph.num_vertices(), 1);
        assert_eq!(r.graph.num_edges(), 0);
        let mapping = r.vertex_mapping.expect("vertex kernel relabels");
        assert!(mapping[0].is_some());
        assert!(mapping[1..].iter().all(Option::is_none));
    }

    struct DeleteFirstEdge;
    impl TriangleKernel for DeleteFirstEdge {
        fn process(&self, t: &Triangle, sg: &SgContext<'_>) {
            sg.del_edge(t.e_uv);
        }
    }

    #[test]
    fn triangle_kernel_deletes_marked() {
        let g = generators::complete(4); // 4 triangles, 6 edges
        let r = Engine::new(0).run_triangle_kernel(&g, &DeleteFirstEdge);
        assert!(r.graph.num_edges() < 6);
    }

    struct DropIntraCluster;
    impl SubgraphKernel for DropIntraCluster {
        fn process(&self, sgv: SubgraphView<'_>, sg: &SgContext<'_>) {
            for &v in sgv.members {
                let row = sg.graph.csr().neighbors(v);
                let eids = sg.graph.csr().neighbor_edge_ids(v);
                for (i, &u) in row.iter().enumerate() {
                    if sgv.assignment[u as usize] == sgv.cluster_id as u32 {
                        sg.del_edge(eids[i]);
                    }
                }
            }
        }
    }

    #[test]
    fn subgraph_kernel_uses_mapping() {
        let g = generators::complete(6);
        // Two clusters {0,1,2} and {3,4,5}: dropping intra-cluster edges
        // leaves only the 9 cross edges.
        let mapping = VertexMapping::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let r = Engine::new(0).run_subgraph_kernel(&g, &mapping, &DropIntraCluster);
        assert_eq!(r.graph.num_edges(), 9);
    }

    #[test]
    fn edge_growth_does_not_underflow() {
        // Regression: `original_edges - num_edges()` panicked in debug
        // builds whenever a stage *added* edges (e.g. an ϵ-summary
        // reconstruction feeding a later pipeline stage).
        let grown = CompressionResult {
            graph: generators::complete(5), // 10 edges
            original_edges: 4,
            original_vertices: 5,
            elapsed: std::time::Duration::ZERO,
            vertex_mapping: None,
        };
        assert_eq!(grown.edges_removed(), 0);
        assert_eq!(grown.edge_delta(), -6);
        assert!(grown.edge_reduction() < 0.0);
        assert!((grown.compression_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = generators::rmat_graph500(10, 6, 7);
        struct CoinFlip;
        impl EdgeKernel for CoinFlip {
            fn process(&self, e: EdgeView, sg: &SgContext<'_>) -> EdgeDecision {
                if sg.rand_unit(e.id as u64, 0) < 0.5 {
                    EdgeDecision::Delete
                } else {
                    EdgeDecision::Keep
                }
            }
        }
        let a = Engine::new(123).run_edge_kernel(&g, &CoinFlip);
        let b = Engine::new(123).run_edge_kernel(&g, &CoinFlip);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
    }

    struct RandomDrop;
    impl EdgeKernel for RandomDrop {
        fn process(&self, e: EdgeView, sg: &SgContext<'_>) -> EdgeDecision {
            if sg.rand_unit(e.id as u64, 0) < 0.4 {
                EdgeDecision::Delete
            } else {
                EdgeDecision::Keep
            }
        }
    }

    #[test]
    fn encoded_edge_kernel_matches_raw() {
        let g = generators::rmat_graph500(10, 8, 21);
        let enc = sg_graph::EncodedCsr::from_graph(&g);
        let raw = Engine::new(77).run_edge_kernel(&g, &RandomDrop);
        let dec = Engine::new(77).run_edge_kernel_encoded(&enc, &RandomDrop);
        assert_eq!(raw.graph.edge_slice(), dec.graph.edge_slice());
        assert_eq!(raw.graph.csr_offsets(), dec.graph.csr_offsets());
        assert_eq!(raw.original_edges, dec.original_edges);
    }

    struct WeightScaled;
    impl EdgeKernel for WeightScaled {
        fn process(&self, e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
            if e.deg_u + e.deg_v > 6 {
                EdgeDecision::Reweight(e.weight * 0.5)
            } else {
                EdgeDecision::Keep
            }
        }
    }

    #[test]
    fn encoded_edge_kernel_matches_raw_weighted_reweight() {
        let g =
            generators::with_random_weights(&generators::erdos_renyi(300, 1400, 5), 1.0, 9.0, 6);
        let enc = sg_graph::EncodedCsr::from_graph(&g);
        let raw = Engine::new(3).run_edge_kernel(&g, &WeightScaled);
        let dec = Engine::new(3).run_edge_kernel_encoded(&enc, &WeightScaled);
        assert!(raw.graph.is_weighted() && dec.graph.is_weighted());
        assert_eq!(raw.graph.edge_slice(), dec.graph.edge_slice());
        assert_eq!(raw.graph.weight_slice(), dec.graph.weight_slice());
    }
}
