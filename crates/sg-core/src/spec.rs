//! Serializable pipeline specifications.
//!
//! A [`PipelineSpec`] is the *data* form of a [`crate::Pipeline`]: an
//! ordered list of stage names with their parameter bags. Where a
//! `Pipeline` holds boxed scheme objects ready to run, a `PipelineSpec` is
//! `Clone + Ord + Eq`, renders to the CLI's textual spec syntax
//! (`spanner:k=4,uniform:p=0.3`), parses back losslessly, and builds into a
//! `Pipeline` against any [`SchemeRegistry`]. This makes scheme chains
//! first-class *values* that can be enumerated, mutated, compared, hashed,
//! and reported — the representation `sg-tune` searches over.

use crate::scheme::{SchemeParams, SchemeRegistry};
use crate::Pipeline;

/// One stage of a [`PipelineSpec`]: a registry name plus its parameters.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StageSpec {
    /// Registry name of the scheme (`"uniform"`, `"spanner"`, …).
    pub name: String,
    /// Stage parameters (only keys the scheme reads are meaningful).
    pub params: SchemeParams,
}

impl StageSpec {
    /// A stage with no explicit parameters (factory defaults apply).
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), params: SchemeParams::new() }
    }

    /// A stage with parameters from `(key, value)` pairs.
    pub fn with_params(name: impl Into<String>, pairs: &[(&str, &str)]) -> Self {
        Self { name: name.into(), params: SchemeParams::from_pairs(pairs) }
    }

    /// Renders as `name` or `name:key=value:key=value` (keys in sorted
    /// order, so rendering is canonical).
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        for (k, v) in self.params.iter() {
            out.push(':');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }
}

/// A serializable chain of compression stages.
///
/// Invariants are *not* enforced at construction: names and parameters are
/// validated when the spec is [built](PipelineSpec::build) against a
/// registry, exactly as the textual syntax is.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct PipelineSpec {
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl PipelineSpec {
    /// The empty spec (builds into the identity pipeline).
    pub fn new() -> Self {
        Self::default()
    }

    /// A spec over the given stages.
    pub fn from_stages(stages: Vec<StageSpec>) -> Self {
        Self { stages }
    }

    /// Appends a stage (builder style).
    pub fn then(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Parses the CLI spec syntax: comma-separated stages, each `name` or
    /// `name:key=value[:key=value…]`. Inverse of [`PipelineSpec::render`]
    /// up to key ordering and whitespace.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut stages = Vec::new();
        for stage_spec in spec.split(',') {
            let stage_spec = stage_spec.trim();
            if stage_spec.is_empty() {
                return Err(format!("empty stage in pipeline spec '{spec}'"));
            }
            let mut parts = stage_spec.split(':');
            let name = parts.next().expect("split yields at least one part");
            let mut params = SchemeParams::new();
            for assignment in parts {
                params.parse_assignment(assignment)?;
            }
            stages.push(StageSpec { name: name.to_string(), params });
        }
        Ok(Self { stages })
    }

    /// Renders as the canonical textual form: stages joined with `,`, each
    /// stage's keys in sorted order. `parse(render(s)) == s` for any spec
    /// whose values round-trip through `String` (all generated specs do).
    pub fn render(&self) -> String {
        self.stages.iter().map(StageSpec::render).collect::<Vec<_>>().join(",")
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the spec has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Validates the spec against `registry` (names known, per-stage keys
    /// accepted) and instantiates the pipeline, layering each stage's
    /// parameters over `base`.
    pub fn build_with_base(
        &self,
        registry: &SchemeRegistry,
        base: &SchemeParams,
    ) -> Result<Pipeline, String> {
        let mut stages: Vec<Box<dyn crate::CompressionScheme>> =
            Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            if let Some(keys) = registry.param_keys(&stage.name) {
                for (key, _) in stage.params.iter() {
                    if !keys.contains(&key) {
                        return Err(format!(
                            "scheme '{}' does not accept parameter '{key}' (accepts: {})",
                            stage.name,
                            if keys.is_empty() { "none".to_string() } else { keys.join(", ") }
                        ));
                    }
                }
            }
            let params = base.merged_with(&stage.params);
            stages.push(registry.create(&stage.name, &params)?);
        }
        Ok(Pipeline::from_stages(stages))
    }

    /// [`PipelineSpec::build_with_base`] with an empty base bag.
    pub fn build(&self, registry: &SchemeRegistry) -> Result<Pipeline, String> {
        self.build_with_base(registry, &SchemeParams::new())
    }

    /// Canonicalizes the spec against a registry and a base parameter bag:
    /// validates stage names and per-stage keys exactly as
    /// [`PipelineSpec::build_with_base`] does, then folds the base
    /// parameters into each stage — keeping only keys the stage's scheme
    /// actually reads — so the returned spec is **self-contained**:
    /// `resolved.build(registry)` constructs bit-identical schemes to
    /// `self.build_with_base(registry, base)`, and the resolved rendering
    /// is a sound cache key (two invocations that would run different
    /// scheme configurations can never render identically).
    pub fn resolve(
        &self,
        registry: &SchemeRegistry,
        base: &SchemeParams,
    ) -> Result<PipelineSpec, String> {
        let mut stages = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let keys = registry.param_keys(&stage.name).ok_or_else(|| {
                let known: Vec<&str> = registry.names().collect();
                format!("unknown scheme '{}' (known: {})", stage.name, known.join(", "))
            })?;
            for (key, _) in stage.params.iter() {
                if !keys.contains(&key) {
                    return Err(format!(
                        "scheme '{}' does not accept parameter '{key}' (accepts: {})",
                        stage.name,
                        if keys.is_empty() { "none".to_string() } else { keys.join(", ") }
                    ));
                }
            }
            let merged = base.merged_with(&stage.params);
            let mut params = SchemeParams::new();
            for (key, value) in merged.iter() {
                if keys.contains(&key) {
                    params.set(key, value);
                }
            }
            stages.push(StageSpec { name: stage.name.clone(), params });
        }
        Ok(PipelineSpec { stages })
    }
}

impl std::fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn render_parse_roundtrip() {
        let spec = PipelineSpec::new()
            .then(StageSpec::with_params("spanner", &[("k", "4")]))
            .then(StageSpec::new("lowdeg"))
            .then(StageSpec::with_params("uniform", &[("p", "0.3")]));
        let rendered = spec.render();
        assert_eq!(rendered, "spanner:k=4,lowdeg,uniform:p=0.3");
        assert_eq!(PipelineSpec::parse(&rendered).expect("parses"), spec);
        assert_eq!(format!("{spec}"), rendered);
    }

    #[test]
    fn multi_key_stages_render_sorted() {
        let spec = PipelineSpec::new()
            .then(StageSpec::with_params("spectral", &[("variant", "avgdeg"), ("p", "0.4")]));
        // BTreeMap ordering: p before variant regardless of insertion order.
        assert_eq!(spec.render(), "spectral:p=0.4:variant=avgdeg");
        assert_eq!(PipelineSpec::parse(&spec.render()).expect("parses"), spec);
    }

    #[test]
    fn build_matches_textual_parse_pipeline() {
        let registry = SchemeRegistry::with_defaults();
        let g = generators::erdos_renyi(300, 1000, 3);
        let text = "spanner:k=4,uniform:p=0.3";
        let via_spec = PipelineSpec::parse(text).expect("parses").build(&registry).expect("builds");
        let via_registry =
            registry.parse_pipeline(text, &SchemeParams::new()).expect("parses directly");
        let a = via_spec.apply(&g, 9);
        let b = via_registry.apply(&g, 9);
        assert_eq!(a.result.graph.edge_slice(), b.result.graph.edge_slice());
    }

    #[test]
    fn build_validates_names_and_keys() {
        let registry = SchemeRegistry::with_defaults();
        let unknown = PipelineSpec::new().then(StageSpec::new("nope"));
        let err = unknown.build(&registry).err().expect("unknown name errors");
        assert!(err.contains("unknown scheme"), "{err}");
        let bad_key = PipelineSpec::new().then(StageSpec::with_params("lowdeg", &[("p", "0.5")]));
        let err = bad_key.build(&registry).err().expect("bad key errors");
        assert!(err.contains("accepts: none"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(PipelineSpec::parse("uniform,,lowdeg").is_err());
        assert!(PipelineSpec::parse("uniform:p").is_err());
        assert!(PipelineSpec::parse("").is_err());
    }

    #[test]
    fn specs_order_deterministically() {
        let a = PipelineSpec::parse("lowdeg").expect("parses");
        let b = PipelineSpec::parse("uniform:p=0.5").expect("parses");
        assert!(a < b, "ordering follows stage names");
        let mut v = vec![b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }
}
