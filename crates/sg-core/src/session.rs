//! The session execution API: incremental, cache-aware pipeline runs
//! against catalog graph handles.
//!
//! [`SgSession`] is the execution front door the serving layer (and the
//! CLI, the tuner, and the bench harness) drive: it executes a
//! [`PipelineSpec`] stage-by-stage against a [`GraphHandle`], consulting
//! the [`StageCache`] for the **longest already-computed chain prefix**
//! and recomputing only the divergent suffix. Each stage's output graph is
//! exposed in the returned [`SessionRun`] (not just the final result), and
//! every newly executed prefix is published back to the cache.
//!
//! # Determinism and bit-identity
//!
//! Pipelines are pure functions of `(graph, spec, seed)` and stage seeds
//! are positional ([`Pipeline::stage_seed`]), so a cache hit returns the
//! exact bytes a cold [`Pipeline::apply`] run would produce — at any
//! `SG_THREADS`. The only observable difference is the per-stage `cached`
//! flag and wall-clock time. `tests/session_cache.rs` pins this contract.

use crate::cache::{prefix_hash, CachedPrefix, StageCache, StageKey};
use crate::catalog::{GraphCatalog, GraphHandle};
use crate::engine::CompressionResult;
use crate::pipeline::{self, StageReport};
use crate::scheme::{SchemeParams, SchemeRegistry};
use crate::spec::PipelineSpec;
use sg_graph::{CsrGraph, VertexId};
use std::sync::Arc;
use std::time::Duration;

/// One stage of a [`SessionRun`].
#[derive(Clone, Debug)]
pub struct StageOutcome {
    /// The stage's report; for cached stages the wall time is the
    /// originally measured one.
    pub report: StageReport,
    /// Whether the stage was served from the cache instead of executed.
    pub cached: bool,
    /// The stage's output graph. Always present for executed stages and
    /// for the last stage of a cached prefix; `None` only for an interior
    /// cached stage whose own prefix entry has been evicted since.
    pub graph: Option<Arc<CsrGraph>>,
}

/// Outcome of one session run: the final graph, the composed vertex
/// mapping, per-stage outcomes (with intermediate graphs), and cache
/// accounting.
#[derive(Clone, Debug)]
pub struct SessionRun {
    /// Final output graph.
    pub graph: Arc<CsrGraph>,
    /// Composition of every stage's old→new relabelling (`None` =
    /// identity), indexed by pipeline-input vertex ids.
    pub vertex_mapping: Option<Arc<Vec<Option<VertexId>>>>,
    /// Vertex count of the pipeline input.
    pub original_vertices: usize,
    /// Edge count of the pipeline input.
    pub original_edges: usize,
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
}

impl SessionRun {
    /// Stages served from the cache.
    pub fn stages_cached(&self) -> usize {
        self.stages.iter().filter(|s| s.cached).count()
    }

    /// Stages actually executed by this run.
    pub fn stages_executed(&self) -> usize {
        self.stages.len() - self.stages_cached()
    }

    /// Sum of the per-stage wall times (cached stages contribute their
    /// originally measured time, so this is comparable to a cold run).
    pub fn elapsed(&self) -> Duration {
        self.stages.iter().map(|s| s.report.elapsed).sum()
    }

    /// Remaining-edge ratio `m'/m`.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_edges == 0 {
            1.0
        } else {
            self.graph.num_edges() as f64 / self.original_edges as f64
        }
    }

    /// Materializes the classic [`CompressionResult`] view (clones the
    /// graph and mapping out of their shared allocations).
    pub fn to_compression_result(&self) -> CompressionResult {
        CompressionResult {
            graph: self.graph.as_ref().clone(),
            original_edges: self.original_edges,
            original_vertices: self.original_vertices,
            elapsed: self.elapsed(),
            vertex_mapping: self.vertex_mapping.as_ref().map(|m| m.as_ref().clone()),
        }
    }
}

/// The session: a catalog, a registry, and a stage cache, shareable across
/// threads (all methods take `&self`; clones share all three).
#[derive(Clone)]
pub struct SgSession {
    catalog: Arc<GraphCatalog>,
    registry: Arc<SchemeRegistry>,
    cache: Arc<StageCache>,
}

impl SgSession {
    /// A session over `catalog` and `registry` with a default-capacity
    /// stage cache.
    pub fn new(catalog: Arc<GraphCatalog>, registry: Arc<SchemeRegistry>) -> Self {
        Self::with_cache(catalog, registry, Arc::new(StageCache::new()))
    }

    /// A session with an explicit (possibly shared) stage cache.
    pub fn with_cache(
        catalog: Arc<GraphCatalog>,
        registry: Arc<SchemeRegistry>,
        cache: Arc<StageCache>,
    ) -> Self {
        Self { catalog, registry, cache }
    }

    /// The graph catalog.
    pub fn catalog(&self) -> &Arc<GraphCatalog> {
        &self.catalog
    }

    /// The scheme registry.
    pub fn registry(&self) -> &Arc<SchemeRegistry> {
        &self.registry
    }

    /// The stage cache.
    pub fn cache(&self) -> &Arc<StageCache> {
        &self.cache
    }

    /// Evicts `name` from the catalog and purges its cache entries.
    /// Returns the evicted handle and the number of cache entries dropped.
    pub fn evict(&self, name: &str) -> Option<(GraphHandle, usize)> {
        let handle = self.catalog.remove(name)?;
        let purged = self.cache.purge_graph(handle.id());
        Some((handle, purged))
    }

    /// Runs `spec` against the graph registered under `name`.
    pub fn run_named(
        &self,
        name: &str,
        spec: &PipelineSpec,
        seed: u64,
    ) -> Result<SessionRun, String> {
        let handle =
            self.catalog.get(name).ok_or_else(|| format!("no graph loaded as '{name}'"))?;
        self.run(&handle, spec, seed)
    }

    /// Runs `spec` against `handle` with pipeline seed `seed`, reusing the
    /// longest cached chain prefix.
    pub fn run(
        &self,
        handle: &GraphHandle,
        spec: &PipelineSpec,
        seed: u64,
    ) -> Result<SessionRun, String> {
        self.run_with_base(handle, spec, &SchemeParams::new(), seed)
    }

    /// [`SgSession::run`] with shared base parameters layered under every
    /// stage's own (the CLI's `--p`/`--k`/… flags). The spec is
    /// [resolved](PipelineSpec::resolve) first, so the cache key reflects
    /// the *effective* per-stage configuration — two invocations that
    /// would run different scheme parameters can never share an entry.
    pub fn run_with_base(
        &self,
        handle: &GraphHandle,
        spec: &PipelineSpec,
        base: &SchemeParams,
        seed: u64,
    ) -> Result<SessionRun, String> {
        let resolved = spec.resolve(&self.registry, base)?;
        let n = resolved.len();
        let mut run_span = sg_obs::span!("session.run", stages = n, seed = seed);
        if sg_obs::metrics_enabled() {
            sg_obs::global().counter("session.runs").inc();
        }
        let key_at =
            |len: usize| StageKey { graph: handle.id(), prefix: prefix_hash(&resolved, len), seed };

        // Longest cached prefix, probed from the full chain down.
        let mut start = 0usize;
        let mut current: Arc<CsrGraph> = Arc::clone(handle.graph_arc());
        let mut mapping: Option<Arc<Vec<Option<VertexId>>>> = None;
        let mut outcomes: Vec<StageOutcome> = Vec::with_capacity(n);
        for len in (1..=n).rev() {
            // Scheme-keyed hit/miss attribution: each probe is charged to
            // the scheme ending the probed prefix (observation only).
            let probe_scheme = resolved.stages[len - 1].name.as_str();
            let Some(hit) = self.cache.get(&key_at(len)) else {
                if sg_obs::metrics_enabled() {
                    sg_obs::global().counter(&format!("core.cache.miss.{probe_scheme}")).inc();
                }
                continue;
            };
            if sg_obs::metrics_enabled() {
                let reg = sg_obs::global();
                reg.counter(&format!("core.cache.hit.{probe_scheme}")).inc();
                reg.counter("session.stages_cached").add(len as u64);
                for stage in resolved.stages.iter().take(len) {
                    reg.counter(&format!("session.stage_cached.{}", stage.name)).inc();
                }
            }
            for (i, report) in hit.reports.iter().enumerate() {
                let graph = if i + 1 == len {
                    Some(Arc::clone(&hit.graph))
                } else {
                    self.cache.peek(&key_at(i + 1)).map(|c| c.graph)
                };
                outcomes.push(StageOutcome { report: report.clone(), cached: true, graph });
            }
            current = hit.graph;
            mapping = hit.mapping;
            start = len;
            break;
        }

        // Execute (and publish) the divergent suffix.
        let mut reports: Vec<StageReport> = outcomes.iter().map(|o| o.report.clone()).collect();
        for (i, stage) in resolved.stages.iter().enumerate().skip(start) {
            let scheme = self.registry.create(&stage.name, &stage.params)?;
            let mut stage_span = sg_obs::span!("session.stage", scheme = stage.name, index = i);
            // With the tracking allocator profiling, bracket the stage so
            // its span (and a per-scheme counter) carries the allocation
            // cost of that compression scheme. Process-wide counters:
            // under concurrency the delta includes other threads' churn.
            let alloc_before =
                sg_obs::alloc::profiling_enabled().then(|| sg_obs::alloc::stats().allocated_bytes);
            let (r, report) = pipeline::run_stage(scheme.as_ref(), &current, seed, i);
            if let Some(before) = alloc_before {
                let delta = sg_obs::alloc::stats().allocated_bytes.saturating_sub(before);
                if stage_span.is_recording() {
                    stage_span.arg("alloc_bytes", delta.to_string());
                }
                if sg_obs::metrics_enabled() {
                    sg_obs::global()
                        .counter(&format!("session.stage_alloc_bytes.{}", stage.name))
                        .add(delta);
                }
            }
            drop(stage_span);
            if sg_obs::metrics_enabled() {
                let reg = sg_obs::global();
                reg.counter("session.stages_executed").inc();
                reg.counter(&format!("session.stage_executed.{}", stage.name)).inc();
                reg.histogram("session.stage_ms").observe(report.elapsed);
            }
            mapping = compose_arc_mappings(mapping, r.vertex_mapping);
            current = Arc::new(r.graph);
            reports.push(report.clone());
            self.cache.insert(
                key_at(i + 1),
                CachedPrefix {
                    graph: Arc::clone(&current),
                    mapping: mapping.clone(),
                    reports: Arc::new(reports.clone()),
                },
            );
            outcomes.push(StageOutcome {
                report,
                cached: false,
                graph: Some(Arc::clone(&current)),
            });
        }

        if run_span.is_recording() {
            run_span.arg("cached", start.to_string());
            run_span.arg("executed", (n - start).to_string());
        }
        Ok(SessionRun {
            graph: current,
            vertex_mapping: mapping,
            original_vertices: handle.graph().num_vertices(),
            original_edges: handle.graph().num_edges(),
            stages: outcomes,
        })
    }
}

/// [`pipeline::compose_mappings`] lifted over the session's shared
/// (`Arc`ed) accumulated mapping. Semantics are identical; only the
/// ownership shape differs.
fn compose_arc_mappings(
    so_far: Option<Arc<Vec<Option<VertexId>>>>,
    next: Option<Vec<Option<VertexId>>>,
) -> Option<Arc<Vec<Option<VertexId>>>> {
    match (so_far, next) {
        (so_far, None) => so_far,
        (None, Some(next)) => Some(Arc::new(next)),
        (Some(first), Some(second)) => {
            Some(Arc::new(first.iter().map(|mid| mid.and_then(|m| second[m as usize])).collect()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    fn session_over(g: CsrGraph) -> (SgSession, GraphHandle) {
        let catalog = Arc::new(GraphCatalog::new());
        let handle = catalog.insert("g", g, "test").expect("insert");
        let session = SgSession::new(catalog, Arc::new(SchemeRegistry::with_defaults()));
        (session, handle)
    }

    fn cold(spec: &str, g: &CsrGraph, seed: u64) -> crate::PipelineResult {
        PipelineSpec::parse(spec)
            .expect("parses")
            .build(&SchemeRegistry::with_defaults())
            .expect("builds")
            .apply(g, seed)
    }

    #[test]
    fn session_run_matches_cold_pipeline_apply() {
        let g = generators::rmat_graph500(9, 8, 3);
        let (session, handle) = session_over(g.clone());
        for spec_text in ["uniform:p=0.4", "spanner:k=4,lowdeg,uniform:p=0.5"] {
            let spec = PipelineSpec::parse(spec_text).expect("parses");
            let run = session.run(&handle, &spec, 42).expect("runs");
            let reference = cold(spec_text, &g, 42);
            assert_eq!(run.graph.edge_slice(), reference.result.graph.edge_slice());
            assert_eq!(
                run.vertex_mapping.as_deref().cloned(),
                reference.result.vertex_mapping,
                "composed mappings agree"
            );
            assert_eq!(run.stages_executed(), spec.len());
            assert_eq!(run.stages_cached(), 0);
        }
    }

    #[test]
    fn shared_prefixes_skip_stages_and_stay_bit_identical() {
        let g = generators::planted_triangles(&generators::erdos_renyi(500, 1500, 5), 400, 6);
        let (session, handle) = session_over(g.clone());
        let a = PipelineSpec::parse("spanner:k=4,lowdeg,uniform:p=0.5").expect("parses");
        let b = PipelineSpec::parse("spanner:k=4,lowdeg,cut:k=2").expect("parses");

        let first = session.run(&handle, &a, 7).expect("cold run");
        assert_eq!(first.stages_executed(), 3);

        let second = session.run(&handle, &b, 7).expect("warm run");
        assert_eq!(second.stages_cached(), 2, "shared prefix served from cache");
        assert_eq!(second.stages_executed(), 1, "only the divergent suffix ran");
        let reference = cold("spanner:k=4,lowdeg,cut:k=2", &g, 7);
        assert_eq!(second.graph.edge_slice(), reference.result.graph.edge_slice());
        assert_eq!(second.vertex_mapping.as_deref().cloned(), reference.result.vertex_mapping);

        // Exact repeat: everything cached, bytes still identical.
        let third = session.run(&handle, &a, 7).expect("fully cached");
        assert_eq!(third.stages_cached(), 3);
        assert_eq!(third.stages_executed(), 0);
        let reference = cold("spanner:k=4,lowdeg,uniform:p=0.5", &g, 7);
        assert_eq!(third.graph.edge_slice(), reference.result.graph.edge_slice());

        // A different seed shares nothing.
        let reseeded = session.run(&handle, &a, 8).expect("new seed");
        assert_eq!(reseeded.stages_cached(), 0, "seed is part of the cache key");
    }

    #[test]
    fn per_stage_intermediate_graphs_are_exposed() {
        let g = generators::barabasi_albert(300, 4, 9);
        let (session, handle) = session_over(g.clone());
        let spec = PipelineSpec::parse("spanner:k=4,uniform:p=0.5").expect("parses");
        let run = session.run(&handle, &spec, 11).expect("runs");
        // Stage 0's intermediate equals a direct single-stage run.
        let stage0 = run.stages[0].graph.as_ref().expect("executed stage exposes its graph");
        let direct = cold("spanner:k=4", &g, 11);
        assert_eq!(stage0.edge_slice(), direct.result.graph.edge_slice());
        // The last stage's graph is the final graph.
        let last = run.stages[1].graph.as_ref().expect("last stage graph");
        assert_eq!(last.edge_slice(), run.graph.edge_slice());
        // Cached re-run still exposes the intermediates (all prefixes are
        // cached by the cold run).
        let warm = session.run(&handle, &spec, 11).expect("warm");
        assert!(warm.stages.iter().all(|s| s.graph.is_some()));
    }

    #[test]
    fn base_parameters_are_part_of_the_cache_identity() {
        let g = generators::erdos_renyi(400, 1600, 13);
        let (session, handle) = session_over(g.clone());
        let spec = PipelineSpec::parse("uniform").expect("parses");
        let mut base_a = SchemeParams::new();
        base_a.set("p", "0.3");
        let mut base_b = SchemeParams::new();
        base_b.set("p", "0.7");
        let a = session.run_with_base(&handle, &spec, &base_a, 5).expect("a");
        let b = session.run_with_base(&handle, &spec, &base_b, 5).expect("b");
        assert_ne!(a.graph.edge_slice(), b.graph.edge_slice(), "different p must not collide");
        assert_eq!(b.stages_cached(), 0);
        // And each matches its cold equivalent.
        assert_eq!(a.graph.edge_slice(), cold("uniform:p=0.3", &g, 5).result.graph.edge_slice());
        assert_eq!(b.graph.edge_slice(), cold("uniform:p=0.7", &g, 5).result.graph.edge_slice());
    }

    #[test]
    fn eviction_purges_the_cache_and_run_named_errors() {
        let g = generators::cycle(50);
        let (session, handle) = session_over(g);
        let spec = PipelineSpec::parse("uniform:p=0.5").expect("parses");
        session.run_named("g", &spec, 1).expect("runs by name");
        let (evicted, purged) = session.evict("g").expect("evicts");
        assert_eq!(evicted.id(), handle.id());
        assert_eq!(purged, 1, "the one cached prefix is purged");
        let err = session.run_named("g", &spec, 1).unwrap_err();
        assert!(err.contains("no graph loaded"), "{err}");
        // The old handle still works (ref-counted), just cold.
        let rerun = session.run(&handle, &spec, 1).expect("handle outlives eviction");
        assert_eq!(rerun.stages_cached(), 0);
    }

    #[test]
    fn empty_specs_are_the_identity() {
        let g = generators::grid(6, 6);
        let (session, handle) = session_over(g.clone());
        let run = session.run(&handle, &PipelineSpec::new(), 3).expect("runs");
        assert_eq!(run.graph.edge_slice(), g.edge_slice());
        assert!(run.stages.is_empty());
        assert_eq!(run.compression_ratio(), 1.0);
        // to_compression_result mirrors Pipeline::apply's identity shape.
        let r = run.to_compression_result();
        assert_eq!(r.graph.edge_slice(), g.edge_slice());
        assert!(r.vertex_mapping.is_none());
    }

    #[test]
    fn invalid_specs_error_before_touching_the_cache() {
        let g = generators::cycle(10);
        let (session, handle) = session_over(g);
        let unknown = PipelineSpec::parse("nope").expect("parses syntactically");
        assert!(session.run(&handle, &unknown, 0).unwrap_err().contains("unknown scheme"));
        let bad_key = PipelineSpec::parse("lowdeg:p=0.5").expect("parses syntactically");
        assert!(session.run(&handle, &bad_key, 0).unwrap_err().contains("accepts: none"));
        assert_eq!(session.cache().stats().entries, 0);
    }
}
