//! Compression-kernel traits — the Slim Graph programming model.
//!
//! A kernel is a small program with a *local view* of the graph (§3.1): its
//! argument is an edge, a vertex, a triangle, or a subgraph, exposed here as
//! view structs carrying the fields the paper's opaque `E`/`V` references
//! provide (`e.u`, `e.v`, `e.weight`, `v.deg`, …). Kernels either return a
//! declarative decision (edge/vertex kernels — pure per element) or mutate
//! shared state through [`crate::SgContext`] (triangle/subgraph kernels,
//! which need the paper's `atomic` semantics).

use crate::context::SgContext;
pub use sg_algos::tc::Triangle;
use sg_graph::{EdgeId, VertexId, Weight};

/// Local view of an edge handed to an [`EdgeKernel`] (the paper's `E e`
/// argument plus the degree fields kernels like `spectral_sparsify` read).
#[derive(Clone, Copy, Debug)]
pub struct EdgeView {
    /// Canonical edge id.
    pub id: EdgeId,
    /// Source endpoint (`e.u`).
    pub u: VertexId,
    /// Destination endpoint (`e.v`).
    pub v: VertexId,
    /// Edge weight (`e.weight`; 1.0 when unweighted).
    pub weight: Weight,
    /// Degree of `u` (`e.u.deg`).
    pub deg_u: usize,
    /// Degree of `v` (`e.v.deg`).
    pub deg_v: usize,
}

/// Outcome of an edge kernel for one edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeDecision {
    /// Edge survives unchanged.
    Keep,
    /// `atomic SG.del(e)`.
    Delete,
    /// Edge survives with a new weight (spectral sparsifiers reweight
    /// survivors by `1/p_e` so the Laplacian stays unbiased).
    Reweight(Weight),
}

/// A single-edge compression kernel (§4.2).
pub trait EdgeKernel: Sync {
    /// Decides the fate of one edge. Invoked in parallel across edges.
    fn process(&self, edge: EdgeView, sg: &SgContext<'_>) -> EdgeDecision;
}

/// Local view of a vertex handed to a [`VertexKernel`].
#[derive(Clone, Copy, Debug)]
pub struct VertexView {
    /// Vertex id.
    pub id: VertexId,
    /// Degree (`v.deg`).
    pub degree: usize,
}

/// Outcome of a vertex kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexDecision {
    /// Vertex survives.
    Keep,
    /// `atomic SG.del(v)` — vertex and all incident edges removed.
    Delete,
}

/// A single-vertex compression kernel (§4.4).
pub trait VertexKernel: Sync {
    /// Decides the fate of one vertex. Invoked in parallel across vertices.
    fn process(&self, vertex: VertexView, sg: &SgContext<'_>) -> VertexDecision;
}

/// A triangle compression kernel (§4.3). The argument mirrors the paper's
/// `vector<E> triangle`; deletions go through `sg` so the Edge-Once /
/// `considered` disciplines can be expressed atomically.
pub trait TriangleKernel: Sync {
    /// Processes one triangle.
    fn process(&self, triangle: &Triangle, sg: &SgContext<'_>);

    /// Whether instances may run concurrently. Disciplines that need a
    /// deterministic consideration order (Edge-Once, Count-Triangles) return
    /// false and are executed over the deterministic sorted triangle stream.
    fn parallel(&self) -> bool {
        true
    }
}

/// Local view of a subgraph (cluster) handed to a [`SubgraphKernel`]: the
/// member list plus the global membership table for O(1) "is this endpoint
/// inside?" queries (the paper's `parent_ID`).
pub struct SubgraphView<'a> {
    /// Cluster index (`elem_ID`).
    pub cluster_id: usize,
    /// Vertices of this cluster.
    pub members: &'a [VertexId],
    /// `assignment[v]` = cluster index of vertex `v` (the §4.5.2 mapping).
    pub assignment: &'a [u32],
}

/// A subgraph compression kernel (§4.5).
pub trait SubgraphKernel: Sync {
    /// Processes one cluster. Invoked in parallel across clusters.
    fn process(&self, subgraph: SubgraphView<'_>, sg: &SgContext<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DropAll;
    impl EdgeKernel for DropAll {
        fn process(&self, _e: EdgeView, _sg: &SgContext<'_>) -> EdgeDecision {
            EdgeDecision::Delete
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let k: Box<dyn EdgeKernel> = Box::new(DropAll);
        let g = sg_graph::generators::cycle(3);
        let sg = SgContext::new(&g, 0);
        let view = EdgeView { id: 0, u: 0, v: 1, weight: 1.0, deg_u: 2, deg_v: 2 };
        assert_eq!(k.process(view, &sg), EdgeDecision::Delete);
    }
}
