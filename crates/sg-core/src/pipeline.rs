//! Chained compression pipelines — the paper's kernel-combining model.
//!
//! Slim Graph kernels are designed to compose: a spanner can strip long
//! cycles, low-degree removal can then delete the exposed leaves, and a
//! final uniform sample can trim the rest. [`Pipeline`] runs a sequence of
//! [`CompressionScheme`] stages, feeding each stage the previous stage's
//! output, composing old→new vertex relabellings across stages, and
//! recording a per-stage [`StageReport`].
//!
//! Determinism: stage `i` derives its seed from `(seed, i)`, so a pipeline
//! run is bit-reproducible, and a single-stage pipeline is bit-identical to
//! calling the scheme's `apply` directly.

use crate::engine::CompressionResult;
use crate::scheme::CompressionScheme;
use sg_graph::prng::mix64;
use sg_graph::{CsrGraph, VertexId};
use std::time::Duration;

/// Per-stage statistics recorded by [`Pipeline::apply`].
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Registry name of the stage's scheme.
    pub name: String,
    /// Human-readable label of the stage's scheme.
    pub label: String,
    /// Vertices entering the stage.
    pub input_vertices: usize,
    /// Edges entering the stage.
    pub input_edges: usize,
    /// Vertices leaving the stage.
    pub output_vertices: usize,
    /// Edges leaving the stage.
    pub output_edges: usize,
    /// Stage wall-clock time.
    pub elapsed: Duration,
}

impl StageReport {
    /// Remaining-edge ratio of this stage.
    pub fn compression_ratio(&self) -> f64 {
        if self.input_edges == 0 {
            1.0
        } else {
            self.output_edges as f64 / self.input_edges as f64
        }
    }

    /// Signed edge delta (positive = edges removed).
    pub fn edge_delta(&self) -> i64 {
        self.input_edges as i64 - self.output_edges as i64
    }
}

/// Outcome of a pipeline run: the end-to-end [`CompressionResult`]
/// (original counts refer to the *pipeline input*; `vertex_mapping` is the
/// composition of every stage's relabelling) plus per-stage reports.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Composed end-to-end result.
    pub result: CompressionResult,
    /// One report per stage, in execution order.
    pub stages: Vec<StageReport>,
}

/// An ordered chain of compression schemes.
pub struct Pipeline {
    stages: Vec<Box<dyn CompressionScheme>>,
}

impl Pipeline {
    /// An empty pipeline (applies as the identity).
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// A pipeline over the given stages.
    pub fn from_stages(stages: Vec<Box<dyn CompressionScheme>>) -> Self {
        Self { stages }
    }

    /// Appends a stage (builder style).
    pub fn then(mut self, scheme: Box<dyn CompressionScheme>) -> Self {
        self.stages.push(scheme);
        self
    }

    /// Appends a stage.
    pub fn push(&mut self, scheme: Box<dyn CompressionScheme>) {
        self.stages.push(scheme);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages, in execution order.
    pub fn stages(&self) -> &[Box<dyn CompressionScheme>] {
        &self.stages
    }

    /// Stage labels joined with `->`.
    pub fn label(&self) -> String {
        self.stages.iter().map(|s| s.label()).collect::<Vec<_>>().join(" -> ")
    }

    /// The deterministic seed handed to stage `index` of a run seeded with
    /// `seed`. Stage 0 receives `seed` itself, so one-stage pipelines are
    /// bit-identical to a direct `scheme.apply(g, seed)`.
    pub fn stage_seed(seed: u64, index: usize) -> u64 {
        if index == 0 {
            seed
        } else {
            mix64(seed ^ mix64(index as u64))
        }
    }

    /// Runs every stage in order over `g`.
    ///
    /// This is the *cold* execution path; it shares its per-stage runner
    /// ([`run_stage`]) with the session API ([`crate::session::SgSession`]),
    /// which additionally caches and resumes chain prefixes. A session run
    /// of the same `(graph, spec, seed)` is bit-identical to this.
    pub fn apply(&self, g: &CsrGraph, seed: u64) -> PipelineResult {
        let mut current: Option<CsrGraph> = None;
        let mut mapping: Option<Vec<Option<VertexId>>> = None;
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut elapsed = Duration::ZERO;
        for (index, scheme) in self.stages.iter().enumerate() {
            let input = current.as_ref().unwrap_or(g);
            let (r, report) = run_stage(scheme.as_ref(), input, seed, index);
            elapsed += report.elapsed;
            stages.push(report);
            mapping = compose_mappings(mapping, r.vertex_mapping);
            current = Some(r.graph);
        }
        PipelineResult {
            result: CompressionResult {
                graph: current.unwrap_or_else(|| g.clone()),
                original_edges: g.num_edges(),
                original_vertices: g.num_vertices(),
                elapsed,
                vertex_mapping: mapping,
            },
            stages,
        }
    }
}

/// Runs one pipeline stage: applies `scheme` to `g` with the deterministic
/// seed for position `index` of a run seeded with `seed`, and builds the
/// stage's [`StageReport`]. The single execution primitive shared by
/// [`Pipeline::apply`] and the session executor, so the two paths cannot
/// drift.
pub fn run_stage(
    scheme: &dyn CompressionScheme,
    g: &CsrGraph,
    seed: u64,
    index: usize,
) -> (CompressionResult, StageReport) {
    let (input_vertices, input_edges) = (g.num_vertices(), g.num_edges());
    let r = scheme.apply(g, Pipeline::stage_seed(seed, index));
    let report = StageReport {
        name: scheme.name().to_string(),
        label: scheme.label(),
        input_vertices,
        input_edges,
        output_vertices: r.graph.num_vertices(),
        output_edges: r.graph.num_edges(),
        elapsed: r.elapsed,
    };
    (r, report)
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

/// Composes two old→new relabellings: `so_far` maps pipeline-input ids to
/// the previous stage's ids, `next` maps those to the new stage's ids.
/// `None` means "identity" (the stage kept the vertex set).
pub(crate) fn compose_mappings(
    so_far: Option<Vec<Option<VertexId>>>,
    next: Option<Vec<Option<VertexId>>>,
) -> Option<Vec<Option<VertexId>>> {
    match (so_far, next) {
        (None, next) => next,
        (so_far, None) => so_far,
        (Some(first), Some(second)) => {
            Some(first.into_iter().map(|mid| mid.and_then(|m| second[m as usize])).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{LowDegree, Spanner, Uniform};
    use sg_graph::generators;

    fn three_stage() -> Pipeline {
        Pipeline::new()
            .then(Box::new(Spanner { k: 4.0 }))
            .then(Box::new(LowDegree))
            .then(Box::new(Uniform { p: 0.3 }))
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let g = generators::erdos_renyi(100, 400, 1);
        let out = Pipeline::new().apply(&g, 7);
        assert_eq!(out.result.graph.edge_slice(), g.edge_slice());
        assert!(out.stages.is_empty());
        assert_eq!(out.result.compression_ratio(), 1.0);
    }

    #[test]
    fn single_stage_matches_direct_apply() {
        let g = generators::rmat_graph500(10, 8, 3);
        let direct = crate::scheme::CompressionScheme::apply(&Uniform { p: 0.4 }, &g, 99);
        let piped = Pipeline::new().then(Box::new(Uniform { p: 0.4 })).apply(&g, 99);
        assert_eq!(direct.graph.edge_slice(), piped.result.graph.edge_slice());
    }

    #[test]
    fn stages_chain_and_reports_are_consistent() {
        let g = generators::planted_triangles(&generators::erdos_renyi(400, 1200, 5), 400, 6);
        let out = three_stage().apply(&g, 11);
        assert_eq!(out.stages.len(), 3);
        assert_eq!(out.stages[0].input_edges, g.num_edges());
        for pair in out.stages.windows(2) {
            assert_eq!(pair[0].output_edges, pair[1].input_edges);
            assert_eq!(pair[0].output_vertices, pair[1].input_vertices);
        }
        let last = out.stages.last().expect("three stages");
        assert_eq!(last.output_edges, out.result.graph.num_edges());
        assert!(out.result.graph.num_edges() < g.num_edges());
        assert_eq!(out.result.original_edges, g.num_edges());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let g = generators::rmat_graph500(10, 8, 13);
        let a = three_stage().apply(&g, 42);
        let b = three_stage().apply(&g, 42);
        assert_eq!(a.result.graph.edge_slice(), b.result.graph.edge_slice());
        let c = three_stage().apply(&g, 43);
        assert_ne!(
            a.result.graph.edge_slice(),
            c.result.graph.edge_slice(),
            "different seeds should differ"
        );
    }

    #[test]
    fn vertex_mappings_compose_across_stages() {
        // star(6): lowdeg removes the 5 leaves, leaving the hub; a second
        // lowdeg stage then removes the now-isolated hub.
        let g = generators::star(6);
        let one = Pipeline::new().then(Box::new(LowDegree)).apply(&g, 1);
        let mapping = one.result.vertex_mapping.expect("vertex scheme maps");
        assert_eq!(mapping[0], Some(0));
        assert!(mapping[1..].iter().all(Option::is_none));

        let two = Pipeline::new().then(Box::new(LowDegree)).then(Box::new(LowDegree)).apply(&g, 1);
        let mapping = two.result.vertex_mapping.expect("composed mapping");
        assert_eq!(mapping.len(), 6, "mapping is indexed by pipeline-input ids");
        assert!(mapping.iter().all(Option::is_none), "everything removed");
        assert_eq!(two.result.graph.num_vertices(), 0);
    }

    #[test]
    fn stage_seeds_differ_between_stages() {
        let seeds: Vec<u64> = (0..4).map(|i| Pipeline::stage_seed(7, i)).collect();
        assert_eq!(seeds[0], 7);
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "stage seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn label_joins_stages() {
        assert_eq!(three_stage().label(), "spanner (k=4) -> lowdeg -> uniform (p=0.3)");
    }
}
