//! The content-addressed stage cache behind the session API.
//!
//! Pipelines are pure functions of `(graph, spec, seed)`, and stage `i`'s
//! seed depends only on `(seed, i)` — so the output of a chain **prefix**
//! is fully determined by `(graph identity, prefix spec text, seed)`.
//! [`StageCache`] exploits exactly that: it maps a [`StageKey`] —
//! `(GraphId, fnv1a(rendered prefix), seed)` — to the prefix's output
//! graph, composed vertex mapping, and per-stage reports. Two requests
//! sharing a chain prefix (`spanner,lowdeg,uniform` vs
//! `spanner,lowdeg,cut`) recompute only the divergent suffix.
//!
//! Correctness does not depend on the cache: a hit returns the exact
//! bytes a cold run would produce (the purity above), so eviction policy
//! and capacity are purely performance knobs. Entries are evicted
//! least-recently-used once the estimated byte footprint exceeds the
//! configured capacity.

use crate::catalog::GraphId;
use crate::pipeline::StageReport;
use rustc_hash::FxHashMap;
use sg_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The content address of one chain prefix: which graph, which rendered
/// prefix text (hashed), which pipeline seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StageKey {
    /// Identity of the pipeline input graph.
    pub graph: GraphId,
    /// [`prefix_hash`] of the rendered chain prefix.
    pub prefix: u64,
    /// The pipeline seed (stage seeds derive from it positionally).
    pub seed: u64,
}

/// FNV-1a over the canonical rendered form of `spec`'s first `len` stages
/// (the same canonical text [`crate::PipelineSpec::render`] produces, so
/// equal prefixes hash equally regardless of how the spec was built).
pub fn prefix_hash(spec: &crate::PipelineSpec, len: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (i, stage) in spec.stages.iter().take(len).enumerate() {
        if i > 0 {
            eat(b",");
        }
        eat(stage.render().as_bytes());
    }
    h
}

/// A cached chain prefix: everything needed to resume execution after it.
#[derive(Clone)]
pub struct CachedPrefix {
    /// Output graph of the prefix's last stage.
    pub graph: Arc<CsrGraph>,
    /// Old→new vertex relabelling composed across the prefix (`None` =
    /// identity).
    pub mapping: Option<Arc<Vec<Option<VertexId>>>>,
    /// Per-stage reports of the prefix, in execution order (wall times are
    /// the original measured times).
    pub reports: Arc<Vec<StageReport>>,
}

impl CachedPrefix {
    /// Estimated heap footprint, used for capacity accounting. The graph
    /// part is measured with the system-wide
    /// [`crate::catalog::graph_approx_bytes`] yardstick.
    pub fn approx_bytes(&self) -> usize {
        let csr = crate::catalog::graph_approx_bytes(&self.graph);
        let mapping = self.mapping.as_ref().map_or(0, |m| m.len() * 8);
        csr + mapping + 256
    }
}

struct Slot {
    value: CachedPrefix,
    bytes: usize,
    stamp: u64,
}

struct Inner {
    map: FxHashMap<StageKey, Slot>,
    bytes: usize,
    clock: u64,
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held by live entries.
    pub bytes: usize,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (longest-prefix probing means one
    /// request may record several misses before its one hit).
    pub misses: u64,
    /// Entries dropped by the LRU policy or an explicit purge.
    pub evictions: u64,
}

/// Process-wide observability mirror of every cache instance's
/// counters, aggregated under `core.cache.*` in [`sg_obs::global`].
/// Strictly advisory: nothing reads these back (scheme-keyed hit/miss
/// attribution lives in the session layer, which knows stage names).
struct CacheObs {
    hits: Arc<sg_obs::Counter>,
    misses: Arc<sg_obs::Counter>,
    evictions: Arc<sg_obs::Counter>,
    insertions: Arc<sg_obs::Counter>,
    bytes: Arc<sg_obs::Gauge>,
    entries: Arc<sg_obs::Gauge>,
}

fn obs() -> &'static CacheObs {
    static OBS: std::sync::OnceLock<CacheObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = sg_obs::global();
        CacheObs {
            hits: reg.counter("core.cache.hits"),
            misses: reg.counter("core.cache.misses"),
            evictions: reg.counter("core.cache.evictions"),
            insertions: reg.counter("core.cache.insertions"),
            bytes: reg.gauge("core.cache.bytes"),
            entries: reg.gauge("core.cache.entries"),
        }
    })
}

/// A bounded, thread-safe map from [`StageKey`] to [`CachedPrefix`].
pub struct StageCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default capacity: 256 MiB of cached intermediate graphs.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

impl StageCache {
    /// A cache bounded to roughly `capacity_bytes` of entry payload.
    /// `capacity_bytes == 0` disables caching entirely (every lookup
    /// misses, every insert is dropped).
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { map: FxHashMap::default(), bytes: 0, clock: 0 }),
            capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with [`DEFAULT_CACHE_BYTES`] capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_BYTES)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a prefix, bumping its recency on a hit.
    pub fn get(&self, key: &StageKey) -> Option<CachedPrefix> {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs().hits.inc();
                Some(slot.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs().misses.inc();
                None
            }
        }
    }

    /// Looks up a prefix without touching recency or hit/miss counters
    /// (used to decorate already-answered requests, e.g. per-stage
    /// intermediate graphs of a cached prefix).
    pub fn peek(&self, key: &StageKey) -> Option<CachedPrefix> {
        self.lock().map.get(key).map(|slot| slot.value.clone())
    }

    /// Inserts (or refreshes) a prefix, evicting least-recently-used
    /// entries if the capacity is exceeded. An entry larger than the whole
    /// capacity is not cached at all.
    pub fn insert(&self, key: StageKey, value: CachedPrefix) {
        let bytes = value.approx_bytes();
        if bytes > self.capacity_bytes {
            return;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(key, Slot { value, bytes, stamp }) {
            inner.bytes -= old.bytes;
            obs().bytes.sub(old.bytes as i64);
        } else {
            obs().entries.add(1);
        }
        inner.bytes += bytes;
        obs().insertions.inc();
        obs().bytes.add(bytes as i64);
        while inner.bytes > self.capacity_bytes {
            // O(n) LRU scan; entry counts are modest (big graphs hit the
            // byte cap long before the map gets large).
            let Some((&victim, _)) =
                inner.map.iter().filter(|(k, _)| **k != key).min_by_key(|(_, s)| s.stamp)
            else {
                break;
            };
            let slot = inner.map.remove(&victim).expect("victim just found");
            inner.bytes -= slot.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs().evictions.inc();
            obs().bytes.sub(slot.bytes as i64);
            obs().entries.sub(1);
        }
    }

    /// Drops every entry belonging to `graph` (eviction of a catalog
    /// entry); returns how many were removed.
    pub fn purge_graph(&self, graph: GraphId) -> usize {
        let mut inner = self.lock();
        let victims: Vec<StageKey> =
            inner.map.keys().filter(|k| k.graph == graph).copied().collect();
        for key in &victims {
            let slot = inner.map.remove(key).expect("key just listed");
            inner.bytes -= slot.bytes;
            obs().bytes.sub(slot.bytes as i64);
        }
        self.evictions.fetch_add(victims.len() as u64, Ordering::Relaxed);
        obs().evictions.add(victims.len() as u64);
        obs().entries.sub(victims.len() as i64);
        victims.len()
    }

    /// Drops everything.
    pub fn clear(&self) -> usize {
        let mut inner = self.lock();
        let n = inner.map.len();
        obs().bytes.sub(inner.bytes as i64);
        obs().entries.sub(n as i64);
        obs().evictions.add(n as u64);
        inner.map.clear();
        inner.bytes = 0;
        self.evictions.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for StageCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for StageCache {
    /// Keeps the process-wide `core.cache.bytes`/`entries` gauges honest
    /// when a cache instance (a per-test daemon's, say) goes away.
    fn drop(&mut self) {
        let inner = self.lock();
        obs().bytes.sub(inner.bytes as i64);
        obs().entries.sub(inner.map.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineSpec;
    use sg_graph::generators;

    fn entry(n: usize) -> CachedPrefix {
        CachedPrefix {
            graph: Arc::new(generators::cycle(n)),
            mapping: None,
            reports: Arc::new(Vec::new()),
        }
    }

    fn key(graph: u64, prefix: u64) -> StageKey {
        StageKey { graph: GraphId(graph), prefix, seed: 7 }
    }

    #[test]
    fn prefix_hash_is_a_pure_function_of_the_rendered_prefix() {
        let a = PipelineSpec::parse("spanner:k=4,lowdeg,uniform:p=0.5").expect("parses");
        let b = PipelineSpec::parse("spanner:k=4,lowdeg,cut:k=2").expect("parses");
        for len in 1..=2 {
            assert_eq!(prefix_hash(&a, len), prefix_hash(&b, len), "shared prefix {len}");
        }
        assert_ne!(prefix_hash(&a, 3), prefix_hash(&b, 3), "divergent suffix");
        // The prefix hash equals the full hash of the truncated spec.
        let truncated = PipelineSpec::parse("spanner:k=4,lowdeg").expect("parses");
        assert_eq!(prefix_hash(&a, 2), prefix_hash(&truncated, 2));
        // And differs from single-stage specs whose rendering collides
        // only if the text collides.
        assert_ne!(prefix_hash(&a, 1), prefix_hash(&a, 2));
    }

    #[test]
    fn get_insert_and_stats() {
        let cache = StageCache::new();
        assert!(cache.get(&key(1, 10)).is_none());
        cache.insert(key(1, 10), entry(8));
        let hit = cache.get(&key(1, 10)).expect("hit");
        assert_eq!(hit.graph.num_vertices(), 8);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn purge_graph_only_touches_that_graph() {
        let cache = StageCache::new();
        cache.insert(key(1, 10), entry(4));
        cache.insert(key(1, 11), entry(4));
        cache.insert(key(2, 10), entry(4));
        assert_eq!(cache.purge_graph(GraphId(1)), 2);
        assert!(cache.get(&key(1, 10)).is_none());
        assert!(cache.get(&key(2, 10)).is_some());
        assert_eq!(cache.clear(), 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let one = entry(16).approx_bytes();
        let cache = StageCache::with_capacity(one * 3);
        cache.insert(key(1, 1), entry(16));
        cache.insert(key(1, 2), entry(16));
        cache.insert(key(1, 3), entry(16));
        cache.get(&key(1, 1)); // freshen 1 — 2 is now the LRU
        cache.insert(key(1, 4), entry(16));
        assert!(cache.get(&key(1, 2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 1)).is_some());
        assert!(cache.get(&key(1, 4)).is_some());
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = StageCache::with_capacity(0);
        cache.insert(key(1, 1), entry(4));
        assert!(cache.get(&key(1, 1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
