//! Uniform scheme configuration for harness code.
//!
//! Every experiment in the paper sweeps (scheme × parameter) grids; the
//! [`Scheme`] enum gives the benchmark harness one entry point that
//! dispatches to the concrete kernels.

use crate::engine::CompressionResult;
use crate::schemes::{
    cut_sparsify, remove_low_degree, spanner, spectral_sparsify, summarize_to_graph,
    triangle_collapse, triangle_reduce, uniform_sample, SummarizationConfig, TrConfig,
    UpsilonVariant,
};
use sg_graph::CsrGraph;

/// A lossy compression scheme plus its parameters (Table 2).
#[derive(Clone, Copy, Debug)]
pub enum Scheme {
    /// Random uniform sampling: remove each edge with probability `p`.
    Uniform { p: f64 },
    /// Spectral sparsification with user parameter `p` and Υ variant.
    Spectral { p: f64, variant: UpsilonVariant, reweight: bool },
    /// Triangle Reduction family.
    TriangleReduction(TrConfig),
    /// Triangle p-Reduction by Collapse.
    TriangleCollapse { p: f64 },
    /// Degree ≤ 1 vertex removal.
    LowDegree,
    /// O(k)-spanner.
    Spanner { k: f64 },
    /// Lossy ϵ-summarization (graph reconstructed for stage 2).
    Summarization { epsilon: f64 },
    /// Nagamochi–Ibaraki cut sparsifier (the §4.6 "future version" scheme):
    /// preserves all cuts of value ≤ k.
    CutSparsifier { k: u32 },
}

impl Scheme {
    /// Applies the scheme to `g` with deterministic seed `seed`.
    pub fn apply(&self, g: &CsrGraph, seed: u64) -> CompressionResult {
        match *self {
            Scheme::Uniform { p } => uniform_sample(g, p, seed),
            Scheme::Spectral { p, variant, reweight } => {
                spectral_sparsify(g, p, variant, reweight, seed)
            }
            Scheme::TriangleReduction(cfg) => triangle_reduce(g, cfg, seed),
            Scheme::TriangleCollapse { p } => triangle_collapse(g, p, seed),
            Scheme::LowDegree => remove_low_degree(g, seed),
            Scheme::Spanner { k } => spanner(g, k, seed),
            Scheme::Summarization { epsilon } => {
                let cfg = SummarizationConfig { epsilon, max_iterations: 8, seed };
                summarize_to_graph(g, cfg).1
            }
            Scheme::CutSparsifier { k } => cut_sparsify(g, k, seed),
        }
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(&self) -> String {
        match *self {
            Scheme::Uniform { p } => format!("Uniform (p={p})"),
            Scheme::Spectral { p, variant, .. } => match variant {
                UpsilonVariant::LogN => format!("Spectral-logn (p={p})"),
                UpsilonVariant::AvgDegree => format!("Spectral-avgdeg (p={p})"),
            },
            Scheme::TriangleReduction(cfg) => cfg.label(),
            Scheme::TriangleCollapse { p } => format!("Collapse-{p}-TR"),
            Scheme::LowDegree => "LowDegree".to_string(),
            Scheme::Spanner { k } => format!("Spanner (k={k})"),
            Scheme::Summarization { epsilon } => format!("Summary (eps={epsilon})"),
            Scheme::CutSparsifier { k } => format!("CutSparsifier (k={k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_graph::generators;

    #[test]
    fn all_schemes_apply() {
        let g = generators::planted_triangles(&generators::erdos_renyi(300, 900, 1), 300, 2);
        let schemes = [
            Scheme::Uniform { p: 0.3 },
            Scheme::Spectral { p: 0.5, variant: UpsilonVariant::LogN, reweight: false },
            Scheme::TriangleReduction(TrConfig::edge_once_1(0.5)),
            Scheme::TriangleCollapse { p: 0.4 },
            Scheme::LowDegree,
            Scheme::Spanner { k: 4.0 },
            Scheme::Summarization { epsilon: 0.05 },
            Scheme::CutSparsifier { k: 2 },
        ];
        for s in schemes {
            let r = s.apply(&g, 7);
            assert!(r.graph.num_edges() <= g.num_edges() + (0.1 * g.num_edges() as f64) as usize,
                "{} inflated edges", s.label());
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn labels_match_tables() {
        assert_eq!(Scheme::Uniform { p: 0.2 }.label(), "Uniform (p=0.2)");
        assert_eq!(Scheme::Spanner { k: 16.0 }.label(), "Spanner (k=16)");
    }
}
