//! A fixed-size concurrent bitset.
//!
//! Deletion marks and Edge-Once `considered` flags are written concurrently
//! by kernel instances (`atomic SG.del(e)` in the paper's syntax); an atomic
//! bitset keeps that state at one bit per edge.

use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent bitset over `0..len`.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitset {
    /// Creates a bitset of `len` zeroed bits.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset addresses no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64].load(Ordering::Relaxed) >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`, returning its previous value (atomic test-and-set).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_and(!mask, Ordering::Relaxed);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Snapshot into a plain `Vec<bool>`.
    pub fn to_vec(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn set_get_clear() {
        let bs = AtomicBitset::new(130);
        assert!(!bs.get(129));
        assert!(!bs.set(129)); // previously unset
        assert!(bs.get(129));
        assert!(bs.set(129)); // already set
        bs.clear(129);
        assert!(!bs.get(129));
    }

    #[test]
    fn count_ones() {
        let bs = AtomicBitset::new(100);
        for i in (0..100).step_by(3) {
            bs.set(i);
        }
        assert_eq!(bs.count_ones(), 34);
    }

    /// Runs one contention round: `threads` OS threads race `set` over
    /// `len` bits, each starting at a different offset so every word is
    /// hit by several threads at once. Returns the total number of wins.
    fn contention_round(len: usize, threads: usize) -> (usize, AtomicBitset) {
        let bs = AtomicBitset::new(len);
        let total = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let bs = &bs;
                    scope.spawn(move || {
                        // Stride through the whole range from a per-thread
                        // offset: every thread touches every bit, maximizing
                        // same-word fetch_or collisions.
                        let offset = t * len / threads;
                        (0..len).filter(|&i| !bs.set((i + offset) % len)).count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).sum::<usize>()
        });
        (total, bs)
    }

    #[test]
    fn contended_test_and_set_claims_each_bit_exactly_once() {
        // Real OS-thread contention (not the rayon facade): 8 threads race
        // `set` over overlapping ranges; test-and-set must hand out exactly
        // one win per bit no matter how the stores interleave.
        let (claims, bs) = contention_round(4096, 8);
        assert_eq!(claims, 4096);
        assert_eq!(bs.count_ones(), 4096);
        assert!(bs.to_vec().iter().all(|&b| b));
    }

    #[test]
    fn rayon_backend_contention_claims_once() {
        // Same invariant through the rayon-shim thread pool the engine
        // actually uses (worker count follows SG_THREADS).
        let bs = AtomicBitset::new(1000);
        let claims: usize =
            (0..8u32).into_par_iter().map(|_| (0..1000).filter(|&i| !bs.set(i)).count()).sum();
        assert_eq!(claims, 1000);
        assert_eq!(bs.count_ones(), 1000);
    }

    #[test]
    #[ignore = "loom-style stress loop; run with `cargo test -- --ignored`"]
    fn repeated_contention_stress() {
        // Loom-style in spirit: hammer many interleavings by re-running the
        // race with varied sizes (word-aligned and not) and thread counts.
        for round in 0..200 {
            let len = 64 * (round % 7 + 1) + round % 13;
            let threads = 2 + round % 14;
            let (claims, bs) = contention_round(len, threads);
            assert_eq!(claims, len, "round {round}: duplicate or lost claim");
            assert_eq!(bs.count_ones(), len, "round {round}: bit dropped");
        }
    }

    #[test]
    fn empty_bitset() {
        let bs = AtomicBitset::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
    }
}
